"""Figure 6: ψ fluctuation over 100 minutes at 200 req/min (no churn).

Paper: sampled every 2 minutes; "the success ratio of QSA is
consistently higher than those of random and fixed.  The former may be
higher than the latter two as much as 15% and 90%, respectively."
"""

import numpy as np
import pytest

from repro.experiments.figures import figure6
from repro.experiments.reporting import banner, format_series_table


@pytest.mark.benchmark(group="figures")
def test_figure6_success_ratio_fluctuation(benchmark):
    series = benchmark.pedantic(
        figure6,
        kwargs={"rate": 200.0, "horizon": 100.0, "bin_minutes": 2.0, "seed": 0},
        rounds=1,
        iterations=1,
    )

    print()
    print(banner(
        "Figure 6 -- success ratio fluctuation, rate = 200 req/min",
        "100 minutes, sampled every 2 minutes, no topological variation",
    ))
    print(format_series_table("time (min)", series.times, series.ratios))
    print(f"\noverall: " + ", ".join(
        f"{a}={v:.3f}" for a, v in series.overall.items()
    ))

    qsa = np.asarray(series.ratios["qsa"], dtype=float)
    rnd = np.asarray(series.ratios["random"], dtype=float)
    fix = np.asarray(series.ratios["fixed"], dtype=float)
    valid = np.isfinite(qsa) & np.isfinite(rnd) & np.isfinite(fix)
    # QSA consistently on top (small sampling slack per window).
    assert np.mean(qsa[valid] >= rnd[valid] - 0.05) > 0.9
    assert np.mean(qsa[valid] >= fix[valid]) > 0.9
    # Peak gaps in the right ballparks (paper: ~15% and ~90%).
    assert np.nanmax(qsa - rnd) > 0.08
    assert np.nanmax(qsa - fix) > 0.5
