"""Ablation A2: the probing budget M (§2.2).

``M`` bounds how many peers any peer may probe.  ``M = 0`` removes all
performance information (every selection falls back to the random
policy, though QCS composition still helps); the paper's operating point
(1% of the population) restores nearly all of the benefit.

A subtlety this ablation surfaces: a *tiny* non-zero budget can be worse
than none at all -- every requester keeps the same few candidates in its
table, herding load onto them, while M = 0 at least spreads selections
uniformly.
"""

import pytest

from repro.experiments.ablations import ablation_probe_budget
from repro.experiments.reporting import banner, format_sweep_table

BUDGETS = (0, 5, 20, 100)


@pytest.mark.benchmark(group="ablations")
def test_probe_budget_sweep(benchmark):
    out = benchmark.pedantic(
        ablation_probe_budget,
        kwargs={"budgets": BUDGETS, "rate": 400.0, "horizon": 30.0, "seed": 0},
        rounds=1,
        iterations=1,
    )

    print()
    print(banner(
        "Ablation A2 -- probing budget M",
        "QSA ψ vs neighbor budget; rate = 400 req/min (paper units), 30 min",
    ))
    print(format_sweep_table(
        "M (budget)", list(out), {"psi": list(out.values())}
    ))

    # The paper's operating point clearly beats no information at all.
    assert out[BUDGETS[-1]] > out[0]
    # And beats the starved budget too.
    assert out[BUDGETS[-1]] > out[BUDGETS[1]]
