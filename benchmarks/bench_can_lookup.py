"""Claim C4: the CAN substrate routes in O(d · N^(1/d)) hops.

§3.2 allows "Chord [20] or CAN [16]" as the discovery substrate; this
bench characterizes the CAN half the way C3 characterizes Chord, and
prints them side by side: CAN's polynomial-root growth vs Chord's
logarithmic growth.
"""

import math

import numpy as np
import pytest

from repro.experiments.reporting import banner, format_sweep_table
from repro.lookup.can import CanNetwork
from repro.lookup.chord import ChordRing

SIZES = (64, 256, 1024)
N_KEYS = 100
DIMS = 3


def can_mean_hops(n: int, seed: int = 0) -> float:
    net = CanNetwork(dimensions=DIMS, seed=seed)
    for pid in range(n):
        net.join(pid)
    rng = np.random.default_rng(seed)
    for i in range(N_KEYS):
        net.put(f"key-{i}", i)
    hops = []
    for i in range(N_KEYS):
        _, h = net.get(f"key-{i}", from_peer=int(rng.integers(n)))
        hops.append(h)
    return float(np.mean(hops))


def chord_mean_hops(n: int, seed: int = 0) -> float:
    ring = ChordRing(bits=32, seed=seed)
    for pid in range(n):
        ring.join(pid)
    rng = np.random.default_rng(seed)
    for i in range(N_KEYS):
        ring.put(f"key-{i}", i)
    hops = []
    for i in range(N_KEYS):
        _, h = ring.get(f"key-{i}", from_peer=int(rng.integers(n)))
        hops.append(h)
    return float(np.mean(hops))


@pytest.mark.benchmark(group="claims")
def test_can_polynomial_vs_chord_logarithmic(benchmark):
    def run():
        return (
            [can_mean_hops(n) for n in SIZES],
            [chord_mean_hops(n) for n in SIZES],
        )

    can_hops, chord_hops = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(banner(
        f"Claim C4 -- CAN (d={DIMS}) vs Chord routing costs",
        "mean lookup hops per ring size",
    ))
    print(format_sweep_table(
        "N (peers)", SIZES,
        {
            f"can d={DIMS}": can_hops,
            "chord": chord_hops,
            "d/2*N^(1/d)": [DIMS / 2 * n ** (1 / DIMS) for n in SIZES],
            "log2 N": [math.log2(n) for n in SIZES],
        },
        value_format="{:10.2f}",
    ))

    # CAN stays within a small constant of its theoretical mean.
    for n, h in zip(SIZES, can_hops):
        assert h <= 2.0 * (DIMS / 2) * n ** (1 / DIMS), (n, h)
    # Both grow, CAN faster than Chord at scale (poly root vs log).
    assert can_hops[-1] > can_hops[0]
    assert chord_hops[-1] <= 1.5 * math.log2(SIZES[-1])
