"""Benchmarks-side entry point for the perf-regression harness.

The implementation lives in :mod:`repro.perf.harness` (so the installed
CLI can reach it); this shim gives the benchmarks directory a direct
door to the same machinery:

    python benchmarks/harness.py record --out BENCH_1.json
    python benchmarks/harness.py compare BENCH_0.json BENCH_1.json

plus :func:`run_scenario` for bench files that want one profiled
scenario run without going through the CLI.  Not collected by pytest
(only ``bench_*.py`` files are benches).
"""

import sys

from repro.perf import (  # noqa: F401  (re-exported for bench files)
    SCENARIOS,
    compare_benches,
    load_bench,
    next_bench_path,
    record_bench,
    validate_bench,
    write_bench,
)


def run_scenario(name: str, seed: int = 0, algorithm: str = "qsa"):
    """One profiled scenario run: ``(ExperimentResult, ProfileReport)``."""
    from repro.telemetry.profiling import profile_run

    scenario = SCENARIOS[name]
    if scenario.make is None:
        raise ValueError(
            f"scenario {name!r} records through its own harness "
            "(scenario.recorder); profile_run only takes make-style scenarios"
        )
    return profile_run(scenario.make(seed).with_algorithm(algorithm))


def main(argv=None) -> int:
    from repro.cli import main as cli_main

    return cli_main(["perf", *(sys.argv[1:] if argv is None else argv)])


if __name__ == "__main__":
    sys.exit(main())
