"""Claim C2: probing overhead is controlled to M/N (§2.2, §4.1).

Paper: "the maximum number of neighbor peers any peer can probe (M) is
100 so as to control the probing overhead within 100/10000 = 1%."  The
bench runs a loaded QSA experiment and reports the measured mean
neighbor-table occupancy per peer relative to the population, which the
budget must cap at M/N.
"""

import pytest

from repro.experiments.config import default_scale
from repro.experiments.reporting import banner, format_sweep_table
from repro.experiments.runner import run_experiment


@pytest.mark.benchmark(group="claims")
def test_probe_overhead_bounded_by_budget(benchmark):
    cfg = default_scale(rate_per_min=200, horizon=30.0, seed=0)

    result = benchmark.pedantic(
        run_experiment, args=(cfg.with_algorithm("qsa"),), rounds=1, iterations=1
    )

    n_peers = cfg.grid.n_peers
    budget = cfg.grid.probing.budget
    bound = budget / n_peers
    print()
    print(banner(
        "Claim C2 -- probing overhead controlled to M/N",
        f"N={n_peers} peers, M={budget}, target bound={bound:.2%}",
    ))
    print(format_sweep_table(
        "quantity",
        [0],
        {
            "measured": [result.probe_overhead],
            "bound M/N": [bound],
        },
        value_format="{:8.4f}",
    ))
    print(f"probe messages: {result.metrics.n_requests} requests, "
          f"mean lookup hops {result.mean_lookup_hops:.2f}")

    assert result.probe_overhead <= bound + 1e-9
    assert result.probe_overhead > 0.0
