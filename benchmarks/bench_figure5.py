"""Figure 5: average ψ vs service aggregation request rate (no churn).

Paper: "the average success ratio of the QSA algorithm is always higher
than the other two heuristic algorithms under all request rates"; random
sits between QSA and fixed; all curves fall as the request rate grows.
"""

import pytest

from repro.experiments.figures import figure5
from repro.experiments.reporting import banner, format_sweep_table

RATES = (50, 100, 200, 400, 600, 800, 1000)


@pytest.mark.benchmark(group="figures")
def test_figure5_success_ratio_vs_request_rate(benchmark, fig_horizon):
    sweep = benchmark.pedantic(
        figure5,
        kwargs={"rates": RATES, "horizon": fig_horizon, "seed": 0},
        rounds=1,
        iterations=1,
    )

    print()
    print(banner(
        "Figure 5 -- average service aggregation request success ratio",
        f"vs request rate (req/min, paper units); horizon={fig_horizon} min, "
        "no topological variation",
    ))
    print(format_sweep_table(sweep.x_label, sweep.x_values, sweep.ratios))

    qsa, rnd, fix = sweep.ratios["qsa"], sweep.ratios["random"], sweep.ratios["fixed"]
    # Shape claim 1: QSA is on top at every rate.
    for i in range(len(RATES)):
        assert qsa[i] >= rnd[i], f"QSA below random at rate {RATES[i]}"
        assert qsa[i] >= fix[i], f"QSA below fixed at rate {RATES[i]}"
    # Shape claim 2: random beats fixed ("much higher success ratios").
    assert sum(rnd) > sum(fix)
    # Shape claim 3: load hurts -- every algorithm ends below where it started.
    assert qsa[-1] < qsa[0] + 0.02
    assert fix[-1] < fix[0]
    # Shape claim 4: the QSA-fixed gap is large (paper: up to ~90%).
    assert max(q - f for q, f in zip(qsa, fix)) > 0.5
