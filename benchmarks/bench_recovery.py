"""Extension E1: runtime failure detection and recovery under churn.

§4.2's concluding observation -- "we do need runtime failure detection
and recovery to improve the performance" -- is the paper's future work.
This bench implements the measurement the paper stops short of: the
Fig. 7 churn sweep for QSA with recovery off (the paper's model) vs on
(re-running the peer-selection tier for slots lost to departures).
"""

from dataclasses import replace

import pytest

from repro.experiments.config import default_scale
from repro.experiments.reporting import banner, format_sweep_table
from repro.experiments.runner import run_experiment
from repro.sessions.recovery import RecoveryConfig

CHURN_RATES = (50, 100, 200)


def run_sweep():
    out = {"qsa (paper)": [], "qsa + recovery": []}
    for churn in CHURN_RATES:
        base = default_scale(
            rate_per_min=100.0, horizon=60.0, churn_per_min=churn, seed=0
        )
        out["qsa (paper)"].append(
            run_experiment(base.with_algorithm("qsa")).success_ratio
        )
        with_rec = replace(
            base, grid=replace(base.grid, recovery=RecoveryConfig())
        )
        out["qsa + recovery"].append(
            run_experiment(with_rec.with_algorithm("qsa")).success_ratio
        )
    return out


@pytest.mark.benchmark(group="extensions")
def test_recovery_improves_churn_tolerance(benchmark):
    out = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(banner(
        "Extension E1 -- runtime failure detection and recovery",
        "Fig. 7 churn sweep, QSA with vs without session repair",
    ))
    print(format_sweep_table("churn (peers/min)", CHURN_RATES, out))

    plain = out["qsa (paper)"]
    repaired = out["qsa + recovery"]
    # Recovery helps at every churn rate, and more at higher churn.
    for p, r in zip(plain, repaired):
        assert r > p
    assert (repaired[-1] - plain[-1]) >= (repaired[0] - plain[0]) - 0.05
