"""Ablation A3: what each tier contributes (§2.3).

QSA is "two cooperating tiers".  This bench runs the 2x2: full QSA,
QCS composition with random peers, random composition with Φ peers, and
neither (the random baseline).  Both single-tier hybrids should land
between the full model and the baseline, showing that composition and
selection contribute independently.
"""

import pytest

from repro.experiments.ablations import ablation_tiers
from repro.experiments.reporting import banner, format_sweep_table


@pytest.mark.benchmark(group="ablations")
def test_each_tier_contributes(benchmark):
    out = benchmark.pedantic(
        ablation_tiers,
        kwargs={"rate": 400.0, "horizon": 30.0, "seed": 0},
        rounds=1,
        iterations=1,
    )

    print()
    print(banner(
        "Ablation A3 -- tier contributions",
        "rate = 400 req/min (paper units), 30 min, no churn",
    ))
    print(format_sweep_table("variant", [0], {k: [v] for k, v in out.items()}))

    full = out["full-qsa"]
    comp_only = out["qcs+random-peers"]
    sel_only = out["random-path+phi-peers"]
    neither = out["neither (random)"]

    assert full >= comp_only - 0.02
    assert full >= sel_only - 0.02
    assert comp_only > neither - 0.02
    assert sel_only > neither - 0.02
    assert full > neither + 0.05
