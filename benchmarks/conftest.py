"""Shared bench configuration.

Every bench prints the reproduced table/series (the rows the paper's
figure plots) and asserts the *shape* claims -- orderings and trends --
not absolute values.  ``REPRO_PAPER_SCALE=1`` switches to the paper's
10^4-peer population and full horizons (slow: tens of minutes per
figure); the default runs a 10x-reduced, load-preserving configuration.
"""

import os

import pytest


# Benches are ordered: figures first, then claims, then ablations, then
# workload/extension benches.  Every ``bench_*.py`` in this directory
# MUST appear here -- ``tests/test_bench_conftest.py`` asserts the map
# stays in sync with the files on disk, so a new bench that forgets to
# register fails fast instead of silently sorting last.
BENCH_ORDER = {
    "bench_figure5": 0,
    "bench_figure6": 1,
    "bench_figure7": 2,
    "bench_figure8": 3,
    "bench_qcs_complexity": 4,
    "bench_qcs_kernels": 5,
    "bench_probe_overhead": 6,
    "bench_chord_lookup": 7,
    "bench_ablation_uptime": 8,
    "bench_ablation_probe_budget": 9,
    "bench_ablation_tiers": 10,
    "bench_can_lookup": 11,
    "bench_load_balance": 12,
    "bench_lookup_substrate": 13,
    "bench_recovery": 14,
    "bench_sensitivity": 15,
    "bench_fault_tolerance": 16,
    "bench_flash_crowd": 17,
    "bench_latency_aware": 18,
    "bench_soa_scale": 19,
}


def pytest_collection_modifyitems(config, items):
    items.sort(
        key=lambda it: BENCH_ORDER.get(it.module.__name__.split(".")[-1], 99)
    )


@pytest.fixture(scope="session")
def paper_scale_active() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "").strip() not in ("", "0")


@pytest.fixture(scope="session")
def fig_horizon(paper_scale_active):
    """Figure-5 horizon: the paper averages over 400 minutes."""
    return 400.0 if paper_scale_active else 60.0
