"""Ablation A1: the uptime term under churn (§3.3, footnote 4).

The paper attributes QSA's churn tolerance (Fig. 7/8) to taking "the
peers' average uptimes into account" -- this bench removes exactly that
term and re-runs the churn sweep.  Uptime-aware selection should retain
more ψ at high churn; without churn the two variants should be close.
"""

import pytest

from repro.experiments.ablations import ablation_uptime
from repro.experiments.reporting import banner, format_sweep_table

CHURN_RATES = (0, 50, 100, 200)


@pytest.mark.benchmark(group="ablations")
def test_uptime_term_drives_churn_tolerance(benchmark):
    out = benchmark.pedantic(
        ablation_uptime,
        kwargs={"churn_rates": CHURN_RATES, "rate": 100.0, "horizon": 60.0,
                "seed": 0},
        rounds=1,
        iterations=1,
    )

    print()
    print(banner(
        "Ablation A1 -- uptime term in peer selection",
        "QSA with vs without the uptime filter, churn sweep (paper units)",
    ))
    print(format_sweep_table("churn (peers/min)", CHURN_RATES, out))

    aware = out["uptime-aware"]
    blind = out["uptime-blind"]
    # Without churn the term is nearly free.
    assert abs(aware[0] - blind[0]) < 0.1
    # Under churn the uptime term pays (sum over the churned points).
    assert sum(aware[1:]) > sum(blind[1:])
