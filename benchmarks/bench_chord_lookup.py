"""Claim C3: the lookup substrate behaves like Chord/Gnutella should.

The paper plugs in "Chord [20] or CAN [16]" for discovery and motivates
them over flooding.  This bench verifies the substrate it actually runs
on: mean Chord lookup hops grow like O(log N), while flooding sprays a
message count that grows like O(N) -- the scalability argument of §1/§5,
measured.
"""

import math

import numpy as np
import pytest

from repro.experiments.reporting import banner, format_sweep_table
from repro.lookup.chord import ChordRing
from repro.lookup.flooding import FloodingOverlay

RING_SIZES = (64, 256, 1024, 4096)
N_KEYS = 200


def chord_mean_hops(n: int, seed: int = 0) -> float:
    ring = ChordRing(bits=32, seed=seed)
    for pid in range(n):
        ring.join(pid)
    rng = np.random.default_rng(seed)
    for i in range(N_KEYS):
        ring.put(f"key-{i}", i)
    hops = []
    for i in range(N_KEYS):
        _, h = ring.get(f"key-{i}", from_peer=int(rng.integers(n)))
        hops.append(h)
    return float(np.mean(hops))


def flood_mean_messages(n: int, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    overlay = FloodingOverlay(range(n), degree=4, rng=rng)
    holders = set(rng.choice(n, size=max(1, n // 100), replace=False))
    msgs = []
    for _ in range(20):
        start = int(rng.integers(n))
        result = overlay.flood(start, lambda p: p in holders, ttl=7)
        msgs.append(result.messages)
    return float(np.mean(msgs))


@pytest.mark.benchmark(group="claims")
def test_chord_log_hops_vs_flooding_linear_messages(benchmark):
    def run():
        return (
            [chord_mean_hops(n) for n in RING_SIZES],
            [flood_mean_messages(n) for n in RING_SIZES],
        )

    chord_hops, flood_msgs = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(banner(
        "Claim C3 -- discovery substrate costs",
        "Chord mean lookup hops vs Gnutella-flood mean messages",
    ))
    print(format_sweep_table(
        "N (peers)", RING_SIZES,
        {"chord hops": chord_hops, "flood msgs": flood_msgs},
        value_format="{:10.2f}",
    ))

    # Chord: within a small constant of log2 N, and grows slowly.
    for n, h in zip(RING_SIZES, chord_hops):
        assert h <= 1.5 * math.log2(n), (n, h)
    growth_chord = chord_hops[-1] / chord_hops[0]
    growth_flood = flood_msgs[-1] / flood_msgs[0]
    # 64 -> 4096 peers: flooding cost explodes ~linearly, Chord barely moves.
    assert growth_chord < 3.0
    assert growth_flood > 10.0
