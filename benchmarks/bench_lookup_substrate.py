"""Robustness R1: results do not depend on the discovery substrate.

§3.2 treats the lookup protocol as pluggable ("Chord [20] or CAN [16]");
if the reproduction were sensitive to which DHT serves discovery, that
assumption would be violated.  The bench runs the same QSA workload on
both substrates and checks that ψ matches closely while the per-request
lookup cost differs exactly as the two protocols' routing predicts.
"""

from dataclasses import replace

import pytest

from repro.experiments.config import default_scale
from repro.experiments.reporting import banner, format_sweep_table
from repro.experiments.runner import run_experiment


def run_on(substrate: str):
    base = default_scale(rate_per_min=200.0, horizon=20.0, seed=0)
    cfg = replace(
        base, grid=replace(base.grid, lookup_protocol=substrate)
    ).with_algorithm("qsa")
    return run_experiment(cfg)


@pytest.mark.benchmark(group="claims")
def test_psi_is_substrate_independent(benchmark):
    out = benchmark.pedantic(
        lambda: {"chord": run_on("chord"), "can": run_on("can")},
        rounds=1,
        iterations=1,
    )

    print()
    print(banner(
        "Robustness R1 -- discovery substrate independence",
        "QSA at 200 req/min (paper units), 20 min, Chord vs CAN",
    ))
    print(format_sweep_table(
        "metric", [0],
        {
            "chord psi": [out["chord"].success_ratio],
            "can psi": [out["can"].success_ratio],
            "chord hops": [out["chord"].mean_lookup_hops],
            "can hops": [out["can"].mean_lookup_hops],
        },
        value_format="{:10.3f}",
    ))

    # ψ must agree closely: discovery returns identical records either way.
    assert abs(
        out["chord"].success_ratio - out["can"].success_ratio
    ) < 0.05
    # Both substrates actually route (nonzero per-request lookup cost).
    assert out["chord"].mean_lookup_hops > 0
    assert out["can"].mean_lookup_hops > 0
