"""Sensitivity S1: the headline result is robust to the loose knobs.

§4.1 fixes most parameters but leaves several modelling knobs loose
(replica density, instance diversity, probe staleness, catalog quality
mix).  A reproduction whose "QSA wins" depends delicately on any of them
would be fragile; this bench perturbs each knob around the operating
point and checks that QSA's lead over random survives everywhere.
"""

import pytest

from repro.experiments.reporting import banner, format_sweep_table
from repro.experiments.sensitivity import sweep

SWEEPS = {
    "replicas": (30.0, 60.0, 90.0),
    "instances": (8.0, 15.0, 25.0),
    "probe_period": (0.5, 1.0, 4.0),
    "quality_high_share": (0.2, 0.5, 0.8),
}


@pytest.mark.benchmark(group="sensitivity")
def test_qsa_lead_robust_to_loose_knobs(benchmark):
    def run():
        return {
            knob: sweep(knob, values, rate=200.0, horizon=15.0, seed=0)
            for knob, values in SWEEPS.items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(banner(
        "Sensitivity S1 -- QSA's lead across loose modelling knobs",
        "rate = 200 req/min (paper units), 15 min; gap = ψ(QSA) − ψ(random)",
    ))
    for knob, rows in results.items():
        print(f"\n{knob}:")
        print(format_sweep_table(
            knob,
            [r.value for r in rows],
            {
                "qsa": [r.qsa for r in rows],
                "random": [r.random for r in rows],
                "gap": [r.gap for r in rows],
            },
        ))

    for knob, rows in results.items():
        for row in rows:
            assert row.gap > 0.0, (
                f"QSA lost its lead at {knob}={row.value}: "
                f"qsa={row.qsa:.3f} random={row.random:.3f}"
            )
