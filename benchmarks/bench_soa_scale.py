"""Struct-of-arrays peer-state core: backend shoot-out and scale probes.

Three claims from the SoA PR:

* **exactness** -- the ``soa`` and ``object`` backends produce
  identical ψ / lookup hops / admissions per seed (the representation
  is unobservable; tests/perf/test_soa_differential.py proves the
  stronger byte-identical-telemetry property);
* **paper scale** -- the 10^4-peer population of §4.1 runs end to end
  in seconds, with the store's array footprint in the megabytes;
* **beyond paper scale** -- a 10^5-peer grid constructs and serves a
  short steady load without memory blow-up (the ``scale-10x`` bench
  scenario records the same probe into ``BENCH_<n>.json``).

Wall-clock assertions are deliberately loose (host noise); the recorded
trajectory (BENCH_5.json's ``scale-1x``/``scale-10x`` scenarios) pins
the methodology and the committed reference numbers.
"""

import time

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.reporting import banner, format_sweep_table
from repro.grid import GridConfig
from repro.probing.prober import ProbingConfig
from repro.workload.generator import WorkloadConfig


def _config(n_peers, backend="soa", rate_per_min=60.0, horizon=8.0, seed=0):
    return ExperimentConfig(
        grid=GridConfig(
            n_peers=n_peers,
            probing=ProbingConfig(budget=max(10, n_peers // 100)),
            seed=seed,
            peer_state_backend=backend,
        ),
        workload=WorkloadConfig(
            rate_per_min=rate_per_min, horizon=horizon,
            duration_range=(1.0, 8.0),
        ),
        drain_minutes=10.0,
    )


def _best_of(config, repeats):
    best, result = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_experiment(config)
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.mark.benchmark(group="claims")
def test_soa_backend_matches_object_backend(benchmark):
    def run():
        out = {}
        for backend in ("soa", "object"):
            out[backend] = _best_of(_config(500, backend=backend), repeats=3)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    (t_soa, soa), (t_obj, obj) = out["soa"], out["object"]

    print()
    print(banner(
        "SoA peer-state core -- backend shoot-out",
        "500 peers, 60 req/min, 8 min horizon; wall seconds best-of-3",
    ))
    print(format_sweep_table(
        "backend", [0],
        {"soa": [t_soa], "object": [t_obj]},
        value_format="{:8.3f}",
    ))
    print(f"speedup: {t_obj / t_soa:.2f}x  "
          f"(psi={soa.success_ratio:.4f} both backends)")

    # Exactness: the backend is a representation choice, not a policy.
    assert soa.success_ratio == obj.success_ratio
    assert soa.mean_lookup_hops == obj.mean_lookup_hops
    assert soa.n_admitted == obj.n_admitted
    assert soa.n_requests == obj.n_requests
    # Loose wall claim: the array core must not be slower than the
    # object loop beyond noise.
    assert t_soa <= 1.5 * t_obj


@pytest.mark.benchmark(group="claims")
def test_paper_scale_end_to_end(benchmark):
    """The §4.1 population (10^4 peers, M = 100) runs in seconds."""
    def run():
        return _best_of(
            _config(10_000, rate_per_min=100.0, horizon=5.0), repeats=1
        )

    wall, result = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(banner(
        "SoA peer-state core -- paper scale (10^4 peers)",
        f"wall {wall:.2f}s, {result.n_requests} requests, "
        f"psi={result.success_ratio:.4f}",
    ))
    assert result.n_requests > 100
    assert 0.5 <= result.success_ratio <= 1.0
    # Paper scale is interactive on commodity hardware now; this bound
    # is ~20x slack over the recorded BENCH_5 number.
    assert wall < 60.0


@pytest.mark.benchmark(group="claims")
def test_beyond_paper_scale_memory_bounded(benchmark):
    """10^5 peers: constructs, serves, and the store stays megabytes."""
    from repro.grid import P2PGrid

    def run():
        t0 = time.perf_counter()
        grid = P2PGrid(_config(100_000).grid)
        construct = time.perf_counter() - t0
        store = getattr(grid.directory, "store", None)
        return construct, store.memory_bytes() if store else None

    construct, store_bytes = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(banner(
        "SoA peer-state core -- 10^5-peer capacity probe",
        f"construction {construct:.2f}s, store {store_bytes / 1e6:.1f} MB",
    ))
    assert store_bytes is not None, "scale grids must run the SoA backend"
    # ~11.3 MB at 10^5 rows today; the bound flags accidental per-row
    # object resurrection (the object directory costs ~100x more).
    assert store_bytes < 64e6
