"""Claim C1: QCS costs O(K V^2) (paper §3.2).

``V`` is the total number of candidate instances, ``K`` the candidates
of the source service.  With layered candidates (V/n per layer), the
edge count -- the true work -- grows quadratically in the per-layer
candidate count; doubling V should roughly quadruple the runtime, i.e.
the log-log slope of time vs V sits near 2 (and clearly below 3).
"""

import time

import numpy as np
import pytest

from repro.core.composition import compose_qcs
from repro.core.qos import Interval, QoSVector
from repro.core.resources import ResourceVector, WeightProfile
from repro.experiments.reporting import banner, format_sweep_table
from repro.services.model import AbstractServicePath, ServiceInstance

NAMES = ("cpu", "memory")
WEIGHTS = WeightProfile.uniform(NAMES, (1000.0, 1000.0), 1e6)
USER = QoSVector(format="final", quality=Interval(1, 3))
N_SERVICES = 4


def make_catalog(per_layer: int, rng: np.random.Generator):
    services = tuple(f"s{k}" for k in range(N_SERVICES))
    cat = {}
    for k, svc in enumerate(services):
        fmt_in = f"if{k}"
        fmt_out = f"if{k+1}" if k < N_SERVICES - 1 else "final"
        cat[svc] = [
            ServiceInstance(
                f"{svc}/{j}",
                svc,
                qin=QoSVector(format=fmt_in, quality=Interval(1, 3)),
                qout=QoSVector(format=fmt_out, quality=3),
                resources=ResourceVector(NAMES, rng.uniform(1, 900, 2)),
                bandwidth=float(rng.uniform(1e3, 9e5)),
            )
            for j in range(per_layer)
        ]
    return AbstractServicePath("scaling", services), cat


def time_compose(per_layer: int, method: str, repeats: int = 5) -> float:
    rng = np.random.default_rng(per_layer)
    path, cat = make_catalog(per_layer, rng)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        compose_qcs(path, cat, USER, WEIGHTS, method=method)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.benchmark(group="claims")
def test_qcs_scaling_is_quadratic_in_candidates(benchmark):
    per_layer_counts = (8, 16, 32, 64, 128)

    def run():
        return {
            "dijkstra": [time_compose(n, "dijkstra") for n in per_layer_counts],
            "dp": [time_compose(n, "dp") for n in per_layer_counts],
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)

    v_values = [n * N_SERVICES for n in per_layer_counts]
    print()
    print(banner(
        "Claim C1 -- QCS complexity O(K V^2)",
        f"{N_SERVICES} services, V = total candidate instances; "
        "seconds per composition",
    ))
    print(format_sweep_table(
        "V (candidates)", v_values,
        {m: ts for m, ts in times.items()},
        value_format="{:10.6f}",
    ))

    for method, ts in times.items():
        # Log-log slope over the upper half of the sweep (away from
        # constant overheads).
        logs_n = np.log(per_layer_counts[2:])
        logs_t = np.log(ts[2:])
        slope = np.polyfit(logs_n, logs_t, 1)[0]
        print(f"{method}: empirical exponent = {slope:.2f}")
        assert slope < 3.0, f"{method} scales worse than quadratic: {slope:.2f}"
    # 16x the candidates must cost well over 16x (superlinear edge work).
    assert times["dp"][-1] / times["dp"][0] > 16
