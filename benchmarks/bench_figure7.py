"""Figure 7: average ψ vs topological variation rate (peers/min).

Paper: rate fixed at 100 req/min over 60 minutes; "QSA tolerates
topological variation best and uniformly achieves the highest success
ratio", and "the performance of P2P systems is very sensitive to the
topological variation, even with a small number of peer
arrivals/departures (<= 2% total peers)".
"""

import pytest

from repro.experiments.figures import figure7
from repro.experiments.reporting import banner, format_sweep_table

CHURN_RATES = (0, 25, 50, 100, 150, 200)


@pytest.mark.benchmark(group="figures")
def test_figure7_success_ratio_vs_churn(benchmark):
    sweep = benchmark.pedantic(
        figure7,
        kwargs={
            "churn_rates": CHURN_RATES,
            "rate": 100.0,
            "horizon": 60.0,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    print()
    print(banner(
        "Figure 7 -- average success ratio vs topological variation rate",
        "request rate = 100 req/min (paper units), 60 minutes",
    ))
    print(format_sweep_table(sweep.x_label, sweep.x_values, sweep.ratios))

    qsa = sweep.ratios["qsa"]
    rnd = sweep.ratios["random"]
    fix = sweep.ratios["fixed"]
    # QSA uniformly highest.
    for i in range(len(CHURN_RATES)):
        assert qsa[i] >= rnd[i] - 0.02
        assert qsa[i] >= fix[i]
    # Sensitivity: moderate churn already costs QSA noticeably.
    assert qsa[3] < qsa[0] - 0.05
    # Tolerance ordering: QSA retains more of its churn-free ψ than random.
    qsa_retention = qsa[-1] / max(qsa[0], 1e-9)
    rnd_retention = rnd[-1] / max(rnd[0], 1e-9)
    assert qsa_retention >= rnd_retention - 0.10
