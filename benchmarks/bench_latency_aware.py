"""Extension E2: latency-aware peer selection.

The probing layer maintains per-pair latency (the paper lists "network
bandwidth and delay" among the performance information, §1/§3.3) but
Eq. 4's Φ only weighs resources and bandwidth.  This bench evaluates the
natural extension -- a Φ latency term (`PhiWeights.latency_aware`) -- on
the metric it targets: the delivery path's end-to-end latency, while ψ
must not regress materially.
"""

import numpy as np
import pytest

from repro.core.selection import PhiWeights
from repro.experiments.config import default_scale
from repro.experiments.latency import mean_path_latency, setup_latency_ms
from repro.experiments.metrics import MetricsCollector
from repro.experiments.reporting import banner, format_sweep_table
from repro.grid import P2PGrid
from repro.workload.generator import RequestGenerator


def run_variant(phi_weights=None, rate=200.0, horizon=20.0, seed=0):
    cfg = default_scale(rate_per_min=rate, horizon=horizon, seed=seed)
    grid = P2PGrid(cfg.grid)
    options = {}
    if phi_weights is not None:
        options["phi_weights"] = phi_weights
    aggregator = grid.make_aggregator("qsa", **options)
    metrics = MetricsCollector()
    grid.on_session_outcome(metrics.on_session)
    results = []

    def sink(request):
        result = aggregator.aggregate(request)
        metrics.on_setup(result)
        results.append(result)

    generator = RequestGenerator(
        grid.sim, cfg.workload, grid.applications,
        alive_peer_ids=lambda: grid.directory.alive_ids,
        sink=sink,
        rng=grid.rngs.stream("workload"),
    )
    generator.start()
    grid.sim.run(until=horizon + 61.0)
    grid.sim.run()
    path_ms = mean_path_latency(results, grid.network)
    setup_ms = float(np.mean([
        setup_latency_ms(r, grid.network) for r in results
    ]))
    return metrics.success_ratio(), path_ms, setup_ms


@pytest.mark.benchmark(group="extensions")
def test_latency_term_reduces_path_latency(benchmark):
    def run():
        names = ("cpu", "memory")
        return {
            "paper Φ": run_variant(None),
            "latency-aware Φ": run_variant(
                PhiWeights.latency_aware(names, latency_weight=0.3)
            ),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(banner(
        "Extension E2 -- latency-aware peer selection",
        "Φ with a delay term vs the paper's Eq. 4; 200 req/min, 20 min",
    ))
    print(format_sweep_table(
        "metric", [0],
        {
            "psi (paper)": [out["paper Φ"][0]],
            "psi (lat)": [out["latency-aware Φ"][0]],
            "path ms (paper)": [out["paper Φ"][1]],
            "path ms (lat)": [out["latency-aware Φ"][1]],
            "setup ms (paper)": [out["paper Φ"][2]],
            "setup ms (lat)": [out["latency-aware Φ"][2]],
        },
        value_format="{:10.2f}",
    ))

    psi_paper, path_paper, _ = out["paper Φ"]
    psi_lat, path_lat, _ = out["latency-aware Φ"]
    # The delay term buys a clearly lower delivery-path latency...
    assert path_lat < path_paper * 0.8
    # ...without materially hurting admission success.
    assert psi_lat > psi_paper - 0.05
