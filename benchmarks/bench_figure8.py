"""Figure 8: ψ fluctuation under churn (100 peers/min, 100 req/min).

Paper: 60 minutes, sampled every 2 minutes; QSA stays on top throughout
while every algorithm fluctuates under the membership turbulence.
"""

import numpy as np
import pytest

from repro.experiments.figures import figure8
from repro.experiments.reporting import banner, format_series_table


@pytest.mark.benchmark(group="figures")
def test_figure8_fluctuation_under_churn(benchmark):
    series = benchmark.pedantic(
        figure8,
        kwargs={
            "rate": 100.0,
            "churn": 100.0,
            "horizon": 60.0,
            "bin_minutes": 2.0,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    print()
    print(banner(
        "Figure 8 -- success ratio fluctuation under topological variation",
        "churn = 100 peers/min, rate = 100 req/min (paper units), 60 min",
    ))
    print(format_series_table("time (min)", series.times, series.ratios))
    print("\noverall: " + ", ".join(
        f"{a}={v:.3f}" for a, v in series.overall.items()
    ))

    qsa = np.asarray(series.ratios["qsa"], dtype=float)
    rnd = np.asarray(series.ratios["random"], dtype=float)
    valid = np.isfinite(qsa) & np.isfinite(rnd)
    # QSA mostly on top window by window and clearly on average.
    assert np.mean(qsa[valid] >= rnd[valid] - 0.05) > 0.8
    assert series.overall["qsa"] > series.overall["random"]
    assert series.overall["qsa"] > series.overall["fixed"]
    # Churn drags everyone well below the no-churn operating point.
    assert series.overall["qsa"] < 0.95
