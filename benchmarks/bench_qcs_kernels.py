"""Kernel shoot-out: vectorized QCS vs the reference DP (PR 7).

Three regimes on identical layered catalogs (best-of-N wall time, so
host noise cancels):

* ``dp``            -- the memo-free reference sweep (per-request
                       python graph build + relaxation);
* ``vec fresh``     -- the vectorized kernel composing *previously
                       unseen* requests against a warm consistency
                       index: every compose is a plan-cache miss, i.e.
                       plan slicing (``np.ix_``) + masked-argmin
                       relaxation, with no satisfies() recomputation;
* ``vec amortized`` -- the steady-state serving regime: requests
                       repeat, so composition is a plan-cache hit.

The shape claims: with large candidate layers the vectorized kernel
beats the reference on fresh plans, and the amortized hit path beats it
by a wide margin.  Exactness is asserted inline (same instances, same
score) -- the speedup is only admissible because the answers are
identical (tests/core/test_composition_equivalence.py proves this
property-wide).
"""

import time

import numpy as np
import pytest

from repro.core.composition import compose_qcs
from repro.core.composition_vec import VectorizedComposer
from repro.core.qos import Interval, QoSVector
from repro.core.resources import ResourceVector, WeightProfile
from repro.experiments.reporting import banner, format_sweep_table
from repro.services.model import AbstractServicePath, ServiceInstance

NAMES = ("cpu", "memory")
WEIGHTS = WeightProfile.uniform(NAMES, (1000.0, 1000.0), 1e6)
USER = QoSVector(format="final", quality=Interval(1, 3))
N_SERVICES = 4
BATCH = 8


def make_catalog(per_layer: int, rng: np.random.Generator):
    services = tuple(f"s{k}" for k in range(N_SERVICES))
    cat = {}
    for k, svc in enumerate(services):
        fmt_in = f"if{k}"
        fmt_out = f"if{k+1}" if k < N_SERVICES - 1 else "final"
        cat[svc] = [
            ServiceInstance(
                f"k{per_layer}/{svc}/{j}",
                svc,
                qin=QoSVector(format=fmt_in, quality=Interval(1, 3)),
                qout=QoSVector(format=fmt_out, quality=3),
                resources=ResourceVector(NAMES, rng.uniform(1, 900, 2)),
                bandwidth=float(rng.uniform(1e3, 9e5)),
            )
            for j in range(per_layer)
        ]
    return AbstractServicePath("kernels", services), cat


def _batch(cat):
    """BATCH rotated candidate views; rotation changes the plan key."""
    out = []
    for i in range(BATCH):
        out.append({
            svc: layer[i % len(layer):] + layer[: i % len(layer)]
            for svc, layer in cat.items()
        })
    return out


def best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def time_kernels(per_layer: int):
    rng = np.random.default_rng(per_layer)
    path, cat = make_catalog(per_layer, rng)

    composer = VectorizedComposer(WEIGHTS)
    reference = compose_qcs(path, cat, USER, WEIGHTS, method="dp")
    vectorized = composer.compose(path, cat, USER)  # warms the index
    assert vectorized.instances == reference.instances
    assert vectorized.score == reference.score

    steady = _batch(cat)
    t_dp = best_of(
        lambda: [compose_qcs(path, r, USER, WEIGHTS, method="dp")
                 for r in steady]
    ) / BATCH

    # Fresh plans: dropping the memoized plans before each batch makes
    # every timed compose a plan-cache miss against the warm index.
    def fresh_batch():
        composer.invalidate_plans()
        for r in steady:
            composer.compose(path, r, USER)

    t_fresh = best_of(fresh_batch) / BATCH

    # Amortized: the same requests again -- all plan-cache hits.
    for r in steady:
        composer.compose(path, r, USER)
    t_hit = best_of(
        lambda: [composer.compose(path, r, USER) for r in steady]
    ) / BATCH
    return t_dp, t_fresh, t_hit


@pytest.mark.benchmark(group="claims")
def test_qcs_vectorized_kernel_speedup(benchmark):
    per_layer_counts = (8, 16, 32, 64)

    def run():
        rows = [time_kernels(n) for n in per_layer_counts]
        return {
            "dp": [r[0] for r in rows],
            "vec fresh": [r[1] for r in rows],
            "vec amortized": [r[2] for r in rows],
        }

    times = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print(banner(
        "PR 7 -- QCS kernel comparison",
        f"{N_SERVICES} services; seconds per composition, best-of-5",
    ))
    print(format_sweep_table(
        "candidates/layer", list(per_layer_counts),
        times, value_format="{:10.6f}",
    ))
    big = -1  # the widest layers: where the kernels are meant to differ
    fresh_ratio = times["dp"][big] / times["vec fresh"][big]
    hit_ratio = times["dp"][big] / times["vec amortized"][big]
    print(f"fresh-plan speedup at {per_layer_counts[big]}/layer: "
          f"{fresh_ratio:.1f}x; amortized: {hit_ratio:.1f}x")
    assert fresh_ratio > 1.5, (
        f"vectorized fresh-plan path only {fresh_ratio:.2f}x vs dp"
    )
    assert hit_ratio > 2.0, (
        f"amortized plan-hit path only {hit_ratio:.2f}x vs dp"
    )
