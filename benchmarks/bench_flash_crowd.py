"""Extension E3: absorbing a flash crowd.

The paper's evaluation drives stationary load; real P2P media systems
live and die by bursts (everyone opens the same stream at once).  This
bench points a 10x flash crowd at one application and measures who
absorbs it: QSA's load-aware composition+selection should degrade
gracefully where the blind policies collapse on the hot application's
replica set.
"""

import numpy as np
import pytest

from repro.experiments.config import default_scale
from repro.experiments.metrics import MetricsCollector
from repro.experiments.reporting import banner, format_sweep_table
from repro.grid import P2PGrid
from repro.workload.scenarios import FlashCrowd, VariableRateGenerator

HOT_APP = "video-on-demand"
HORIZON = 30.0
BURST = (10.0, 10.0)  # start, duration (minutes)


def run(algorithm: str, seed: int = 0):
    cfg = default_scale(rate_per_min=100.0, horizon=HORIZON, seed=seed)
    grid = P2PGrid(cfg.grid)
    aggregator = grid.make_aggregator(algorithm)
    metrics = MetricsCollector()
    grid.on_session_outcome(metrics.on_session)
    profile = FlashCrowd(
        base_rate=cfg.workload.rate_per_min,
        start=BURST[0],
        duration=BURST[1],
        peak=10.0,
        hot_application=HOT_APP,
    )
    generator = VariableRateGenerator(
        grid.sim, profile, HORIZON,
        grid.applications,
        alive_peer_ids=lambda: grid.directory.alive_ids,
        sink=lambda req: metrics.on_setup(aggregator.aggregate(req)),
        rng=grid.rngs.stream("workload"),
        duration_range=(1.0, 15.0),
    )
    generator.start()
    grid.sim.run(until=HORIZON + 61.0)
    grid.sim.run()

    # ψ of hot-application requests that arrived during the burst.
    burst_hot = [
        r for r in metrics.records.values()
        if r.application == HOT_APP
        and BURST[0] <= r.arrival_time < BURST[0] + BURST[1]
        and r.success is not None
    ]
    psi_burst = (
        sum(r.success for r in burst_hot) / len(burst_hot)
        if burst_hot else float("nan")
    )
    return metrics.success_ratio(), psi_burst, len(burst_hot)


@pytest.mark.benchmark(group="extensions")
def test_flash_crowd_absorption(benchmark):
    out = benchmark.pedantic(
        lambda: {a: run(a) for a in ("qsa", "random", "fixed")},
        rounds=1,
        iterations=1,
    )

    print()
    print(banner(
        "Extension E3 -- flash crowd absorption",
        f"10x burst on {HOT_APP!r} for {BURST[1]:g} min; "
        "ψ(burst) = hot-app success during the burst",
    ))
    print(format_sweep_table(
        "metric", [0],
        {
            "qsa ψ(all)": [out["qsa"][0]],
            "rnd ψ(all)": [out["random"][0]],
            "fix ψ(all)": [out["fixed"][0]],
            "qsa ψ(burst)": [out["qsa"][1]],
            "rnd ψ(burst)": [out["random"][1]],
            "fix ψ(burst)": [out["fixed"][1]],
        },
        value_format="{:10.3f}",
    ))
    print(f"(burst hot-app requests per run: ~{out['qsa'][2]})")

    # QSA absorbs the burst best, overall and inside the burst window.
    assert out["qsa"][0] > out["random"][0] > out["fixed"][0]
    assert out["qsa"][1] > out["random"][1]
    assert out["qsa"][1] > out["fixed"][1]
