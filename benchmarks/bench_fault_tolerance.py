"""Extension E2: graceful degradation under injected substrate faults.

The paper's evaluation assumes reliable probes, lookups and
reservations; its only fault is whole-peer churn.  This bench sweeps a
message-loss fault plan (probe loss + lookup failure + transient
admission failure at a shared rate) over the figure-5 workload and
measures how QSA's success ratio ψ degrades -- and how much of the loss
the retry/backoff hardening plus runtime recovery wins back.

Claims asserted (shape, not absolute values):

* ψ declines as the injected loss rate grows (monotone within noise);
* at every loss level, the recovery-enabled run dominates the
  recovery-disabled one;
* a faulted run still ends with balanced books (no leaked reservations).
"""

from dataclasses import replace

import pytest

from repro.experiments.config import default_scale
from repro.experiments.reporting import banner, format_sweep_table
from repro.experiments.runner import run_experiment
from repro.faults import FaultPlan, FaultSpec
from repro.sessions.recovery import RecoveryConfig

LOSS_RATES = (0.0, 0.1, 0.2, 0.4)


def plan_at(rate: float) -> FaultPlan:
    if rate == 0.0:
        return FaultPlan(name="clean")
    return FaultPlan(
        faults=(
            FaultSpec(kind="probe_loss", rate=rate),
            FaultSpec(kind="lookup_failure", rate=rate / 2),
            FaultSpec(kind="admission_failure", rate=rate / 4),
        ),
        name=f"loss-{rate:g}",
    )


def run_sweep():
    out = {"qsa (no recovery)": [], "qsa + recovery": []}
    injected = []
    for rate in LOSS_RATES:
        base = default_scale(
            rate_per_min=100.0, horizon=60.0, churn_per_min=25.0, seed=0
        ).with_faults(plan_at(rate))
        plain = run_experiment(base.with_algorithm("qsa"))
        out["qsa (no recovery)"].append(plain.success_ratio)
        with_rec = replace(
            base, grid=replace(base.grid, recovery=RecoveryConfig())
        )
        repaired = run_experiment(with_rec.with_algorithm("qsa"))
        out["qsa + recovery"].append(repaired.success_ratio)
        injected.append(repaired.n_faults_injected)
    return out, injected


@pytest.mark.benchmark(group="extensions")
def test_graceful_degradation_under_faults(benchmark):
    (out, injected) = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    print()
    print(banner(
        "Extension E2 -- fault injection and retry/backoff hardening",
        "Fig. 5 workload under growing substrate loss rates",
    ))
    print(format_sweep_table("injected loss rate", LOSS_RATES, out))
    print("faults injected per run: "
          + ", ".join(f"{r:g}: {n}" for r, n in zip(LOSS_RATES, injected)))

    plain = out["qsa (no recovery)"]
    repaired = out["qsa + recovery"]
    # Faults actually fire once the rate is nonzero.
    assert injected[0] == 0
    assert all(n > 0 for n in injected[1:])
    # Graceful degradation: ψ declines as loss grows (small-sample noise
    # allowance), and never collapses to zero at these loss levels.
    for prev, cur in zip(plain, plain[1:]):
        assert cur <= prev + 0.02
    assert plain[-1] < plain[0]
    assert plain[-1] > 0.0
    # Recovery dominates at every loss level.
    for p, r in zip(plain, repaired):
        assert r > p
