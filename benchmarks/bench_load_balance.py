"""Claim C5: QSA achieves load balance in heterogeneous grids (§1, §3).

"(4) Load balance.  Although each peer makes its own decisions based on
only local information, the solution should achieve the desired global
properties such as load balance" -- and §4.2 credits QSA's win to
"always selecting the peers which have the most abundant resources".

What Φ's availability-seeking rule targets is *water-filling*: the peer
with the most free resources absorbs the next instance, which evens out
absolute headroom across the heterogeneous population.  Operationally
the imbalance of blind placement shows up as admission failures -- the
random policy keeps landing instances on peers that cannot fit them.
The bench therefore reports three views of the same workload under QSA
and random placement:

* Jain fairness of remaining *headroom* (water-filling evenness),
* the count of resource-denied requests (the operational symptom), and
* ψ.
"""

import pytest

from repro.experiments.config import default_scale
from repro.experiments.loadbalance import UtilizationSampler
from repro.experiments.metrics import MetricsCollector
from repro.experiments.reporting import banner, format_sweep_table
from repro.grid import P2PGrid
from repro.workload.generator import RequestGenerator


def run_with_sampler(algorithm: str, rate: float = 400.0,
                     horizon: float = 30.0, seed: int = 0):
    cfg = default_scale(rate_per_min=rate, horizon=horizon, seed=seed)
    grid = P2PGrid(cfg.grid)
    aggregator = grid.make_aggregator(algorithm)
    metrics = MetricsCollector()
    grid.on_session_outcome(metrics.on_session)
    generator = RequestGenerator(
        grid.sim, cfg.workload, grid.applications,
        alive_peer_ids=lambda: grid.directory.alive_ids,
        sink=lambda req: metrics.on_setup(aggregator.aggregate(req)),
        rng=grid.rngs.stream("workload"),
    )
    generator.start()
    sampler = UtilizationSampler(grid.sim, grid.directory, period=2.0,
                                 horizon=horizon)
    sampler.start()
    grid.sim.run(until=horizon + 61.0)
    grid.sim.run()
    denied = metrics.breakdown().get("resources-denied", 0)
    return sampler.report(), metrics.success_ratio(), denied


@pytest.mark.benchmark(group="claims")
def test_qsa_load_balance_vs_random(benchmark):
    def run():
        return {
            "qsa": run_with_sampler("qsa"),
            "random": run_with_sampler("random"),
        }

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    qsa_rep, qsa_psi, qsa_denied = out["qsa"]
    rnd_rep, rnd_psi, rnd_denied = out["random"]

    print()
    print(banner(
        "Claim C5 -- load balance in heterogeneous environments",
        "same workload, 400 req/min (paper units), 30 min",
    ))
    print(format_sweep_table(
        "metric", [0],
        {
            "qsa headroom-jain": [qsa_rep.mean_jain_headroom],
            "rnd headroom-jain": [rnd_rep.mean_jain_headroom],
            "qsa denied": [float(qsa_denied)],
            "rnd denied": [float(rnd_denied)],
            "qsa psi": [qsa_psi],
            "rnd psi": [rnd_psi],
        },
        value_format="{:8.3f}",
    ))

    # Water-filling keeps headroom at least as even as blind placement.
    assert qsa_rep.mean_jain_headroom >= rnd_rep.mean_jain_headroom - 0.02
    # The operational symptom: far fewer resource-denied admissions.
    assert qsa_denied < rnd_denied * 0.5
    # And the paper's bottom line.
    assert qsa_psi > rnd_psi
