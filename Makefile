# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test test-full test-log bench bench-log bench-paper \
        figures figures-quick examples coverage clean profile \
        perf-record perf-check perf-scale lint serve loadgen top soak \
        sanitize

# Coverage floor enforced by `make coverage` and the CI test job.
COV_MIN ?= 70

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

# Fast edit-loop lane: skips the multi-second @pytest.mark.slow
# scenario runs.  CI (and `make test-full`) always runs everything.
test:
	$(PYTHON) -m pytest tests/ -m "not slow"

test-full:
	$(PYTHON) -m pytest tests/

# Project invariants (repro lint) always run; ruff/mypy run when
# installed (the pinned dev container ships neither) and their
# failures still fail the target.
lint:
	@tracked=$$(git ls-files | grep -E '(^|/)__pycache__/|\.py[cod]$$' || true); \
	if [ -n "$$tracked" ]; then \
		echo "compiled artifacts tracked in git:"; echo "$$tracked"; exit 1; \
	fi
	$(PYTHON) -m repro lint src tests
	$(PYTHON) -m repro lint --whole-program src tests
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check src tests || exit 1; \
	else echo "ruff not installed; skipping (CI runs it)"; fi
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
		$(PYTHON) -m mypy src/repro || exit 1; \
	else echo "mypy not installed; skipping (CI runs it)"; fi

test-log:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-log:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-paper:
	REPRO_PAPER_SCALE=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

profile:
	$(PYTHON) -m repro profile run --rate 100 --horizon 20 --cprofile

perf-record:
	$(PYTHON) -m repro perf record

# The scaling-curve probe on its own (scale-1x = the paper's 10^4
# peers, scale-10x = 10^5): records to a gitignored scratch document
# so it never claims a BENCH_<n> slot by accident.
perf-scale:
	PYTHONPATH=src $(PYTHON) -m repro perf record \
		--scenarios scale-1x scale-10x --out BENCH_scale_local.json

perf-check:
	@latest=$$(ls BENCH_*.json | sort -V | tail -1); \
	tmp=$$(mktemp /tmp/bench.XXXXXX.json); \
	echo "recording current checkout vs $$latest ..."; \
	$(PYTHON) -m repro perf record --scenarios smoke baseline churn heavy \
		--out $$tmp >/dev/null && \
	$(PYTHON) -m repro perf compare $$latest $$tmp; \
	status=$$?; rm -f $$tmp; exit $$status

# Serving plane (docs/serving.md): a resident grid behind HTTP, and the
# closed-loop load generator that drives it.  Override knobs like
# `make serve SERVE_ARGS="--scenario churn --port 9000"`.
serve:
	PYTHONPATH=src $(PYTHON) -m repro serve $(SERVE_ARGS)

loadgen:
	PYTHONPATH=src $(PYTHON) -m repro loadgen $(LOADGEN_ARGS)

# Live operator view of a running server (docs/observability.md):
# windowed rates, SLO burn, worst traces.  `make top TOP_ARGS="--port 9000"`.
top:
	PYTHONPATH=src $(PYTHON) -m repro top $(TOP_ARGS)

# Sustained-load soak with RSS/latency drift detection against a running
# server; `make soak SOAK_ARGS="--duration 60 --rate 50"`.
soak:
	PYTHONPATH=src $(PYTHON) -m repro loadgen --soak $(SOAK_ARGS)

# The runtime determinism contract (docs/static-analysis.md): same-seed
# and object-vs-soa runs must export byte-identical draw/write ledgers,
# and arming the sanitizer must cost < 10% wall with telemetry unchanged.
sanitize:
	@tmp=$$(mktemp -d /tmp/sanitize.XXXXXX); \
	trap 'rm -rf $$tmp' EXIT; \
	set -e; \
	PYTHONPATH=src $(PYTHON) -m repro run --rate 100 --horizon 10 \
		--churn 25 --seed 0 --sanitize $$tmp/a.jsonl >/dev/null; \
	PYTHONPATH=src $(PYTHON) -m repro run --rate 100 --horizon 10 \
		--churn 25 --seed 0 --sanitize $$tmp/b.jsonl >/dev/null; \
	PYTHONPATH=src $(PYTHON) -m repro sanitize compare $$tmp/a.jsonl $$tmp/b.jsonl; \
	PYTHONPATH=src $(PYTHON) -m repro run --rate 100 --horizon 10 \
		--churn 25 --seed 0 --backend object --sanitize $$tmp/obj.jsonl >/dev/null; \
	PYTHONPATH=src $(PYTHON) -m repro sanitize compare $$tmp/a.jsonl $$tmp/obj.jsonl; \
	PYTHONPATH=src $(PYTHON) -m repro sanitize overhead --rate 100 \
		--horizon 20 --seed 0 --repeat 3

figures:
	$(PYTHON) examples/paper_figures.py

figures-quick:
	$(PYTHON) examples/paper_figures.py --quick

examples:
	for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex || exit 1; done

coverage:
	@if $(PYTHON) -c "import pytest_cov" 2>/dev/null; then \
		$(PYTHON) -m pytest tests/ --cov=repro --cov-report=term-missing \
			--cov-fail-under=$(COV_MIN) || exit 1; \
	else \
		echo "pytest-cov not installed; running plain test suite"; \
		$(PYTHON) -m pytest tests/; \
	fi

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
