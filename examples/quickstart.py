#!/usr/bin/env python
"""Quickstart: aggregate one QoS-aware service path on a P2P grid.

Builds a 500-peer grid, issues a single video-on-demand request at high
quality, and walks through what the QSA model produced: the composed
service path (tier 1), the selected peers (tier 2), and the admitted
session.

Run:  python examples/quickstart.py
"""

from repro import GridConfig, P2PGrid


def main() -> None:
    # A grid wires together every substrate: peers, network, catalog,
    # Chord registry, probing, sessions and (optionally) churn.
    grid = P2PGrid(GridConfig(n_peers=500, seed=7))
    print(f"grid up: {grid.directory.n_alive} peers, "
          f"{grid.catalog.n_instances} service instances, "
          f"{len(grid.ring)} Chord ring members")

    # The paper's algorithm.
    qsa = grid.make_aggregator("qsa")

    # "I want to watch a high-quality video for 15 minutes."
    request = grid.make_request(
        "video-on-demand", qos_level="high", duration=15.0
    )
    print(f"\nrequest #{request.request_id} from peer {request.peer_id}: "
          f"{request.application} @ {request.qos_level} "
          f"for {request.session_duration:g} min")

    result = qsa.aggregate(request)
    print(f"outcome: {result.status.value} "
          f"(discovery cost: {result.lookup_hops} DHT hops)")

    if result.admitted:
        print("\ncomposed service path (tier 1 -- QCS):")
        for inst, peer in zip(result.composed.instances, result.peers):
            print(f"  {inst.instance_id:<22} on peer {peer:<5} "
                  f"R={inst.resources.values}  b={inst.bandwidth/1e3:.0f} kbps "
                  f"quality={inst.qout['quality']}")
        print(f"  -> delivered to peer {request.peer_id} (the user)")
        print(f"aggregated resource score: {result.composed.score:.4f}")

        # Let the session run to completion.
        grid.sim.run(until=20.0)
        print(f"\nafter 20 simulated minutes: "
              f"{grid.ledger.n_completed} session(s) completed, "
              f"{grid.ledger.n_active} active")


if __name__ == "__main__":
    main()
