#!/usr/bin/env python
"""Bring your own application: a custom processing pipeline on the grid.

The workload machinery is not hard-wired to the paper's ten
applications: you define :class:`ApplicationTemplate`\\ s and the catalog
generator builds instances/replicas for them with the §4.1 statistics.
This example deploys a sensor-analytics pipeline and a two-stage backup
service, compares QSA against random placement across seeds (with
confidence intervals), and audits the grid's invariants afterwards.

Run:  python examples/custom_pipeline.py
"""

from repro import ApplicationTemplate, GridConfig, P2PGrid
from repro.core.explain import explain_result
from repro.diagnostics import check_grid_invariants
from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import replicate
from repro.workload.generator import WorkloadConfig

CUSTOM_APPS = [
    ApplicationTemplate(
        "sensor-analytics",
        ("sensor-feed", "denoise", "feature-extract", "dashboard"),
        formats_per_interface=2,
    ),
    ApplicationTemplate(
        "offsite-backup",
        ("snapshot-store", "compressor"),
        formats_per_interface=2,
    ),
]


def main() -> None:
    # --- single request walk-through -------------------------------------
    grid = P2PGrid(GridConfig(n_peers=400, seed=5), applications=CUSTOM_APPS)
    print(f"grid hosts {grid.catalog.n_instances} instances of "
          f"{len(CUSTOM_APPS)} custom applications\n")

    qsa = grid.make_aggregator("qsa")
    request = grid.make_request("sensor-analytics", qos_level="average",
                                duration=10.0)
    result = qsa.aggregate(request)
    print(explain_result(result))

    problems = check_grid_invariants(grid)
    print(f"\ninvariant audit: "
          f"{'clean' if not problems else problems}")

    # --- replicated comparison across seeds -------------------------------
    print("\nQSA vs random on the custom workload (5 seeds):")
    base = ExperimentConfig(
        grid=GridConfig(n_peers=400, applications=tuple(CUSTOM_APPS)),
        workload=WorkloadConfig(rate_per_min=12.0, horizon=20.0,
                                duration_range=(1.0, 15.0)),
    )
    rep = replicate(base, algorithms=("qsa", "random"), n_seeds=5)
    print(rep.summary())
    print(f"paired wins (qsa over random): "
          f"{rep.wins('qsa', 'random')}/{len(rep.seeds)}")


if __name__ == "__main__":
    main()
