#!/usr/bin/env python
"""Video-on-demand under load: QSA vs the random and fixed heuristics.

The paper's motivating workload: users across a P2P grid request
video-on-demand deliveries (server -> transcoder -> player) at mixed
quality levels while the grid serves nine other applications.  This
example drives identical request streams through all three algorithms
and prints the §4.1 success-ratio comparison plus a per-QoS-level
breakdown showing *where* each algorithm loses requests.

Run:  python examples/video_on_demand.py
"""

from collections import Counter, defaultdict

from repro import ExperimentConfig, GridConfig, WorkloadConfig
from repro.experiments.runner import run_experiment


def main() -> None:
    config = ExperimentConfig(
        grid=GridConfig(n_peers=1000, seed=11),
        workload=WorkloadConfig(rate_per_min=25.0, horizon=40.0),
    )
    print("1000 peers, 25 req/min for 40 minutes, sessions up to 60 min\n")

    results = {}
    for algo in ("qsa", "random", "fixed"):
        results[algo] = run_experiment(config.with_algorithm(algo))

    print(f"{'algorithm':>10} {'psi':>7} {'requests':>9}")
    print("-" * 30)
    for algo, result in results.items():
        print(f"{algo:>10} {result.success_ratio:7.3f} {result.n_requests:9d}")

    print("\nper-QoS-level success (video-on-demand requests only):")
    header = f"{'level':>10}" + "".join(f"{a:>10}" for a in results)
    print(header)
    print("-" * len(header))
    for level in ("low", "average", "high"):
        row = f"{level:>10}"
        for algo, result in results.items():
            records = [
                r for r in result.metrics.records.values()
                if r.application == "video-on-demand" and r.qos_level == level
                and r.success is not None
            ]
            psi = (
                sum(r.success for r in records) / len(records)
                if records else float("nan")
            )
            row += f"{psi:10.3f}"
        print(row)

    print("\nfailure breakdown:")
    for algo, result in results.items():
        failures = Counter(
            r.status for r in result.metrics.records.values() if not r.success
        )
        top = ", ".join(f"{k}: {v}" for k, v in failures.most_common(3))
        print(f"  {algo:>7}: {top if top else 'none'}")


if __name__ == "__main__":
    main()
