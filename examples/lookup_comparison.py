#!/usr/bin/env python
"""Discovery substrates compared: Chord DHT vs Gnutella-style flooding.

The paper's §1/§5 motivate structured lookup (Chord [20], CAN [16]) over
the flooding of first-generation P2P systems.  This example measures the
trade on the same membership: per-lookup hop counts for Chord against
per-query message counts for TTL-bounded flooding, across ring sizes.

Run:  python examples/lookup_comparison.py
"""

import math

import numpy as np

from repro.lookup.chord import ChordRing
from repro.lookup.flooding import FloodingOverlay


def measure(n_peers: int, seed: int = 0):
    rng = np.random.default_rng(seed)

    ring = ChordRing(bits=32, seed=seed)
    for pid in range(n_peers):
        ring.join(pid)
    for i in range(100):
        ring.put(f"service:{i}", i)
    chord_hops = []
    for i in range(100):
        _, hops = ring.get(f"service:{i}", from_peer=int(rng.integers(n_peers)))
        chord_hops.append(hops)

    overlay = FloodingOverlay(range(n_peers), degree=4, rng=rng)
    holders = set(rng.choice(n_peers, size=max(1, n_peers // 50),
                             replace=False))
    flood_msgs, flood_found = [], 0
    for _ in range(50):
        result = overlay.flood(
            int(rng.integers(n_peers)), lambda p: p in holders, ttl=6
        )
        flood_msgs.append(result.messages)
        flood_found += bool(result.found)

    return (
        float(np.mean(chord_hops)),
        float(np.mean(flood_msgs)),
        flood_found / 50,
    )


def main() -> None:
    print(f"{'N':>7} {'log2(N)':>8} {'chord hops':>11} "
          f"{'flood msgs':>11} {'flood hit%':>11}")
    print("-" * 52)
    for n in (128, 512, 2048, 8192):
        hops, msgs, hit = measure(n)
        print(f"{n:>7} {math.log2(n):8.1f} {hops:11.2f} {msgs:11.0f} "
              f"{hit:11.0%}")
    print(
        "\nChord resolves any record in ~log2(N) routed hops; flooding\n"
        "costs messages proportional to the whole population and still\n"
        "misses rare records when the TTL runs out -- the scalability\n"
        "argument for DHT-based discovery in the paper, measured."
    )


if __name__ == "__main__":
    main()
