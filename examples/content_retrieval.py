#!/usr/bin/env python
"""Content retrieval: the paper's simplest aggregation example, by hand.

§2.1 uses content retrieval as the minimal service aggregation (the
workload's variant pairs a content store with a renderer, staying within
the §4.1 path-length bounds of 2-5).  This example skips the workload
harness and drives the two tiers manually so
you can see every intermediate artifact: the discovery results, the
consistency graph, the QCS choice, the Φ scores of the candidate hosting
peers, and the final admission.

Run:  python examples/content_retrieval.py
"""

import numpy as np

from repro import GridConfig, P2PGrid
from repro.core.composition import ConsistencyGraph, compose_qcs


def main() -> None:
    grid = P2PGrid(GridConfig(n_peers=400, seed=3))
    qsa = grid.make_aggregator("qsa")

    request = grid.make_request(
        "content-retrieval", qos_level="average", duration=8.0
    )
    path, user_qos = grid.compiler.compile(
        request, grid.rngs.stream("example")
    )
    print(f"abstract path: {' -> '.join(path.services)} -> user")
    print(f"user QoS requirement: {user_qos!r}\n")

    # -- tier 0: discovery through the Chord registry --------------------
    candidates, hops = grid.registry.discover_path_candidates(
        path.services, request.peer_id
    )
    for service, specs in candidates.items():
        print(f"discovered {len(specs):2d} instances of {service!r} "
              f"({hops} DHT hops total)")

    # -- tier 1: QCS ------------------------------------------------------
    graph = ConsistencyGraph(path, candidates, user_qos,
                             grid.composition_weights)
    print(f"\nconsistency graph: {graph.n_nodes} nodes, "
          f"{graph.n_edges} QoS-consistent edges")
    composed = compose_qcs(path, candidates, user_qos,
                           grid.composition_weights)
    chosen = composed.instances[-1]
    print(f"QCS choice: {chosen.instance_id} "
          f"(score {composed.score:.4f}, R={chosen.resources.values}, "
          f"b={chosen.bandwidth/1e3:.0f} kbps)")

    # -- tier 2: peer selection with Φ ------------------------------------
    hosts = sorted(grid.catalog.hosts(chosen.instance_id))
    print(f"\n{len(hosts)} peers host {chosen.instance_id}; "
          "the requester resolves them as 1-hop direct neighbors and probes:")
    grid.probing.resolve_selection_hops(request.peer_id, [hosts], direct=True)
    scored = []
    for pid in hosts:
        info = grid.probing.observe(request.peer_id, pid)
        if info is None:
            continue
        phi = grid.phi_weights.phi(
            info.availability, chosen.resources,
            info.bandwidth_to_observer, chosen.bandwidth,
        )
        scored.append((phi, pid, info))
    scored.sort(reverse=True)
    for phi, pid, info in scored[:5]:
        print(f"  peer {pid:<5} Φ={phi:8.2f} "
              f"avail={info.availability.values} "
              f"β={info.bandwidth_to_observer/1e6:.2f} Mbps "
              f"uptime={info.uptime:.0f} min")
    print("  ...")

    # -- end to end through the aggregator ----------------------------------
    result = qsa.aggregate(request)
    print(f"\nfull pipeline outcome: {result.status.value}; "
          f"selected peer(s): {result.peers}")
    grid.sim.run(until=10.0)
    print(f"sessions completed: {grid.ledger.n_completed}")


if __name__ == "__main__":
    main()
