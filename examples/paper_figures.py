#!/usr/bin/env python
"""Reproduce all four of the paper's result figures in one command.

Runs Fig. 5-8 at a configurable (default: small) scale, prints the
tables with ASCII charts, and writes the underlying data as CSV next to
this script, so the whole §4.2 evaluation is regenerated end to end.

Run:  python examples/paper_figures.py [--quick]

``--quick`` shrinks horizons further for a smoke-speed pass;
``REPRO_PAPER_SCALE=1`` runs the literal 10^4-peer setup (slow).
"""

import argparse
import pathlib

from repro.experiments import figures
from repro.experiments.export import series_to_csv, sweep_to_csv
from repro.experiments.plotting import ascii_chart
from repro.experiments.reporting import banner, format_sweep_table

OUT_DIR = pathlib.Path(__file__).resolve().parent / "figure_data"


def show_sweep(sweep, title, x_label, csv_name):
    print()
    print(banner(title))
    print(format_sweep_table(sweep.x_label, sweep.x_values, sweep.ratios))
    print()
    print(ascii_chart(
        {name: (sweep.x_values, ys) for name, ys in sweep.ratios.items()},
        y_range=(0.0, 1.0), x_label=x_label, title=title,
    ))
    path = sweep_to_csv(sweep.x_label, sweep.x_values, sweep.ratios,
                        OUT_DIR / csv_name)
    print(f"[data -> {path}]")


def show_series(series, title, csv_name):
    print()
    print(banner(title))
    print(ascii_chart(
        {name: (series.times, ys) for name, ys in series.ratios.items()},
        y_range=(0.0, 1.0), x_label="time (min)", title=title,
    ))
    print("overall: " + ", ".join(
        f"{a}={v:.3f}" for a, v in series.overall.items()))
    path = series_to_csv(series.times, series.ratios, OUT_DIR / csv_name)
    print(f"[data -> {path}]")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="smoke-speed pass (coarser sweeps)")
    args = parser.parse_args()
    OUT_DIR.mkdir(exist_ok=True)

    if args.quick:
        rates = (100, 400, 1000)
        churns = (0, 100, 200)
        f5_horizon, f6_horizon, f78_horizon = 15.0, 30.0, 30.0
    else:
        rates = (50, 100, 200, 400, 600, 800, 1000)
        churns = (0, 25, 50, 100, 150, 200)
        f5_horizon, f6_horizon, f78_horizon = 60.0, 100.0, 60.0

    show_sweep(
        figures.figure5(rates, horizon=f5_horizon),
        "Figure 5: average ψ vs request rate (no churn)",
        "request rate (req/min, paper units)",
        "figure5.csv",
    )
    show_series(
        figures.figure6(horizon=f6_horizon),
        "Figure 6: ψ fluctuation at 200 req/min",
        "figure6.csv",
    )
    show_sweep(
        figures.figure7(churns, horizon=f78_horizon),
        "Figure 7: average ψ vs topological variation",
        "churn rate (peers/min, paper units)",
        "figure7.csv",
    )
    show_series(
        figures.figure8(horizon=f78_horizon),
        "Figure 8: ψ fluctuation under churn (100 peers/min)",
        "figure8.csv",
    )


if __name__ == "__main__":
    main()
