#!/usr/bin/env python
"""Runtime failure recovery: repairing sessions that lose a peer.

The paper closes its evaluation with "we do need runtime failure
detection and recovery to improve the performance" under churn.  This
example runs that future work (implemented in
``repro.sessions.recovery``): a grid under churn with structured tracing
enabled, so you can watch departures kill sessions in the baseline and
get repaired in the extension, followed by the ψ comparison.

Run:  python examples/failure_recovery.py
"""

from repro import ChurnConfig, ExperimentConfig, GridConfig, WorkloadConfig
from repro.experiments.metrics import MetricsCollector
from repro.grid import P2PGrid
from repro.sessions.recovery import RecoveryConfig
from repro.workload.generator import RequestGenerator


def run(recovery, tracing=False, seed=31):
    config = GridConfig(
        n_peers=800,
        seed=seed,
        churn=ChurnConfig(rate_per_min=10.0),
        recovery=recovery,
        tracing=tracing,
    )
    grid = P2PGrid(config)
    aggregator = grid.make_aggregator("qsa")
    metrics = MetricsCollector()
    grid.on_session_outcome(metrics.on_session)
    generator = RequestGenerator(
        grid.sim,
        WorkloadConfig(rate_per_min=15.0, horizon=30.0),
        grid.applications,
        alive_peer_ids=lambda: grid.directory.alive_ids,
        sink=lambda req: metrics.on_setup(aggregator.aggregate(req)),
        rng=grid.rngs.stream("workload"),
    )
    generator.start()
    grid.sim.run(until=95.0)
    grid.churn.stop()
    grid.sim.run()
    return grid, metrics


def main() -> None:
    print("800 peers, 15 req/min for 30 min, churn 10 peers/min\n")

    print("--- baseline (paper model: departures kill sessions) ---")
    grid, metrics = run(recovery=None, tracing=True)
    failed = [
        e for e in grid.tracer.events("session-failed")
        if "departed" in str(e.fields.get("reason", ""))
    ]
    print(f"ψ = {metrics.success_ratio():.3f}; "
          f"{len(failed)} sessions killed by departures")
    print("sample of the event log:")
    for event in failed[:4]:
        print(f"  {event}")

    print("\n--- with runtime failure recovery ---")
    grid, metrics = run(recovery=RecoveryConfig(detection_delay=0.5),
                        tracing=True)
    repairs = grid.tracer.events("session-repaired")
    print(f"ψ = {metrics.success_ratio():.3f}; "
          f"{len(repairs)} sessions repaired in place "
          f"({grid.recovery.n_repair_failures} repairs failed)")
    for event in repairs[:4]:
        print(f"  {event}")

    print(
        "\nReading: the repair re-runs only the peer-selection tier for\n"
        "the slots the departed peer held (make-before-break), so most\n"
        "departure-doomed sessions finish after all."
    )


if __name__ == "__main__":
    main()
