#!/usr/bin/env python
"""Churn resilience: why peer uptime belongs in the selection metric.

Reproduces the paper's second experiment set in miniature: a grid under
increasing topological variation (peers arriving/departing every
minute), comparing full QSA against a QSA variant whose peer selector
ignores uptime, plus the random baseline.  Departures follow the
heavy-tailed-lifetime pattern measured for real P2P populations (young
peers leave first), which is exactly what makes uptime predictive.

Run:  python examples/churn_resilience.py
"""

from repro import ChurnConfig, ExperimentConfig, GridConfig, WorkloadConfig
from repro.experiments.runner import run_experiment


def run(churn_rate: float, uptime_filter: bool, algorithm: str = "qsa"):
    config = ExperimentConfig(
        grid=GridConfig(
            n_peers=800,
            seed=23,
            churn=(ChurnConfig(rate_per_min=churn_rate)
                   if churn_rate > 0 else None),
        ),
        workload=WorkloadConfig(rate_per_min=15.0, horizon=30.0),
    )
    if algorithm == "qsa":
        cfg = config.with_algorithm("qsa", uptime_filter=uptime_filter)
    else:
        cfg = config.with_algorithm(algorithm)
    return run_experiment(cfg)


def main() -> None:
    churn_rates = (0.0, 4.0, 8.0, 16.0)
    print("800 peers, 15 req/min for 30 min; churn in peers/min\n")
    print(f"{'churn':>7} {'qsa':>8} {'qsa-no-uptime':>14} {'random':>8} "
          f"{'turnover':>9}")
    print("-" * 52)
    for churn in churn_rates:
        full = run(churn, uptime_filter=True)
        blind = run(churn, uptime_filter=False)
        rnd = run(churn, uptime_filter=True, algorithm="random")
        turnover = full.n_arrivals + full.n_departures
        print(f"{churn:7.0f} {full.success_ratio:8.3f} "
              f"{blind.success_ratio:14.3f} {rnd.success_ratio:8.3f} "
              f"{turnover:9d}")

    print(
        "\nReading: even modest churn costs every algorithm dearly (the\n"
        "paper's point about needing runtime failure recovery), and the\n"
        "uptime filter is what keeps full QSA ahead as churn grows."
    )


if __name__ == "__main__":
    main()
