"""Ad-hoc differential check: SoA vs object backend, byte-identical telemetry."""
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, "src")

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults.plan import FaultPlan, FaultSpec
from repro.grid import GridConfig
from repro.network.churn import ChurnConfig
from repro.probing.prober import ProbingConfig
from repro.workload.generator import WorkloadConfig

PLAN = FaultPlan((
    FaultSpec(kind="probe_loss", rate=0.3),
    FaultSpec(kind="lookup_failure", rate=0.15),
    FaultSpec(kind="admission_failure", rate=0.1),
    FaultSpec(kind="stale_state", rate=0.5, staleness=2.0),
    FaultSpec(kind="partition", start=2.0, end=4.0, fraction=0.3),
), name="diff")


def run(backend: str, churn_rate: float, faulted: bool, path: str):
    grid = GridConfig(
        n_peers=250,
        probing=ProbingConfig(budget=10),
        seed=3,
        telemetry=True,
        peer_state_backend=backend,
    )
    if churn_rate > 0:
        grid = replace(grid, churn=ChurnConfig(rate_per_min=churn_rate))
    if faulted:
        grid = replace(grid, faults=PLAN)
    cfg = ExperimentConfig(
        grid=grid,
        workload=WorkloadConfig(
            rate_per_min=30.0, horizon=10.0, duration_range=(1.0, 8.0)
        ),
        drain_minutes=10.0,
        telemetry_export=path,
    )
    res = run_experiment(cfg)
    return res


def main():
    ok = True
    for label, churn_rate, faulted in (
        ("baseline", 0.0, False),
        ("churn", 5.0, False),
        ("faulted", 0.0, True),
    ):
        with tempfile.TemporaryDirectory() as td:
            pa = str(Path(td) / "soa.jsonl")
            pb = str(Path(td) / "obj.jsonl")
            ra = run("soa", churn_rate, faulted, pa)
            rb = run("object", churn_rate, faulted, pb)
            ba = Path(pa).read_bytes()
            bb = Path(pb).read_bytes()
            same = ba == bb
            ok = ok and same
            print(
                f"{label}: soa psi={ra.success_ratio:.6f} obj psi={rb.success_ratio:.6f} "
                f"events {ra.n_telemetry_events}/{rb.n_telemetry_events} "
                f"bytes {len(ba)}/{len(bb)} identical={same}"
            )
            if not same:
                for i, (la, lb) in enumerate(zip(ba.splitlines(), bb.splitlines())):
                    if la != lb:
                        print(f"  first diff at line {i}:")
                        print(f"    soa: {la[:300]!r}")
                        print(f"    obj: {lb[:300]!r}")
                        break
    sys.exit(0 if ok else 1)


if __name__ == "__main__":
    main()
