"""Runtime failure detection and recovery (the paper's future work).

§4.2 closes: "the performance of P2P systems is very sensitive to the
topological variation ... Under such circumstances, we do need runtime
failure detection and recovery to improve the performance", and the
conclusion lists failure recovery as future work.  This module implements
it so the claim can be measured rather than asserted:

* **Detection**: the churn machinery reports each departure; a
  configurable ``detection_delay`` models the probing/soft-state timeout
  before the repair runs (0 = instant detection).
* **Recovery**: the composed service path is kept (peer death does not
  affect its QoS consistency); only the *dynamic peer selection tier*
  re-runs for the slots the departed peer held.  Replacements come from
  the instance's surviving replicas via the same Φ/uptime selector, with
  the session's *remaining* duration as the uptime target.  Reservations
  follow make-before-break: the replacement's resources and connections
  are acquired first, then the stale ones are released, so a failed
  repair can always fall back to the plain failure path without
  double-releasing anything.

If re-selection or re-admission fails, the attempt budget is exhausted,
the user's own host left, or a second participant died in the detection
window, the session fails exactly as without recovery.

Fault tolerance
---------------
With a :class:`~repro.faults.injector.FaultInjector`, individual repair
reservations may transiently fail.  Unlike the synchronous setup path,
recovery is event driven, so transient failures reschedule the repair at
a *real* simulated backoff delay (``RecoveryConfig.retry``); transient
retries do not consume the ``max_attempts`` repair budget.  A genuine
shortage, or a drained transient budget, falls through to the plain
failure path -- make-before-break guarantees nothing was double-released
along the way.

``benchmarks/bench_recovery.py`` reruns the Fig. 7 churn sweep with
recovery enabled and reports the improvement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.selection import PeerSelector
from repro.faults.backoff import RetryPolicy
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.sessions.session import Session, SessionLedger
from repro.sim.engine import Simulator

__all__ = ["RecoveryConfig", "RecoveryManager"]


@dataclass(frozen=True)
class RecoveryConfig:
    """Knobs for runtime failure recovery.

    Attributes
    ----------
    enabled:
        Master switch (``False`` reduces to plain ``fail_peer``).
    detection_delay:
        Minutes between departure and repair attempt.
    max_attempts:
        How many repairs one session may consume over its lifetime.
    retry:
        Backoff for *transient* reservation failures during a repair
        (fault injection only); these retries reschedule on the sim
        clock and do not consume ``max_attempts``.
    """

    enabled: bool = True
    detection_delay: float = 0.0
    max_attempts: int = 3
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.detection_delay < 0:
            raise ValueError("detection delay must be non-negative")
        if self.max_attempts < 1:
            raise ValueError("need at least one recovery attempt")


class RecoveryManager:
    """Repairs sessions that lost a provisioning peer.

    The grid calls :meth:`on_peer_departure` in place of
    ``ledger.fail_peer``; unrepaired sessions are failed through the
    ledger as usual, so metrics flow unchanged.
    """

    def __init__(
        self,
        sim: Simulator,
        directory: PeerDirectory,
        network: NetworkModel,
        ledger: SessionLedger,
        selector: PeerSelector,
        hosts_of: Callable[[str], Sequence[int]],
        resolve_neighbors: Callable[[int, Sequence[Sequence[int]], bool], None],
        rng: np.random.Generator,
        config: RecoveryConfig | None = None,
        telemetry=None,
        injector=None,
    ) -> None:
        self.sim = sim
        self.directory = directory
        self.network = network
        self.ledger = ledger
        self.selector = selector
        self.hosts_of = hosts_of
        self.resolve_neighbors = resolve_neighbors
        self.rng = rng
        self.config = config or RecoveryConfig()
        #: Optional :class:`repro.telemetry.Telemetry`: repair events and
        #: the departure->repair latency histogram.
        self.telemetry = telemetry
        #: Optional fault injection (transient repair failures).
        self.injector = injector
        self._attempts: dict[int, int] = {}
        #: session id -> transient retries consumed for the current repair.
        self._transient: dict[int, int] = {}
        self.n_repairs = 0
        self.n_repair_failures = 0

    # -- entry point -----------------------------------------------------------
    def on_peer_departure(self, peer_id: int) -> None:
        """Handle a departure: repair what can be repaired, fail the rest."""
        if not self.config.enabled:
            self.ledger.fail_peer(peer_id)
            return
        for sid in list(self.ledger.sessions_on_peer(peer_id)):
            session = self._active(sid)
            if session is None:
                continue
            if session.user_peer == peer_id:
                # The requesting host itself left: nothing to deliver to.
                self.ledger.fail_session(
                    sid, f"user peer {peer_id} departed", skip_peer=peer_id
                )
                continue
            departed_at = self.sim.now
            if self.config.detection_delay > 0:
                self.sim.call_in(
                    self.config.detection_delay,
                    self._attempt, sid, peer_id, departed_at,
                )
            else:
                self._attempt(sid, peer_id, departed_at)

    # -- internals ---------------------------------------------------------------
    def _active(self, session_id: int) -> Optional[Session]:
        for s in self.ledger.active_sessions():
            if s.session_id == session_id:
                return s
        return None

    def _give_up(self, session_id: int, dead_peer: int) -> None:
        self._transient.pop(session_id, None)
        self.n_repair_failures += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter("recovery.failed").inc()
            self.telemetry.bus.emit(
                "recovery.failed", session_id=session_id, dead_peer=dead_peer
            )
        self.ledger.fail_session(
            session_id,
            f"peer {dead_peer} departed (unrecovered)",
            skip_peer=dead_peer,
        )

    def _attempt(
        self, session_id: int, dead_peer: int, departed_at: float
    ) -> None:
        session = self._active(session_id)
        if session is None:  # completed or failed during the window
            return
        # A second departure during the detection window is fatal.
        others_alive = all(
            self.directory.is_alive(pid)
            for pid in session.peers
            if pid != dead_peer
        )
        if not others_alive or not self.directory.is_alive(session.user_peer):
            self._give_up(session_id, dead_peer)
            return
        attempts = self._attempts.get(session_id, 0)
        if attempts >= self.config.max_attempts:
            self._give_up(session_id, dead_peer)
            return
        self._attempts[session_id] = attempts + 1

        new_peers = self._select_replacements(session, dead_peer)
        swap = (
            "shortage" if new_peers is None
            else self._swap_reservations(session, dead_peer, new_peers)
        )
        if swap == "transient":
            # An injected hiccup, not a shortage: back off on the sim
            # clock and retry without consuming the repair budget.
            self._attempts[session_id] = attempts
            n = self._transient.get(session_id, 0) + 1
            inj = self.injector
            retry = self.config.retry
            if n > retry.max_retries:
                inj.retry_exhausted(
                    "recovery", attempts=n, session_id=session_id
                )
                self._give_up(session_id, dead_peer)
                return
            self._transient[session_id] = n
            delay = retry.delay(n, inj.rng)
            inj.retry_attempt(
                "recovery", n, delay, session_id=session_id
            )
            self.sim.call_in(delay, self._attempt, session_id, dead_peer,
                             departed_at)
            return
        if swap != "ok":
            self._give_up(session_id, dead_peer)
            return
        self._transient.pop(session_id, None)
        old_peers = tuple(session.peers)
        self.ledger.reassign_session_peers(session_id, new_peers)
        self.n_repairs += 1
        if self.telemetry is not None:
            latency = self.sim.now - departed_at
            self.telemetry.metrics.counter("recovery.repaired").inc()
            self.telemetry.metrics.histogram("recovery.latency").observe(latency)
            self.telemetry.bus.emit(
                "recovery.repaired",
                session_id=session_id,
                dead_peer=dead_peer,
                latency=latency,
            )
        if self.ledger.tracer is not None:
            self.ledger.tracer.emit(
                "session-repaired",
                session_id=session_id,
                dead_peer=dead_peer,
                old_peers=old_peers,
                new_peers=new_peers,
            )

    def _select_replacements(
        self, session: Session, dead_peer: int
    ) -> Optional[Tuple[int, ...]]:
        """Re-run tier 2 for the dead slots (reverse-flow discipline)."""
        peers = list(session.peers)
        n = len(peers)
        remaining = max(session.end - self.sim.now, 0.0)
        for slot in range(n - 1, -1, -1):  # user side first
            if peers[slot] != dead_peer:
                continue
            inst = session.instances[slot]
            candidates = [
                pid
                for pid in self.hosts_of(inst.instance_id)
                if pid != dead_peer and self.directory.is_alive(pid)
            ]
            if not candidates:
                return None
            selecting = peers[slot + 1] if slot + 1 < n else session.user_peer
            self.resolve_neighbors(selecting, [candidates], False)
            outcome = self.selector.select_hop(
                selecting_peer=selecting,
                candidates=candidates,
                requirement=inst.resources,
                bandwidth_req=inst.bandwidth,
                session_duration=remaining,
                rng=self.rng,
            )
            if outcome.peer_id is None:
                return None
            peers[slot] = outcome.peer_id
        return tuple(peers)

    def _swap_reservations(
        self,
        session: Session,
        dead_peer: int,
        new_peers: Tuple[int, ...],
    ) -> str:
        """Make-before-break: acquire the repaired holds, then drop the
        stale ones.  Returns ``"ok"``, ``"shortage"`` (a ledger genuinely
        ran short) or ``"transient"`` (an injected hiccup worth a
        backoff-retry).  On any failure everything acquired here is
        rolled back and the session's original holds are untouched."""
        instances = session.instances
        old_peers = session.peers
        n = len(old_peers)
        inj = self.injector

        def edges(peers):
            out = []
            for i, inst in enumerate(instances):
                dst = peers[i + 1] if i + 1 < n else session.user_peer
                out.append((peers[i], dst, inst.bandwidth))
            return out

        old_edges, new_edges = edges(old_peers), edges(new_peers)
        changed = [
            (o, w) for o, w in zip(old_edges, new_edges) if o != w
        ]

        # 1. Acquire end-system resources on the replacement peers.
        acquired_res: List[Tuple[int, int]] = []  # (slot, peer)

        def undo_res() -> None:
            for s, pid in acquired_res:
                self.directory[pid].release(instances[s].resources)

        for slot in range(n):
            if old_peers[slot] != dead_peer:
                continue
            if inj is not None and inj.admission_fails(
                "recovery", peer=new_peers[slot], session_id=session.session_id
            ):
                undo_res()
                return "transient"
            peer = self.directory.get(new_peers[slot])
            if peer is None or not peer.reserve(instances[slot].resources):
                undo_res()
                return "shortage"
            acquired_res.append((slot, new_peers[slot]))

        # 2. Acquire the changed connections.
        acquired_bw: List[Tuple[int, int, float]] = []

        def undo_all() -> None:
            for s, t, b in acquired_bw:
                self.network.release(s, t, b)
            undo_res()

        for _old, (src, dst, bw) in changed:
            if inj is not None and inj.partitioned(src, dst):
                inj.inject("partition", "recovery", src=src, dst=dst)
                undo_all()
                return "transient"
            if not self.network.reserve(src, dst, bw):
                undo_all()
                return "shortage"
            acquired_bw.append((src, dst, bw))

        # 3. Break: drop the stale connections (the dead peer's own
        # end-system share died with it -- nothing to release there).
        for (src, dst, bw), _new in changed:
            self.network.release(src, dst, bw)
        return "ok"
