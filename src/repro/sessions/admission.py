"""Atomic multi-peer admission: reserve everything or nothing.

Admission walks the delivery chain reserving

* each instance's end-system requirement ``R`` on its selected peer, and
* each connection's bandwidth ``b`` on the network model (which debits
  the sender's uplink, the receiver's downlink and the pair's bottleneck
  capacity),

rolling back every prior reservation on the first shortage so a rejected
request leaves no residue.  The rollback discipline is what keeps the
grid's books balanced across hundreds of thousands of simulated requests
(property-tested in ``tests/sessions/test_conservation.py``).

Fault tolerance
---------------
With a :class:`~repro.faults.injector.FaultInjector`, individual
reservation messages may transiently fail (``admission_failure``) and
connections crossing an active partition fail deterministically.  Each
transient failure rolls back the whole attempt (the all-or-nothing
discipline is not relaxed under faults) and retries with capped
exponential backoff; budget exhaustion surfaces as a
:class:`TransientAdmissionError`, which callers treat as a rejection.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.resources import ResourceVector
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.services.model import ServiceInstance

__all__ = [
    "AdmissionError",
    "TransientAdmissionError",
    "reserve_session",
    "rollback_session",
]


class AdmissionError(Exception):
    """A reservation could not be satisfied (request must be rejected)."""

    def __init__(self, message: str, stage: str) -> None:
        super().__init__(message)
        #: ``"resources"``, ``"bandwidth"`` or ``"transient"`` -- which
        #: ledger ran short (or whether the failure was injected).
        self.stage = stage


class TransientAdmissionError(AdmissionError):
    """An injected transient failure (retriable, unlike a shortage)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, stage="transient")


def _edges(
    peers: Sequence[int], user_peer: int, instances: Sequence[ServiceInstance]
) -> List[Tuple[int, int, float]]:
    """``(src, dst, bw)`` per connection, flow order.

    ``peers[i]`` hosts ``instances[i]``; the final connection delivers to
    the user's own host.
    """
    edges = []
    for i, inst in enumerate(instances):
        dst = peers[i + 1] if i + 1 < len(peers) else user_peer
        edges.append((peers[i], dst, inst.bandwidth))
    return edges


def reserve_session(
    directory: PeerDirectory,
    network: NetworkModel,
    instances: Sequence[ServiceInstance],
    peers: Sequence[int],
    user_peer: int,
    injector=None,
    retry=None,
) -> None:
    """Reserve all resources for a session; raise and roll back on failure.

    Raises
    ------
    AdmissionError
        If any peer cannot fit its instance's ``R`` (stage
        ``"resources"``) or any connection cannot fit its ``b`` (stage
        ``"bandwidth"``).  With an ``injector``, a transient failure
        that survives the ``retry`` budget raises
        :class:`TransientAdmissionError` (stage ``"transient"``).  No
        reservations remain held afterwards in any case.
    """
    if len(instances) != len(peers):
        raise ValueError(
            f"{len(instances)} instances but {len(peers)} peers selected"
        )
    if injector is None:
        if not _soa_reserve(directory, network, instances, peers, user_peer):
            _reserve_attempt(directory, network, instances, peers, user_peer)
        return
    attempts = 0
    while True:
        try:
            _reserve_attempt(
                directory, network, instances, peers, user_peer, injector
            )
            return
        except TransientAdmissionError:
            attempts += 1
            if retry is None or attempts > retry.max_retries:
                injector.retry_exhausted(
                    "admission", attempts=attempts, user_peer=user_peer
                )
                raise
            injector.retry_attempt(
                "admission", attempts, retry.delay(attempts, injector.rng),
                user_peer=user_peer,
            )


def _soa_reserve(
    directory,
    network: NetworkModel,
    instances: Sequence[ServiceInstance],
    peers: Sequence[int],
    user_peer: int,
) -> bool:
    """Vectorized resource stage over a struct-of-arrays directory.

    Returns ``True`` when the whole reservation was handled here.
    Returns ``False`` -- with *no state mutated* -- whenever the scalar
    path must run instead: object-backed directory, duplicate peers
    (NumPy fancy-index writes do not accumulate), a dead/unknown peer,
    or a resource shortage.  The last two matter for bit-exactness: the
    scalar attempt mutates earlier peers and then rolls them back, and
    ``(a - r) + r`` need not equal ``a`` in floats, so the failure path
    must replay the exact mutate-then-rollback sequence.  On the success
    path an elementwise fancy-index subtract over *distinct* rows is
    bitwise-identical to the sequential per-peer subtracts.
    """
    store = getattr(directory, "store", None)
    if store is None or not peers:
        return False
    row_of = directory.row_of
    rows: List[int] = []
    for pid in peers:
        row = row_of(pid)
        if row < 0:
            return False  # dead/unknown: scalar replay for exact errors
        rows.append(row)
    if len(set(rows)) != len(rows):
        return False  # duplicate peers need sequential accounting
    rows_arr = np.fromiter(rows, np.int64, len(rows))
    reqs = np.stack([inst.resources.values for inst in instances])
    avail = store.available[rows_arr]
    if not (avail >= reqs).all():
        return False  # shortage: scalar replay of mutate-then-rollback
    store.available[rows_arr] = avail - reqs
    held_bw: List[Tuple[int, int, float]] = []
    for src, dst, bw in _edges(peers, user_peer, instances):
        if network.reserve(src, dst, bw):
            held_bw.append((src, dst, bw))
            continue
        # Bandwidth shortage: credit the vector debit back (elementwise
        # adds over the same distinct rows -- the bits the scalar
        # release sequence produces) and release the held edges.
        store.available[rows_arr] += reqs
        for s, d, b in held_bw:
            network.release(s, d, b)
        raise AdmissionError(
            f"no {bw:.0f} bps available on {src} -> {dst}",
            stage="bandwidth",
        )
    return True


def _reserve_attempt(
    directory: PeerDirectory,
    network: NetworkModel,
    instances: Sequence[ServiceInstance],
    peers: Sequence[int],
    user_peer: int,
    injector=None,
) -> None:
    """One all-or-nothing reservation pass (rolled back on any failure)."""
    held_res: List[Tuple[int, ResourceVector]] = []
    held_bw: List[Tuple[int, int, float]] = []
    try:
        for inst, pid in zip(instances, peers):
            peer = directory.get(pid)
            if peer is None or not peer.alive:
                raise AdmissionError(
                    f"peer {pid} is not alive", stage="resources"
                )
            if injector is not None and injector.admission_fails(
                "admission", peer=pid, instance=inst.instance_id
            ):
                raise TransientAdmissionError(
                    f"reservation message to peer {pid} lost"
                )
            if not peer.reserve(inst.resources):
                raise AdmissionError(
                    f"peer {pid} cannot fit {inst.instance_id} "
                    f"(needs {inst.resources.values}, "
                    f"has {peer.available.values})",
                    stage="resources",
                )
            held_res.append((pid, inst.resources))
        for src, dst, bw in _edges(peers, user_peer, instances):
            if injector is not None and injector.partitioned(src, dst):
                injector.inject("partition", "admission", src=src, dst=dst)
                raise TransientAdmissionError(
                    f"connection {src} -> {dst} crosses a partition"
                )
            if not network.reserve(src, dst, bw):
                raise AdmissionError(
                    f"no {bw:.0f} bps available on {src} -> {dst}",
                    stage="bandwidth",
                )
            held_bw.append((src, dst, bw))
    except AdmissionError:
        rollback_session(directory, network, held_res, held_bw)
        raise


def rollback_session(
    directory: PeerDirectory,
    network: NetworkModel,
    held_res: Sequence[Tuple[int, ResourceVector]],
    held_bw: Sequence[Tuple[int, int, float]],
    skip_peer: int | None = None,
) -> None:
    """Release previously reserved resources/bandwidth.

    ``skip_peer`` suppresses the end-system release for one peer -- used
    when that peer departed (its ledger died with it; releasing onto the
    corpse would be harmless but misleading in stats).
    """
    store = getattr(directory, "store", None)
    if store is not None and skip_peer is None and held_res:
        # SoA credit: one fancy-index add over distinct live rows is
        # bitwise-identical to the sequential per-peer releases.  Any
        # corpse (row -1), duplicate peer, or over-release (the scalar
        # guard would raise peer-by-peer) falls through to the exact
        # scalar sequence.
        rows = [directory.row_of(pid) for pid, _ in held_res]
        if min(rows) >= 0 and len(set(rows)) == len(rows):
            rows_arr = np.fromiter(rows, np.int64, len(rows))
            reqs = np.stack([req.values for _, req in held_res])
            new = store.available[rows_arr] + reqs
            if not (new > store.capacity[rows_arr] + 1e-9).any():
                store.available[rows_arr] = new
                for src, dst, bw in held_bw:
                    network.release(src, dst, bw)
                return
    for pid, req in held_res:
        if pid == skip_peer:
            continue
        peer = directory.get(pid)
        if peer is not None:
            peer.release(req)
    for src, dst, bw in held_bw:
        network.release(src, dst, bw)
