"""Atomic multi-peer admission: reserve everything or nothing.

Admission walks the delivery chain reserving

* each instance's end-system requirement ``R`` on its selected peer, and
* each connection's bandwidth ``b`` on the network model (which debits
  the sender's uplink, the receiver's downlink and the pair's bottleneck
  capacity),

rolling back every prior reservation on the first shortage so a rejected
request leaves no residue.  The rollback discipline is what keeps the
grid's books balanced across hundreds of thousands of simulated requests
(property-tested in ``tests/sessions/test_conservation.py``).

Fault tolerance
---------------
With a :class:`~repro.faults.injector.FaultInjector`, individual
reservation messages may transiently fail (``admission_failure``) and
connections crossing an active partition fail deterministically.  Each
transient failure rolls back the whole attempt (the all-or-nothing
discipline is not relaxed under faults) and retries with capped
exponential backoff; budget exhaustion surfaces as a
:class:`TransientAdmissionError`, which callers treat as a rejection.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.resources import ResourceVector
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.services.model import ServiceInstance

__all__ = [
    "AdmissionError",
    "TransientAdmissionError",
    "reserve_session",
    "rollback_session",
]


class AdmissionError(Exception):
    """A reservation could not be satisfied (request must be rejected)."""

    def __init__(self, message: str, stage: str) -> None:
        super().__init__(message)
        #: ``"resources"``, ``"bandwidth"`` or ``"transient"`` -- which
        #: ledger ran short (or whether the failure was injected).
        self.stage = stage


class TransientAdmissionError(AdmissionError):
    """An injected transient failure (retriable, unlike a shortage)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, stage="transient")


def _edges(
    peers: Sequence[int], user_peer: int, instances: Sequence[ServiceInstance]
) -> List[Tuple[int, int, float]]:
    """``(src, dst, bw)`` per connection, flow order.

    ``peers[i]`` hosts ``instances[i]``; the final connection delivers to
    the user's own host.
    """
    edges = []
    for i, inst in enumerate(instances):
        dst = peers[i + 1] if i + 1 < len(peers) else user_peer
        edges.append((peers[i], dst, inst.bandwidth))
    return edges


def reserve_session(
    directory: PeerDirectory,
    network: NetworkModel,
    instances: Sequence[ServiceInstance],
    peers: Sequence[int],
    user_peer: int,
    injector=None,
    retry=None,
) -> None:
    """Reserve all resources for a session; raise and roll back on failure.

    Raises
    ------
    AdmissionError
        If any peer cannot fit its instance's ``R`` (stage
        ``"resources"``) or any connection cannot fit its ``b`` (stage
        ``"bandwidth"``).  With an ``injector``, a transient failure
        that survives the ``retry`` budget raises
        :class:`TransientAdmissionError` (stage ``"transient"``).  No
        reservations remain held afterwards in any case.
    """
    if len(instances) != len(peers):
        raise ValueError(
            f"{len(instances)} instances but {len(peers)} peers selected"
        )
    if injector is None:
        _reserve_attempt(directory, network, instances, peers, user_peer)
        return
    attempts = 0
    while True:
        try:
            _reserve_attempt(
                directory, network, instances, peers, user_peer, injector
            )
            return
        except TransientAdmissionError:
            attempts += 1
            if retry is None or attempts > retry.max_retries:
                injector.retry_exhausted(
                    "admission", attempts=attempts, user_peer=user_peer
                )
                raise
            injector.retry_attempt(
                "admission", attempts, retry.delay(attempts, injector.rng),
                user_peer=user_peer,
            )


def _reserve_attempt(
    directory: PeerDirectory,
    network: NetworkModel,
    instances: Sequence[ServiceInstance],
    peers: Sequence[int],
    user_peer: int,
    injector=None,
) -> None:
    """One all-or-nothing reservation pass (rolled back on any failure)."""
    held_res: List[Tuple[int, ResourceVector]] = []
    held_bw: List[Tuple[int, int, float]] = []
    try:
        for inst, pid in zip(instances, peers):
            peer = directory.get(pid)
            if peer is None or not peer.alive:
                raise AdmissionError(
                    f"peer {pid} is not alive", stage="resources"
                )
            if injector is not None and injector.admission_fails(
                "admission", peer=pid, instance=inst.instance_id
            ):
                raise TransientAdmissionError(
                    f"reservation message to peer {pid} lost"
                )
            if not peer.reserve(inst.resources):
                raise AdmissionError(
                    f"peer {pid} cannot fit {inst.instance_id} "
                    f"(needs {inst.resources.values}, "
                    f"has {peer.available.values})",
                    stage="resources",
                )
            held_res.append((pid, inst.resources))
        for src, dst, bw in _edges(peers, user_peer, instances):
            if injector is not None and injector.partitioned(src, dst):
                injector.inject("partition", "admission", src=src, dst=dst)
                raise TransientAdmissionError(
                    f"connection {src} -> {dst} crosses a partition"
                )
            if not network.reserve(src, dst, bw):
                raise AdmissionError(
                    f"no {bw:.0f} bps available on {src} -> {dst}",
                    stage="bandwidth",
                )
            held_bw.append((src, dst, bw))
    except AdmissionError:
        rollback_session(directory, network, held_res, held_bw)
        raise


def rollback_session(
    directory: PeerDirectory,
    network: NetworkModel,
    held_res: Sequence[Tuple[int, ResourceVector]],
    held_bw: Sequence[Tuple[int, int, float]],
    skip_peer: int | None = None,
) -> None:
    """Release previously reserved resources/bandwidth.

    ``skip_peer`` suppresses the end-system release for one peer -- used
    when that peer departed (its ledger died with it; releasing onto the
    corpse would be harmless but misleading in stats).
    """
    for pid, req in held_res:
        if pid == skip_peer:
            continue
        peer = directory.get(pid)
        if peer is not None:
            peer.release(req)
    for src, dst, bw in held_bw:
        network.release(src, dst, bw)
