"""The session ledger: lifecycle of admitted service aggregations.

``SessionLedger`` owns every active session.  It

* admits sessions atomically (via :mod:`repro.sessions.admission`),
* schedules their completion on the simulation clock,
* fails every session touching a departing peer
  (:meth:`SessionLedger.fail_peer`, called by the churn machinery), and
* reports outcomes through an observer callback so the metrics layer
  never needs to poll.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.services.model import ServiceInstance
from repro.sessions.admission import reserve_session, rollback_session
from repro.sim.engine import Simulator

__all__ = ["Session", "SessionLedger", "SessionState"]


class SessionState(enum.Enum):
    ACTIVE = "active"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class Session:
    """One admitted aggregation: instances pinned to peers, holding state."""

    session_id: int
    request_id: int
    user_peer: int
    instances: Tuple[ServiceInstance, ...]
    peers: Tuple[int, ...]
    start: float
    duration: float
    state: SessionState = SessionState.ACTIVE
    failure_reason: Optional[str] = None
    #: Reservation-release latch: set by the ledger the first time this
    #: session's holds are rolled back, so teardown paths that race (API
    #: delete vs. scheduled completion vs. recovery) can never
    #: double-credit the resource books.
    released: bool = False

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def participants(self) -> Set[int]:  # lint: disable=TEL002 -- set-algebra API; every iterating consumer sorts first (session.py, diagnostics.py), the rest are membership tests
        """Provisioning peers (the user's own host is not provisioned)."""
        return set(self.peers)

    def connections(self) -> List[Tuple[int, int, float]]:
        """``(src, dst, bw)`` per connection, flow order."""
        out = []
        for i, inst in enumerate(self.instances):
            dst = self.peers[i + 1] if i + 1 < len(self.peers) else self.user_peer
            out.append((self.peers[i], dst, inst.bandwidth))
        return out


class SessionLedger:
    """Owns all active sessions and their reservations."""

    def __init__(
        self,
        sim: Simulator,
        directory: PeerDirectory,
        network: NetworkModel,
        on_outcome: Optional[Callable[[Session], None]] = None,
        tracer=None,
        telemetry=None,
        injector=None,
        admission_retry=None,
    ) -> None:
        self.sim = sim
        self.directory = directory
        self.network = network
        self.on_outcome = on_outcome
        #: Optional :class:`repro.sim.trace.Tracer` for structured events.
        self.tracer = tracer
        #: Optional :class:`repro.telemetry.Telemetry`: admit/complete/fail
        #: events + a detached sim-time span per session lifetime.
        self.telemetry = telemetry
        #: Optional fault injection: transient admission failures retry
        #: under ``admission_retry`` before surfacing as a rejection.
        self.injector = injector
        self.admission_retry = admission_retry
        #: Optional :class:`repro.sim.sanitizer.Sanitizer` write barrier;
        #: set by the grid when ``GridConfig.sanitize`` is on.
        self.sanitizer = None
        self._spans: Dict[int, object] = {}
        self._active: Dict[int, Session] = {}
        self._by_peer: Dict[int, Set[int]] = {}
        self._next_id = 0
        self.n_admitted = 0
        self.n_completed = 0
        self.n_failed = 0
        self.n_released = 0

    # -- admission -----------------------------------------------------------
    def admit(
        self,
        request_id: int,
        user_peer: int,
        instances: Sequence[ServiceInstance],
        peers: Sequence[int],
        duration: float,
    ) -> Session:
        """Admit a session (raises :class:`AdmissionError` on shortage).

        On success the session holds all its reservations and its
        completion is scheduled ``duration`` minutes out.
        """
        reserve_session(
            self.directory, self.network, instances, peers, user_peer,
            injector=self.injector, retry=self.admission_retry,
        )
        session = Session(
            session_id=self._next_id,
            request_id=request_id,
            user_peer=user_peer,
            instances=tuple(instances),
            peers=tuple(peers),
            start=self.sim.now,
            duration=duration,
        )
        self._next_id += 1
        self._active[session.session_id] = session
        for pid in sorted(session.participants | {user_peer}):
            self._by_peer.setdefault(pid, set()).add(session.session_id)
        self.n_admitted += 1
        if self.sanitizer is not None:
            self.sanitizer.note_write(
                "sessions", "admit", self.directory.generation,
                n=len(session.peers),
            )
        self.sim.call_in(duration, self._complete, session.session_id)
        if self.tracer is not None:
            self.tracer.emit(
                "session-admitted",
                session_id=session.session_id,
                request_id=request_id,
                peers=tuple(peers),
            )
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("session.admitted").inc()
            tel.bus.emit(
                "session.admitted",
                session_id=session.session_id,
                request_id=request_id,
                peers=list(peers),
                duration=duration,
            )
            self._spans[session.session_id] = tel.tracer.open(
                "session", session_id=session.session_id
            )
        return session

    # -- lifecycle ---------------------------------------------------------
    def _release(self, session: Session, skip_peer: Optional[int] = None) -> None:
        # Idempotence guard: a session's holds are released exactly once.
        # Without it, an API `DELETE /sessions/{id}` racing the scheduled
        # completion (or a recovery repair) would credit capacity twice
        # and corrupt the conservation invariant.
        if session.released:
            return
        session.released = True
        if self.sanitizer is not None:
            self.sanitizer.note_write(
                "sessions", "release", self.directory.generation,
                n=len(session.peers),
            )
        held_res = list(zip(session.peers, (i.resources for i in session.instances)))
        held_bw = session.connections()
        rollback_session(
            self.directory, self.network, held_res, held_bw, skip_peer=skip_peer
        )

    def _detach(self, session: Session) -> None:
        self._active.pop(session.session_id, None)
        for pid in sorted(session.participants | {session.user_peer}):
            members = self._by_peer.get(pid)
            if members is not None:
                members.discard(session.session_id)
                if not members:
                    del self._by_peer[pid]

    def _complete(self, session_id: int) -> None:
        session = self._active.get(session_id)
        if session is None:  # already failed
            return
        session.state = SessionState.COMPLETED
        self._release(session)
        self._detach(session)
        self.n_completed += 1
        if self.tracer is not None:
            self.tracer.emit(
                "session-completed",
                session_id=session.session_id,
                request_id=session.request_id,
            )
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("session.completed").inc()
            tel.bus.emit(
                "session.completed",
                session_id=session.session_id,
                request_id=session.request_id,
            )
            span = self._spans.pop(session.session_id, None)
            if span is not None:
                span.end(outcome="completed")
        if self.on_outcome is not None:
            self.on_outcome(session)

    def release_session(self, session_id: int) -> Optional[Session]:
        """Tear an active session down early at the owner's request.

        This is the serving plane's ``DELETE /sessions/{id}`` path: every
        end-system and network reservation is rolled back through the
        same :func:`~repro.sessions.admission.rollback_session` discipline
        a completion uses, the scheduled completion becomes a no-op (the
        session is no longer active when it fires), and the outcome is
        reported as a completion with reason ``"client-release"``.

        Returns the released session, or ``None`` if ``session_id`` is
        not active (already completed, failed, or released) -- callers
        can therefore retry the call safely; nothing is ever released
        twice (see :meth:`_release`).
        """
        session = self._active.get(session_id)
        if session is None:
            return None
        session.state = SessionState.COMPLETED
        session.failure_reason = "client-release"
        self._release(session)
        self._detach(session)
        self.n_completed += 1
        self.n_released += 1
        if self.tracer is not None:
            self.tracer.emit(
                "session-released",
                session_id=session.session_id,
                request_id=session.request_id,
            )
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("session.released").inc()
            tel.bus.emit(
                "session.released",
                session_id=session.session_id,
                request_id=session.request_id,
                held_minutes=self.sim.now - session.start,
            )
            span = self._spans.pop(session.session_id, None)
            if span is not None:
                span.end(outcome="released")
        if self.on_outcome is not None:
            self.on_outcome(session)
        return session

    def fail_session(
        self, session_id: int, reason: str, skip_peer: Optional[int] = None
    ) -> Optional[Session]:
        """Fail one active session: release holds, detach, report.

        ``skip_peer`` suppresses the end-system release for a departed
        peer (its ledger died with it).  Returns the failed session, or
        ``None`` if it was not active.
        """
        session = self._active.get(session_id)
        if session is None:
            return None
        session.state = SessionState.FAILED
        session.failure_reason = reason
        self._release(session, skip_peer=skip_peer)
        self._detach(session)
        self.n_failed += 1
        if self.tracer is not None:
            self.tracer.emit(
                "session-failed",
                session_id=session.session_id,
                request_id=session.request_id,
                reason=reason,
            )
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("session.failed").inc()
            tel.bus.emit(
                "session.failed",
                session_id=session.session_id,
                request_id=session.request_id,
                reason=reason,
            )
            span = self._spans.pop(session.session_id, None)
            if span is not None:
                span.end(outcome="failed")
        if self.on_outcome is not None:
            self.on_outcome(session)
        return session

    def fail_peer(self, peer_id: int) -> List[Session]:
        """Fail every session that ``peer_id`` participates in.

        Called when a peer departs; the departing peer's own end-system
        reservations are not released (they leave with it), everything
        else is.  Returns the failed sessions.
        """
        failed = []
        # Sorted, not set order: failure order feeds telemetry and the
        # rollback sequence, so it must not depend on hash order.
        for sid in sorted(self._by_peer.get(peer_id, ())):
            session = self.fail_session(
                sid, f"peer {peer_id} departed", skip_peer=peer_id
            )
            if session is not None:
                failed.append(session)
        return failed

    def reassign_session_peers(
        self, session_id: int, new_peers: Tuple[int, ...]
    ) -> None:
        """Repoint an active session at a repaired peer placement.

        Used by runtime failure recovery: the caller has already moved
        the underlying reservations; this keeps the session record and
        the peer -> sessions index consistent.
        """
        session = self._active.get(session_id)
        if session is None:
            raise KeyError(f"session {session_id} is not active")
        if len(new_peers) != len(session.peers):
            raise ValueError("peer count must match the instance count")
        old = session.participants | {session.user_peer}
        session.peers = tuple(new_peers)
        new = session.participants | {session.user_peer}
        if self.sanitizer is not None:
            self.sanitizer.note_write(
                "sessions", "repair", self.directory.generation,
                n=len(new_peers),
            )
        for pid in old - new:
            members = self._by_peer.get(pid)
            if members is not None:
                members.discard(session_id)
                if not members:
                    del self._by_peer[pid]
        for pid in new - old:
            self._by_peer.setdefault(pid, set()).add(session_id)

    # -- inspection -----------------------------------------------------------
    @property
    def n_active(self) -> int:
        return len(self._active)

    def active_sessions(self) -> List[Session]:
        return list(self._active.values())

    def sessions_on_peer(self, peer_id: int) -> List[int]:
        """Session ids provisioned on ``peer_id``, ascending.

        Sorted list (not the index's set): failure recovery iterates
        this across the module boundary, and repair order must not
        depend on hash order (TEL002).
        """
        return sorted(self._by_peer.get(peer_id, ()))
