"""Active application sessions: multi-peer resource holds and failures.

A *session* is one admitted service aggregation: a chain of service
instances pinned to specific peers, holding end-system resources on every
peer and bandwidth on every connection for the whole session duration.

The paper's success criterion (§4.1): "A service aggregation request is
said to be successful if and only if during the entire application
session, all service instances' resource requirements are always
satisfied by the resource availability along the aggregation path ...
a service aggregation request is failed when its resource requirements
cannot be satisfied or one of provisioning peers leaves during the
session."

Reservations are strict holds, so "always satisfied" reduces to
(a) admission succeeding at setup and (b) no provisioning peer departing
before the session completes -- both owned by
:class:`~repro.sessions.session.SessionLedger`.
"""

from repro.sessions.session import Session, SessionLedger, SessionState
from repro.sessions.admission import AdmissionError, reserve_session, rollback_session
from repro.sessions.recovery import RecoveryConfig, RecoveryManager

__all__ = [
    "AdmissionError",
    "RecoveryConfig",
    "RecoveryManager",
    "Session",
    "SessionLedger",
    "SessionState",
    "reserve_session",
    "rollback_session",
]
