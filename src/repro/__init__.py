"""repro -- a reproduction of Gu & Nahrstedt's QoS-aware service
aggregation model for peer-to-peer computing grids (HPDC 2002).

The package implements the paper's two-tier QSA model (on-demand QCS
service composition + dynamic Φ/uptime peer selection) together with
every substrate it runs on: a discrete-event simulation kernel, a
heterogeneous P2P network model with churn, a Chord DHT discovery
service, bounded benefit-based probing, atomic multi-peer session
admission, and the §4.1 workload/metrics harness.

Quickstart::

    from repro import GridConfig, P2PGrid

    grid = P2PGrid(GridConfig(n_peers=500, seed=7))
    qsa = grid.make_aggregator("qsa")
    request = grid.make_request("video-on-demand", qos_level="high",
                                duration=15.0)
    result = qsa.aggregate(request)
    print(result.status, result.peers)
"""

from repro.core import (
    ComposedPath,
    CompositionError,
    FixedAggregator,
    Interval,
    PeerSelector,
    PhiWeights,
    QSAAggregator,
    QoSVector,
    RandomAggregator,
    ResourceTuple,
    ResourceVector,
    WeightProfile,
    compose_qcs,
    satisfies,
)
from repro.core.aggregation import AggregationResult, AggregationStatus
from repro.core.explain import explain_result
from repro.diagnostics import check_grid_invariants
from repro.experiments import ExperimentConfig, run_experiment
from repro.grid import GridConfig, P2PGrid
from repro.network.churn import ChurnConfig
from repro.probing.prober import ProbingConfig
from repro.sessions.recovery import RecoveryConfig
from repro.services import (
    AbstractServicePath,
    ApplicationTemplate,
    ServiceInstance,
    UserRequest,
    default_applications,
)
from repro.sim import Simulator
from repro.workload.generator import WorkloadConfig

__version__ = "1.0.0"

__all__ = [
    "AbstractServicePath",
    "AggregationResult",
    "AggregationStatus",
    "ApplicationTemplate",
    "ChurnConfig",
    "ComposedPath",
    "CompositionError",
    "ExperimentConfig",
    "FixedAggregator",
    "GridConfig",
    "Interval",
    "P2PGrid",
    "PeerSelector",
    "PhiWeights",
    "ProbingConfig",
    "QSAAggregator",
    "QoSVector",
    "RandomAggregator",
    "RecoveryConfig",
    "check_grid_invariants",
    "explain_result",
    "ResourceTuple",
    "ResourceVector",
    "ServiceInstance",
    "Simulator",
    "UserRequest",
    "WeightProfile",
    "WorkloadConfig",
    "compose_qcs",
    "default_applications",
    "run_experiment",
    "satisfies",
    "__version__",
]
