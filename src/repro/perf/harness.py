"""Perf-regression harness: record scenarios, compare against a baseline.

The ROADMAP's north star is "as fast as the hardware allows" -- which is
only falsifiable against a *recorded trajectory*.  This module turns the
repo-root ``BENCH_<n>.json`` sequence into that trajectory:

* :data:`SCENARIOS` names the standard workloads (steady / churny /
  heavy / smoke), each a seed-parameterized
  :class:`~repro.experiments.config.ExperimentConfig` factory;
* :func:`record_bench` runs each scenario under the wall-clock profiler
  (:func:`repro.telemetry.profiling.profile_run`) and collects wall
  throughput, ψ, and setup-latency percentiles (the profiler's reservoir
  histogram -- same class the metrics registry uses) plus seed / scale /
  host metadata into one schema-validated document;
* :func:`compare_benches` diffs two documents and flags regressions
  beyond configurable thresholds (``repro perf compare`` exits non-zero
  on any).

Wall-clock numbers are host-dependent by nature; the committed baseline
pins the *methodology* (scenario, seed, telemetry-on measurement), and
CI compares warn-only while local ``repro perf compare`` enforces.

ψ is seeded-deterministic per scenario, so a ψ change in a comparison is
a behaviour change, not noise; throughput and latency carry host noise,
hence the ratio thresholds.
"""

from __future__ import annotations

import json
import os
import platform
import re
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import (
    ExperimentConfig,
    default_scale,
    scale_factor,
)
from repro.grid import GridConfig
from repro.probing.prober import ProbingConfig
from repro.workload.generator import WorkloadConfig

__all__ = [
    "BENCH_SCHEMA",
    "SCENARIOS",
    "Scenario",
    "BenchComparison",
    "record_bench",
    "compare_benches",
    "validate_bench",
    "load_bench",
    "write_bench",
    "next_bench_path",
]

#: Document format identifier; bump on incompatible layout changes.
BENCH_SCHEMA = "repro-bench/1"

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


@dataclass(frozen=True)
class Scenario:
    """A named, seed-parameterized workload for the harness.

    Exactly one of the two fields drives a recording:

    * ``make`` -- an :class:`ExperimentConfig` factory; the harness runs
      it in-process under the wall-clock profiler (the classic path).
    * ``recorder`` -- a ``(seed, algorithm) -> scenario dict`` callable
      that measures by its own means (the ``serving`` scenario boots a
      real HTTP server) and returns a schema-conformant scenario object.
    """

    name: str
    description: str
    make: Optional[Callable[[int], ExperimentConfig]] = None
    recorder: Optional[Callable[[int, str], Dict]] = None

    def __post_init__(self) -> None:
        if (self.make is None) == (self.recorder is None):
            raise ValueError(
                f"scenario {self.name!r} needs exactly one of make/recorder"
            )


def _compose_stress(seed: int) -> ExperimentConfig:
    # Composition-bound: 3-5x the default candidate instances per
    # abstract service makes the QCS kernel (graph build + relaxation)
    # dominate each request, so this scenario isolates the compose
    # kernel's throughput the way `heavy` isolates admission contention.
    from repro.services.catalog import CatalogConfig

    return ExperimentConfig(
        grid=GridConfig(
            n_peers=1000,
            probing=ProbingConfig(budget=10),
            catalog=CatalogConfig(instances_per_service=(50, 60)),
            seed=seed,
        ),
        workload=WorkloadConfig(
            rate_per_min=120.0, horizon=15.0, duration_range=(1.0, 8.0)
        ),
        drain_minutes=10.0,
    )


def _smoke(seed: int) -> ExperimentConfig:
    # Deliberately tiny: a few hundred peers, short horizon, short
    # sessions -- the CI perf-smoke job runs this on every push.
    return ExperimentConfig(
        grid=GridConfig(
            n_peers=250, probing=ProbingConfig(budget=10), seed=seed
        ),
        workload=WorkloadConfig(
            rate_per_min=30.0, horizon=10.0, duration_range=(1.0, 8.0)
        ),
        drain_minutes=10.0,
    )


SCENARIOS: Dict[str, Scenario] = {
    "smoke": Scenario(
        "smoke",
        "reduced sanity scenario (250 peers, 10 min) for CI",
        _smoke,
    ),
    "baseline": Scenario(
        "baseline",
        "steady §4.1 load, 100 req/min paper units, no churn",
        lambda seed: default_scale(100.0, 20.0, 0.0, seed),
    ),
    "churn": Scenario(
        "churn",
        "steady load under 50 peers/min churn (paper units)",
        lambda seed: default_scale(100.0, 20.0, 50.0, seed),
    ),
    "heavy": Scenario(
        "heavy",
        "4x request rate, the contention regime of Fig. 5's right edge",
        lambda seed: default_scale(400.0, 20.0, 0.0, seed),
    ),
    "compose-stress": Scenario(
        "compose-stress",
        "composition-bound load: 50-60 candidate instances per service "
        "so the QCS kernel dominates each request",
        _compose_stress,
    ),
    "serving": Scenario(
        "serving",
        "closed-loop HTTP serving: compose/release over real TCP "
        "against a resident grid",
        recorder=lambda seed, algorithm: _record_serving(seed, algorithm),
    ),
    "serving-slo": Scenario(
        "serving-slo",
        "observability overhead: serving with the SLO/window/trace "
        "plane on, against a plane-off control run",
        recorder=lambda seed, algorithm: _record_serving_slo(seed, algorithm),
    ),
    "scale-1x": Scenario(
        "scale-1x",
        "paper scale end to end: 10^4 peers, M = 100, steady load",
        recorder=lambda seed, algorithm: _record_scale(
            SCENARIOS["scale-1x"].description,
            10_000, 100.0, 10.0, seed, algorithm,
        ),
    ),
    "scale-10x": Scenario(
        "scale-10x",
        "capacity probe: 10^5 peers, M = 1000, short steady load",
        recorder=lambda seed, algorithm: _record_scale(
            SCENARIOS["scale-10x"].description,
            100_000, 100.0, 5.0, seed, algorithm,
        ),
    ),
}

#: Scenarios a bare ``repro perf record`` runs (smoke stays CI-only).
DEFAULT_SCENARIOS: Tuple[str, ...] = (
    "baseline", "churn", "heavy", "compose-stress", "serving",
    "scale-1x", "scale-10x",
)


def _record_serving(seed: int, algorithm: str) -> Dict:
    # Imported lazily: repro.serve resolves scenario names through this
    # module, so a top-level import would be circular.
    from repro.perf.serving import record_serving

    return record_serving(seed, algorithm)


def _record_serving_slo(seed: int, algorithm: str) -> Dict:
    from repro.perf.serving import record_serving_slo

    return record_serving_slo(seed, algorithm)


# -- recording --------------------------------------------------------------

def _scenario_record(description: str, config, result, report) -> Dict:
    """The per-scenario bench object shared by every make-style recorder."""
    p = report.latency_percentiles()
    compose_spans = [
        r for r in report.wall_spans if r.name == "qcs.compose"
    ]
    compose_wall = sum(r.end - r.start for r in compose_spans)
    return {
        "description": description,
        "n_peers": config.grid.n_peers,
        # Additive (validate_bench checks required fields only): the
        # scenario's own population scale relative to the paper's 10^4
        # peers -- the scale-Nx scenarios run above the process default.
        "scale_factor": config.grid.n_peers / 10_000.0,
        "rate_per_min": config.workload.rate_per_min,
        "horizon": config.workload.horizon,
        "churn_per_min": (
            config.grid.churn.rate_per_min if config.grid.churn else 0.0
        ),
        "n_requests": result.n_requests,
        "psi": result.success_ratio,
        "wall_seconds": result.wall_seconds,
        "throughput": dict(report.throughput),
        "setup_latency_us": {
            "count": int(p["count"]),
            "mean": p["mean"],
            "p50": p["p50"],
            "p95": p["p95"],
            "p99": p["p99"],
            "max": p["max"],
        },
        "mean_lookup_hops": result.mean_lookup_hops,
        "probe_overhead": result.probe_overhead,
        # Additive: the discovery fast-path split recorded alongside the
        # wall numbers.
        "discovery_cache": {
            "routed": result.n_routed_discoveries,
            "cached": result.n_cached_discoveries,
            "hit_rate": (
                result.n_cached_discoveries
                / (result.n_routed_discoveries
                   + result.n_cached_discoveries)
                if result.n_routed_discoveries
                + result.n_cached_discoveries
                else 0.0
            ),
        },
        "n_admitted": result.n_admitted,
        # Additive: the QCS kernel's share of the run, from the
        # wall-span mirror -- the BENCH_3 speedup evidence compares
        # this block across composition kernels.
        "compose_kernel": {
            "kernel": config.grid.composition_kernel,
            "compositions": len(compose_spans),
            "wall_seconds": compose_wall,
            "per_sec": (
                len(compose_spans) / compose_wall
                if compose_wall > 0
                else 0.0
            ),
        },
    }


def _record_scale(
    description: str,
    n_peers: int,
    rate_per_min: float,
    horizon: float,
    seed: int,
    algorithm: str,
) -> Dict:
    """Record one explicit-population scenario, with memory telemetry.

    Unlike the default scenarios (which follow the process-wide
    ``REPRO_PAPER_SCALE``), the scale scenarios pin ``n_peers``
    explicitly -- ``scale-1x`` is the paper's 10^4 population end to
    end, ``scale-10x`` a 10^5-peer capacity probe.  Both keep the
    paper's ``M/N = 1 %`` probe-budget fraction and record the process
    peak RSS plus the struct-of-arrays store footprint so memory
    regressions surface next to the wall numbers.
    """
    import resource

    from repro.telemetry.profiling import Profiler
    from repro.experiments.runner import run_experiment

    config = ExperimentConfig(
        grid=GridConfig(
            n_peers=n_peers,
            probing=ProbingConfig(budget=max(10, int(round(0.01 * n_peers)))),
            seed=seed,
            telemetry=True,
        ),
        workload=WorkloadConfig(
            rate_per_min=rate_per_min, horizon=horizon,
            duration_range=(1.0, 8.0),
        ),
        drain_minutes=10.0,
    ).with_algorithm(algorithm)
    profiler = Profiler()
    result = run_experiment(config, profiler=profiler)
    report = profiler.report(
        wall_seconds=result.wall_seconds, n_requests=result.n_requests
    )
    record = _scenario_record(description, config, result, report)
    # ru_maxrss is KiB on Linux; the high-water mark covers this run and
    # anything recorded before it in the same process, which is exactly
    # the "does the full record fit in memory" question the guard asks.
    record["peak_rss_bytes"] = (
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    )
    grid = profiler.grid
    store = getattr(grid.directory, "store", None) if grid is not None else None
    if store is not None:
        record["store_memory_bytes"] = store.memory_bytes()
    return record


def record_bench(
    scenario_names: Optional[Sequence[str]] = None,
    seed: int = 0,
    algorithm: str = "qsa",
    progress: Optional[Callable[[str], None]] = None,
) -> Dict:
    """Run the named scenarios and return one bench document."""
    from repro.telemetry.profiling import profile_run

    names = list(scenario_names or DEFAULT_SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(SCENARIOS))}"
        )
    scenarios: Dict[str, Dict] = {}
    for name in names:
        scenario = SCENARIOS[name]
        if progress is not None:
            progress(f"recording scenario '{name}' "
                     f"({scenario.description}) ...")
        if scenario.recorder is not None:
            scenarios[name] = scenario.recorder(seed, algorithm)
            continue
        assert scenario.make is not None  # __post_init__ invariant
        config = scenario.make(seed).with_algorithm(algorithm)
        result, report = profile_run(config)
        scenarios[name] = _scenario_record(scenario.description, config,
                                           result, report)
    doc = {
        "schema": BENCH_SCHEMA,
        "recorded_unix": time.time(),
        "seed": seed,
        "algorithm": algorithm,
        "scale_factor": scale_factor(),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "scenarios": scenarios,
    }
    validate_bench(doc)
    return doc


# -- schema validation -------------------------------------------------------

_SCENARIO_FIELDS = {
    "description": str,
    "n_peers": int,
    "rate_per_min": (int, float),
    "horizon": (int, float),
    "churn_per_min": (int, float),
    "n_requests": int,
    "psi": (int, float),
    "wall_seconds": (int, float),
    "throughput": dict,
    "setup_latency_us": dict,
    "mean_lookup_hops": (int, float),
    "probe_overhead": (int, float),
}
_THROUGHPUT_FIELDS = ("requests_per_sec", "lookups_per_sec", "probes_per_sec")
_LATENCY_FIELDS = ("count", "mean", "p50", "p95", "p99", "max")


def validate_bench(doc: Dict) -> None:
    """Raise ``ValueError`` naming the first schema violation found."""
    if not isinstance(doc, dict):
        raise ValueError("bench document must be a JSON object")
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"schema mismatch: expected {BENCH_SCHEMA!r}, "
            f"got {doc.get('schema')!r}"
        )
    for key, kind in (
        ("recorded_unix", (int, float)),
        ("seed", int),
        ("algorithm", str),
        ("scale_factor", (int, float)),
        ("host", dict),
        ("scenarios", dict),
    ):
        if key not in doc:
            raise ValueError(f"missing top-level field {key!r}")
        if not isinstance(doc[key], kind):
            raise ValueError(f"field {key!r} has wrong type "
                             f"{type(doc[key]).__name__}")
    if not doc["scenarios"]:
        raise ValueError("bench document records no scenarios")
    for name, sc in doc["scenarios"].items():
        if not isinstance(sc, dict):
            raise ValueError(f"scenario {name!r} must be an object")
        for key, kind in _SCENARIO_FIELDS.items():
            if key not in sc:
                raise ValueError(f"scenario {name!r} missing field {key!r}")
            if not isinstance(sc[key], kind):
                raise ValueError(
                    f"scenario {name!r} field {key!r} has wrong type "
                    f"{type(sc[key]).__name__}"
                )
        for key in _THROUGHPUT_FIELDS:
            if not isinstance(sc["throughput"].get(key), (int, float)):
                raise ValueError(
                    f"scenario {name!r} throughput missing {key!r}"
                )
        for key in _LATENCY_FIELDS:
            if not isinstance(sc["setup_latency_us"].get(key), (int, float)):
                raise ValueError(
                    f"scenario {name!r} setup_latency_us missing {key!r}"
                )
        if not 0.0 <= sc["psi"] <= 1.0:
            raise ValueError(f"scenario {name!r} psi out of [0, 1]")


def load_bench(path: str) -> Dict:
    """Read and validate one bench document."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    try:
        validate_bench(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
    return doc


def write_bench(doc: Dict, path: str) -> None:
    """Validate then write one bench document (stable key order)."""
    validate_bench(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def next_bench_path(root: str = ".") -> str:
    """The next free ``BENCH_<n>.json`` under ``root`` (gap-free append)."""
    taken = [
        int(m.group(1))
        for entry in os.listdir(root)
        if (m := _BENCH_RE.match(entry))
    ]
    n = max(taken) + 1 if taken else 0
    return os.path.join(root, f"BENCH_{n}.json")


# -- comparison --------------------------------------------------------------

@dataclass
class BenchComparison:
    """The verdict of comparing a new bench document to an old one."""

    regressions: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines: List[str] = []
        for note in self.notes:
            lines.append(f"note: {note}")
        for text in self.improvements:
            lines.append(f"improved: {text}")
        for text in self.regressions:
            lines.append(f"REGRESSION: {text}")
        if not self.regressions:
            lines.append("no regressions beyond threshold")
        return "\n".join(lines)


def compare_benches(
    old: Dict,
    new: Dict,
    threshold: float = 0.25,
    psi_tolerance: float = 0.02,
) -> BenchComparison:
    """Flag per-scenario regressions of ``new`` relative to ``old``.

    * throughput (requests/sec) may not drop by more than ``threshold``
      (a ratio, e.g. 0.25 = 25 %);
    * setup-latency p95 may not rise by more than ``threshold``;
    * ψ may not drop by more than ``psi_tolerance`` (absolute --
      deterministic per seed, so any real drop is a behaviour change).

    Symmetric improvements are reported informationally.
    """
    if not 0 < threshold < 1:
        raise ValueError("threshold must be a ratio in (0, 1)")
    comp = BenchComparison()
    old_sc, new_sc = old["scenarios"], new["scenarios"]
    only_old = sorted(set(old_sc) - set(new_sc))
    only_new = sorted(set(new_sc) - set(old_sc))
    if only_old:
        comp.notes.append(f"scenarios only in OLD: {', '.join(only_old)}")
    if only_new:
        comp.notes.append(f"scenarios only in NEW: {', '.join(only_new)}")
    if old.get("host") != new.get("host"):
        comp.notes.append(
            "recorded on different hosts; wall-clock deltas are indicative"
        )

    for name in sorted(set(old_sc) & set(new_sc)):
        o, n = old_sc[name], new_sc[name]

        o_rps = o["throughput"]["requests_per_sec"]
        n_rps = n["throughput"]["requests_per_sec"]
        if o_rps > 0:
            ratio = n_rps / o_rps
            text = (f"{name}: throughput {o_rps:.1f} -> {n_rps:.1f} req/s "
                    f"({ratio - 1:+.1%})")
            if ratio < 1 - threshold:
                comp.regressions.append(text)
            elif ratio > 1 + threshold:
                comp.improvements.append(text)

        o_p95 = o["setup_latency_us"]["p95"]
        n_p95 = n["setup_latency_us"]["p95"]
        if o_p95 > 0:
            ratio = n_p95 / o_p95
            text = (f"{name}: setup latency p95 {o_p95:.0f} -> "
                    f"{n_p95:.0f} µs ({ratio - 1:+.1%})")
            if ratio > 1 + threshold:
                comp.regressions.append(text)
            elif ratio < 1 - threshold:
                comp.improvements.append(text)

        dpsi = n["psi"] - o["psi"]
        text = f"{name}: ψ {o['psi']:.3f} -> {n['psi']:.3f} ({dpsi:+.3f})"
        if dpsi < -psi_tolerance:
            comp.regressions.append(text)
        elif dpsi > psi_tolerance:
            comp.improvements.append(text)

        cache = n.get("discovery_cache")
        if cache is not None:
            comp.notes.append(
                f"{name}: discovery cache {cache['cached']}/"
                f"{cache['cached'] + cache['routed']} hits "
                f"({cache['hit_rate']:.1%})"
            )
        o_ck, n_ck = o.get("compose_kernel"), n.get("compose_kernel")
        if n_ck is not None and n_ck["compositions"]:
            text = (
                f"{name}: compose kernel [{n_ck['kernel']}] "
                f"{n_ck['per_sec']:.0f} compositions/s"
            )
            if o_ck is not None and o_ck["per_sec"] > 0:
                text += (
                    f" (was [{o_ck['kernel']}] {o_ck['per_sec']:.0f}, "
                    f"{n_ck['per_sec'] / o_ck['per_sec']:.2f}x)"
                )
            comp.notes.append(text)
    return comp
