"""The ``serving`` perf scenario: sustained HTTP req/s against a live server.

Unlike the in-process scenarios (which measure the aggregation pipeline
directly), this one boots the full serving plane -- resident grid,
asyncio HTTP server on an ephemeral port, background thread -- and
drives it closed-loop over real TCP with :mod:`repro.serve.loadgen`.
What lands in the bench document is therefore end-to-end: socket, HTTP
parse, single-writer dispatch, sim tick, aggregation, JSON encode.

The recorded fields keep the ``repro-bench/1`` scenario schema so
``repro perf compare`` diffs serving runs like any other scenario:
``setup_latency_us`` holds the client-observed compose RTT percentiles,
``throughput.requests_per_sec`` the sustained closed-loop rate, ``psi``
the admitted/sent ratio, and ``horizon`` the simulated minutes the
resident grid advanced while serving.
"""

from __future__ import annotations

from typing import Dict

from repro.grid import GridConfig
from repro.probing.prober import ProbingConfig

__all__ = ["SERVING_DESCRIPTION", "record_serving"]

SERVING_DESCRIPTION = (
    "closed-loop HTTP serving against a resident 250-peer grid "
    "(compose/release round trips over real TCP)"
)

#: Compose requests per recording; small enough for CI, large enough for
#: stable percentiles.
N_REQUESTS = 400
CONCURRENCY = 4
RELEASE_RATIO = 0.25


def record_serving(seed: int, algorithm: str) -> Dict:
    """Run one serving recording; returns a bench scenario object."""
    from repro.serve.core import ServeConfig, start_server_thread
    from repro.serve.loadgen import LoadgenConfig, run_loadgen

    grid_config = GridConfig(
        n_peers=250, probing=ProbingConfig(budget=10), seed=seed
    )
    handle = start_server_thread(ServeConfig(
        port=0,
        seed=seed,
        algorithm=algorithm,
        grid=grid_config,
    ))
    try:
        report = run_loadgen(LoadgenConfig(
            host=handle.host,
            port=handle.port,
            n_requests=N_REQUESTS,
            concurrency=CONCURRENCY,
            mode="closed",
            seed=seed,
            release_ratio=RELEASE_RATIO,
        ))
        runtime = handle.runtime
        grid = runtime.grid
        wall = max(report.wall_seconds, 1e-9)
        sim_minutes = grid.sim.now - runtime.started_sim_time
        scenario = {
            "description": SERVING_DESCRIPTION,
            "n_peers": grid_config.n_peers,
            "rate_per_min": report.requests_per_sec * 60.0,
            "horizon": sim_minutes,
            "churn_per_min": 0.0,
            "n_requests": report.sent,
            "psi": report.psi,
            "wall_seconds": report.wall_seconds,
            "throughput": {
                "requests_per_sec": report.requests_per_sec,
                "lookups_per_sec": grid.ring.n_lookups / wall,
                "probes_per_sec": grid.probing.probe_messages / wall,
            },
            # Client-observed compose RTT over real TCP (not the
            # in-process setup span the other scenarios record).
            "setup_latency_us": report.latency_summary_us(),
            "mean_lookup_hops": (
                runtime.total_lookup_hops / runtime.n_compose
                if runtime.n_compose else 0.0
            ),
            "probe_overhead": grid.probing.overhead_ratio(),
            # Additive serving-plane detail (schema checks required
            # fields only, so older documents stay valid).
            "serving": {
                "mode": "closed",
                "concurrency": CONCURRENCY,
                "release_ratio": RELEASE_RATIO,
                "released": report.released,
                "errors": report.errors,
                "http_requests": runtime.n_http_requests,
            },
        }
    finally:
        handle.stop()
    return scenario
