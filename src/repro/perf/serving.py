"""The ``serving`` perf scenario: sustained HTTP req/s against a live server.

Unlike the in-process scenarios (which measure the aggregation pipeline
directly), this one boots the full serving plane -- resident grid,
asyncio HTTP server on an ephemeral port, background thread -- and
drives it closed-loop over real TCP with :mod:`repro.serve.loadgen`.
What lands in the bench document is therefore end-to-end: socket, HTTP
parse, single-writer dispatch, sim tick, aggregation, JSON encode.

The recorded fields keep the ``repro-bench/1`` scenario schema so
``repro perf compare`` diffs serving runs like any other scenario:
``setup_latency_us`` holds the client-observed compose RTT percentiles,
``throughput.requests_per_sec`` the sustained closed-loop rate, ``psi``
the admitted/sent ratio, and ``horizon`` the simulated minutes the
resident grid advanced while serving.
"""

from __future__ import annotations

import gc
from typing import Dict

from repro.grid import GridConfig
from repro.probing.prober import ProbingConfig

__all__ = [
    "SERVING_DESCRIPTION",
    "SERVING_SLO_DESCRIPTION",
    "record_serving",
    "record_serving_slo",
]

SERVING_DESCRIPTION = (
    "closed-loop HTTP serving against a resident 250-peer grid "
    "(compose/release round trips over real TCP)"
)

SERVING_SLO_DESCRIPTION = (
    "serving with the observability plane (windows + SLO engine + "
    "tracing) measured against a plane-off control run"
)

#: Compose requests per recording; small enough for CI, large enough for
#: stable percentiles.
N_REQUESTS = 400
CONCURRENCY = 4
RELEASE_RATIO = 0.25


def record_serving(
    seed: int,
    algorithm: str,
    observability: bool = True,
    telemetry: bool = False,
    concurrency: int = CONCURRENCY,
) -> Dict:
    """Run one serving recording; returns a bench scenario object.

    ``telemetry=True`` pre-enables grid telemetry even when the
    observability plane is off -- the control configuration for the
    overhead measurement (the plane's cost is windows + SLO + tracing
    *on top of* the event stream, which predates it).  ``concurrency``
    overrides the closed-loop client count (the overhead recording
    drops to 1 so RTTs measure service time, not queueing).
    """
    from repro.serve.core import ServeConfig, start_server_thread
    from repro.serve.loadgen import LoadgenConfig, run_loadgen

    grid_config = GridConfig(
        n_peers=250, probing=ProbingConfig(budget=10), seed=seed,
        telemetry=telemetry or observability,
        telemetry_capacity=100_000,
    )
    handle = start_server_thread(ServeConfig(
        port=0,
        seed=seed,
        algorithm=algorithm,
        grid=grid_config,
        observability=observability,
    ))
    try:
        report = run_loadgen(LoadgenConfig(
            host=handle.host,
            port=handle.port,
            n_requests=N_REQUESTS,
            concurrency=concurrency,
            mode="closed",
            seed=seed,
            release_ratio=RELEASE_RATIO,
        ))
        runtime = handle.runtime
        grid = runtime.grid
        wall = max(report.wall_seconds, 1e-9)
        sim_minutes = grid.sim.now - runtime.started_sim_time
        scenario = {
            "description": SERVING_DESCRIPTION,
            "n_peers": grid_config.n_peers,
            "scale_factor": grid_config.n_peers / 10_000.0,
            "rate_per_min": report.requests_per_sec * 60.0,
            "horizon": sim_minutes,
            "churn_per_min": 0.0,
            "n_requests": report.sent,
            "psi": report.psi,
            "wall_seconds": report.wall_seconds,
            "throughput": {
                "requests_per_sec": report.requests_per_sec,
                "lookups_per_sec": grid.ring.n_lookups / wall,
                "probes_per_sec": grid.probing.probe_messages / wall,
            },
            # Client-observed compose RTT over real TCP (not the
            # in-process setup span the other scenarios record).
            "setup_latency_us": report.latency_summary_us(),
            "mean_lookup_hops": (
                runtime.total_lookup_hops / runtime.n_compose
                if runtime.n_compose else 0.0
            ),
            "probe_overhead": grid.probing.overhead_ratio(),
            # Additive serving-plane detail (schema checks required
            # fields only, so older documents stay valid).
            "serving": {
                "mode": "closed",
                "concurrency": concurrency,
                "release_ratio": RELEASE_RATIO,
                "released": report.released,
                "errors": report.errors,
                "http_requests": runtime.n_http_requests,
                "observability": observability,
                "slo_state": (
                    runtime.observability.engine.worst_state()
                    if runtime.observability is not None else None
                ),
            },
        }
    finally:
        handle.stop()
    return scenario


#: Interleaved measurement bursts per overhead recording.  Host speed
#: on a shared box drifts over the minutes separate recordings take, so
#: arms compared across that span mostly measure the drift.  Instead,
#: both servers (control: telemetry on / plane off; observed: plane on)
#: stay resident side by side and short bursts alternate between them
#: ~a second apart, swapping which arm goes first each pair so drift
#: inside a pair cancels instead of biasing one arm.  Bursts run at
#: concurrency 1 -- multi-client RTTs on shared cores amplify every
#: microsecond of server work through queueing.  The plane's absolute
#: per-request cost is estimated *per pair* as the difference between
#: the two bursts' minimum observed RTTs -- scheduling noise is
#: one-sided (a stall only ever adds latency), so a burst's floor
#: approaches its true service time, and both floors of a pair see the
#: same host phase -- then the median over pairs rejects the pairs a
#: phase change straddled.  GC is paused during each pair (collected
#: between pairs): collections are process-global, scan both arms'
#: retained state, and land on whichever arm happens to be running --
#: +-100us events that dwarf the plane's amortized allocation cost at
#: the server's tuned thresholds (``tune_gc_for_serving``).  The
#: recorded ``overhead_fraction`` expresses the cost relative to the
#: client-observed median RTT at the same operating point -- the
#: latency a request actually pays -- not relative to the idealized
#: floor no real request achieves.
N_OVERHEAD_BURSTS = 15
OVERHEAD_BURST_REQUESTS = 150


def _measure_plane_overhead(seed: int, algorithm: str) -> Dict:
    """Floor-RTT overhead of the observability plane (see comment above)."""
    from repro.serve.core import ServeConfig, start_server_thread
    from repro.serve.loadgen import LoadgenConfig, run_loadgen

    def boot(observability: bool):
        grid_config = GridConfig(
            n_peers=250, probing=ProbingConfig(budget=10), seed=seed,
            telemetry=True,
            telemetry_capacity=100_000,
        )
        return start_server_thread(ServeConfig(
            port=0,
            seed=seed,
            algorithm=algorithm,
            grid=grid_config,
            observability=observability,
        ))

    def burst(handle, n_requests: int, burst_seed: int) -> Dict[str, float]:
        report = run_loadgen(LoadgenConfig(
            host=handle.host,
            port=handle.port,
            n_requests=n_requests,
            concurrency=1,
            mode="closed",
            seed=burst_seed,
            release_ratio=RELEASE_RATIO,
        ))
        return {
            "min": min(report.latencies_us),
            "p50": report.latency_summary_us()["p50"],
        }

    control = boot(False)
    observed = boot(True)
    control_bursts: list = []
    observed_bursts: list = []
    try:
        # One throwaway burst per arm warms code paths and allocators.
        burst(control, 50, seed)
        burst(observed, 50, seed)
        for i in range(N_OVERHEAD_BURSTS):
            pair = [(control, control_bursts), (observed, observed_bursts)]
            if i % 2:
                pair.reverse()
            gc.collect()
            gc.disable()
            try:
                for handle, results in pair:
                    results.append(
                        burst(handle, OVERHEAD_BURST_REQUESTS, seed + i)
                    )
            finally:
                gc.enable()
        slo_state = observed.runtime.observability.engine.worst_state()
    finally:
        control.stop()
        observed.stop()
    pair_cost_us = sorted(
        obs["min"] - ctl["min"]
        for ctl, obs in zip(control_bursts, observed_bursts)
    )
    cost_us = max(0.0, pair_cost_us[len(pair_cost_us) // 2])
    control_p50s = sorted(b["p50"] for b in control_bursts)
    typical_rtt = control_p50s[len(control_p50s) // 2]
    return {
        "bursts": N_OVERHEAD_BURSTS,
        "burst_requests": OVERHEAD_BURST_REQUESTS,
        "overhead_fraction": cost_us / typical_rtt if typical_rtt else 0.0,
        "plane_cost_us": cost_us,
        "typical_rtt_us": typical_rtt,
        "pair_floor_delta_us": pair_cost_us,
        "control_rtt_p50_us": [b["p50"] for b in control_bursts],
        "observed_rtt_p50_us": [b["p50"] for b in observed_bursts],
        "slo_state": slo_state,
    }


def record_serving_slo(seed: int, algorithm: str) -> Dict:
    """Observability overhead: plane-off control vs plane-on measurement.

    Records one standard plane-on serving run (so ``repro perf
    compare`` tracks the *observed* serving numbers), then measures the
    plane's cost with :func:`_measure_plane_overhead`: two resident
    servers -- control with full telemetry but no plane, so the
    comparison isolates exactly the plane's own cost (windows + SLO
    engine + trace index) -- answering interleaved single-client
    bursts, compared pairwise by floor RTT (see the comment on
    ``N_OVERHEAD_BURSTS``).  The acceptance bar lives in EXPERIMENTS.md
    (E8): the plane must cost < 3% per-request overhead.
    """
    observed = record_serving(seed, algorithm, observability=True)
    observed["description"] = SERVING_SLO_DESCRIPTION
    observed["observability_overhead"] = _measure_plane_overhead(
        seed, algorithm
    )
    return observed
