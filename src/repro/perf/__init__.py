"""The performance-regression harness (see ``docs/observability.md``).

Named workload scenarios are run under the wall-clock profiler, their
throughput / ψ / setup-latency percentiles recorded into schema-validated
``BENCH_<n>.json`` documents at the repo root, and any two documents can
be compared with configurable regression thresholds -- the machinery
behind ``repro perf record|compare`` and the committed BENCH trajectory.
"""

from repro.perf.harness import (
    BENCH_SCHEMA,
    SCENARIOS,
    BenchComparison,
    Scenario,
    compare_benches,
    load_bench,
    next_bench_path,
    record_bench,
    validate_bench,
    write_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "SCENARIOS",
    "BenchComparison",
    "Scenario",
    "compare_benches",
    "load_bench",
    "next_bench_path",
    "record_bench",
    "validate_bench",
    "write_bench",
]
