"""The build/capability descriptor: one source of truth about this build.

``repro info`` (CLI) and ``GET /status`` (the serving plane) both need to
answer "what is this thing and what can it do" -- version, whether the
discovery fast paths default on, which fault kinds the injector
understands, which named perf scenarios exist, which aggregation
algorithms and lookup protocols are wired.  Before this module each
surface assembled its own ad-hoc strings; now they all render
:func:`build_descriptor`, so the two can never drift (tested in
``tests/serve/test_capabilities.py``).

The descriptor is plain JSON-able data: strings, numbers, sorted lists.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["SERVE_API_VERSION", "build_descriptor"]

#: Version tag of the serving-plane HTTP API; bump on incompatible
#: endpoint/payload changes (reported by ``GET /status``).
SERVE_API_VERSION = "serve/1"


def build_descriptor() -> Dict[str, Any]:
    """Assemble the capability descriptor (fresh dict per call)."""
    # Imported lazily: the perf harness pulls in the experiment stack,
    # which this leaf module must not load at import time.
    import repro
    from repro.faults.plan import FAULT_KINDS
    from repro.grid import GridConfig
    from repro.perf.harness import SCENARIOS

    return {
        "name": "repro",
        "version": repro.__version__,
        "paper": (
            "A Scalable QoS-Aware Service Aggregation Model for "
            "Peer-to-Peer Computing Grids (HPDC 2002)"
        ),
        "serve_api": SERVE_API_VERSION,
        "fast_paths_default": GridConfig().fast_paths,
        "fault_kinds": sorted(FAULT_KINDS),
        "scenarios": sorted(SCENARIOS),
        "algorithms": ["fixed", "qsa", "random"],
        "composition_kernels": ["dijkstra", "dp", "vectorized"],
        "composition_kernel_default": GridConfig().composition_kernel,
        "lookup_protocols": ["can", "chord"],
        "peer_state_backends": ["object", "soa"],
        "peer_state_backend_default": GridConfig().peer_state_backend,
    }
