"""Fault plans: a declarative description of how the substrate misbehaves.

A :class:`FaultPlan` is a tuple of :class:`FaultSpec` entries, each naming
one fault *kind*, its stochastic rate (or deterministic window) and its
kind-specific parameters.  Plans are plain frozen data -- hashable,
JSON round-trippable, and embeddable in a :class:`repro.grid.GridConfig`
-- so the same (seed, plan) pair always reproduces the same run, and a
chaos result can be filed verbatim as a regression test.

Fault kinds
-----------
``probe_loss``
    Each probe message is lost with probability ``rate`` while the spec
    is active.  The prober retries with capped exponential backoff; a
    retry-budget exhaustion serves the previous (stale) snapshot or, if
    none exists, reports the target as unknown.
``probe_delay``
    Each probe message is delayed by ``Exponential(delay)`` minutes with
    probability ``rate``.  Delays beyond the probe timeout count as a
    loss (timeout + retry).
``lookup_failure``
    Each routed DHT query fails in flight with probability ``rate``.
    The registry retries, re-routing around the hop that dropped the
    query (retry with exclusion); exhaustion degrades to "no record".
``stale_state``
    With probability ``rate``, a departing peer's soft state lingers:
    observers keep serving its last probe snapshot for ``staleness``
    minutes after the departure, as if the TTL had not yet expired.
``admission_failure``
    Each reservation message (end-system or connection) transiently
    fails with probability ``rate``.  Admission and recovery retry;
    exhaustion falls back to the plain rejection/failure path.
``partition``
    A regional partition: each peer is hashed into the minority region
    with probability ``fraction``.  While the spec is active, probes,
    lookups and reservations that cross the cut fail deterministically.

Example plan (the JSON accepted by ``repro run --faults PLAN.json``)::

    {
      "name": "lossy-with-partition",
      "faults": [
        {"kind": "probe_loss", "rate": 0.2},
        {"kind": "lookup_failure", "rate": 0.1},
        {"kind": "admission_failure", "rate": 0.05},
        {"kind": "stale_state", "rate": 0.5, "staleness": 3.0},
        {"kind": "partition", "start": 10.0, "end": 20.0, "fraction": 0.3}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan"]

#: Every fault kind the injector understands.
FAULT_KINDS: Tuple[str, ...] = (
    "probe_loss",
    "probe_delay",
    "lookup_failure",
    "stale_state",
    "admission_failure",
    "partition",
)

#: Kinds whose firing is a per-operation Bernoulli draw (need ``rate``).
_STOCHASTIC_KINDS = frozenset(FAULT_KINDS) - {"partition"}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled or stochastic fault.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Per-operation firing probability in ``[0, 1]`` (stochastic
        kinds).  Ignored by ``partition``.
    start / end:
        Active window in simulated minutes; ``end=None`` means "until
        the end of the run".
    delay:
        ``probe_delay``: mean injected delay (minutes, exponential).
    staleness:
        ``stale_state``: how long a departed peer's soft state lingers.
    fraction:
        ``partition``: probability a peer lands in the minority region.
    """

    kind: str
    rate: float = 0.0
    start: float = 0.0
    end: Optional[float] = None
    delay: float = 0.0
    staleness: float = 0.0
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of "
                f"{', '.join(FAULT_KINDS)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"empty fault window [{self.start}, {self.end})"
            )
        if self.kind == "probe_delay" and self.delay <= 0:
            raise ValueError("probe_delay needs a positive mean delay")
        if self.kind == "stale_state" and self.staleness <= 0:
            raise ValueError("stale_state needs a positive staleness")
        if self.kind == "partition" and not 0.0 < self.fraction < 1.0:
            raise ValueError(
                f"partition fraction must be in (0, 1), got {self.fraction}"
            )

    def active(self, now: float) -> bool:
        """Whether the spec's window covers simulated time ``now``."""
        return now >= self.start and (self.end is None or now < self.end)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready dict (defaults omitted for readability)."""
        out: Dict[str, Any] = {"kind": self.kind}
        defaults = {
            "rate": 0.0, "start": 0.0, "end": None,
            "delay": 0.0, "staleness": 0.0, "fraction": 0.5,
        }
        for key, default in defaults.items():
            value = getattr(self, key)
            if value != default:
                out[key] = value
        return out


@dataclass(frozen=True)
class FaultPlan:
    """An immutable collection of fault specs (possibly empty)."""

    faults: Tuple[FaultSpec, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    @property
    def active(self) -> bool:
        """Whether the plan injects anything at all."""
        return bool(self.faults)

    def specs(self, kind: str) -> Tuple[FaultSpec, ...]:
        """Every spec of one kind, in plan order."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        return tuple(s for s in self.faults if s.kind == kind)

    # -- (de)serialization -------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError(f"fault plan must be an object, got {type(data)}")
        raw = data.get("faults", [])
        if not isinstance(raw, (list, tuple)):
            raise ValueError("'faults' must be a list of fault specs")
        specs = []
        for i, entry in enumerate(raw):
            if not isinstance(entry, dict):
                raise ValueError(f"faults[{i}] must be an object")
            unknown = set(entry) - {
                "kind", "rate", "start", "end", "delay", "staleness",
                "fraction",
            }
            if unknown:
                raise ValueError(
                    f"faults[{i}] has unknown fields: {sorted(unknown)}"
                )
            if "kind" not in entry:
                raise ValueError(f"faults[{i}] is missing 'kind'")
            specs.append(FaultSpec(**entry))
        return cls(faults=tuple(specs), name=str(data.get("name", "")))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Read a plan from a JSON file."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"faults": [s.to_dict() for s in self.faults]}
        if self.name:
            out["name"] = self.name
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def __str__(self) -> str:
        label = self.name or "fault plan"
        if not self.faults:
            return f"{label}: (empty)"
        parts = []
        for s in self.faults:
            window = (
                "" if s.start == 0 and s.end is None
                else f" @[{s.start:g}, {'∞' if s.end is None else f'{s.end:g}'})"
            )
            if s.kind == "partition":
                parts.append(f"partition(fraction={s.fraction:g}){window}")
            else:
                parts.append(f"{s.kind}(rate={s.rate:g}){window}")
        return f"{label}: " + ", ".join(parts)
