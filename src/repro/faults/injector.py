"""The fault injector: seeded, sim-time fault decisions for one run.

The injector is the single authority on "does this operation misbehave
right now".  Hardened consumers (the prober, the lookup registry,
admission, recovery) ask it one question per operation; every stochastic
answer comes from one named RNG stream (``rngs.stream("faults")``), and
the simulator's event order is deterministic, so the same
``(seed, plan)`` pair reproduces the same faults -- byte-identical
telemetry included (``tests/telemetry/test_determinism.py``).

Besides the decisions the injector owns the fault bookkeeping: the
``fault.injected`` / ``retry.attempt`` / ``retry.exhausted`` telemetry
events, the matching counters, and the per-kind tallies behind
:meth:`FaultInjector.summary`.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict

from repro.faults.plan import FaultPlan
from repro.sim.rng import derive_seed

__all__ = ["FaultInjector"]

#: Partition-region hashing resolution (probability granularity 2^-64).
_HASH_SPACE = float(2**64)


class FaultInjector:
    """Decides, counts and reports every injected fault of one run.

    Parameters
    ----------
    sim:
        The simulator (fault windows are evaluated on its clock).
    plan:
        The :class:`~repro.faults.plan.FaultPlan` to execute.
    rng:
        A dedicated ``numpy`` generator (the grid passes its
        ``"faults"`` stream); every stochastic decision draws from it in
        simulation order, which keeps runs reproducible.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; when set, each
        injection and retry emits a bus event and bumps a counter.
    """

    def __init__(self, sim, plan: FaultPlan, rng, telemetry=None) -> None:
        self.sim = sim
        self.plan = plan
        self.rng = rng
        self.telemetry = telemetry
        #: Total faults injected, and the per-``(kind, site)`` tallies.
        self.n_injected = 0
        self.counts: Counter = Counter()
        #: Retry accounting across every hardened site.
        self.n_retries = 0
        self.n_exhausted = 0
        # Specs by kind, resolved once (plans are immutable).
        self._probe_loss = plan.specs("probe_loss")
        self._probe_delay = plan.specs("probe_delay")
        self._lookup_failure = plan.specs("lookup_failure")
        self._stale_state = plan.specs("stale_state")
        self._admission_failure = plan.specs("admission_failure")
        self._partitions = plan.specs("partition")
        # Region assignment salt: one draw, so different seeds cut the
        # population differently while one run's cut is stable.
        self._partition_salt = int(rng.integers(2**63)) if self._partitions else 0
        #: peer id -> simulated time its lingering soft state expires.
        self._ghosts: Dict[int, float] = {}

    # -- bookkeeping -------------------------------------------------------
    def _roll(self, rate: float) -> bool:
        """One Bernoulli draw (always consumes exactly one variate)."""
        return float(self.rng.random()) < rate

    def inject(self, kind: str, site: str, **fields: Any) -> None:
        """Record one injected fault (and emit it when telemetry is on)."""
        self.n_injected += 1
        self.counts[(kind, site)] += 1
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("fault.injected").inc()
            tel.bus.emit("fault.injected", kind=kind, site=site, **fields)

    def retry_attempt(
        self, site: str, attempt: int, delay: float, **fields: Any
    ) -> None:
        """Record one backoff retry at a hardened site."""
        self.n_retries += 1
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("retry.attempts").inc()
            tel.bus.emit(
                "retry.attempt", site=site, attempt=attempt,
                delay=round(delay, 9), **fields,
            )

    def retry_exhausted(self, site: str, attempts: int, **fields: Any) -> None:
        """Record a retry budget running dry (plain failure path follows)."""
        self.n_exhausted += 1
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("retry.exhausted").inc()
            tel.bus.emit(
                "retry.exhausted", site=site, attempts=attempts, **fields
            )

    # -- probing faults -----------------------------------------------------
    def probe_lost(self, target: int) -> bool:
        """Whether one probe message to ``target`` is lost right now."""
        now = self.sim.now
        for spec in self._probe_loss:
            if spec.active(now) and self._roll(spec.rate):
                self.inject("probe_loss", "probe", target=target)
                return True
        return False

    def probe_delay(self, target: int) -> float:
        """Injected delay (minutes) on one probe message; 0 = on time."""
        now = self.sim.now
        for spec in self._probe_delay:
            if spec.active(now) and self._roll(spec.rate):
                delay = float(self.rng.exponential(spec.delay))
                self.inject(
                    "probe_delay", "probe",
                    target=target, delay=round(delay, 9),
                )
                return delay
        return 0.0

    # -- lookup faults -----------------------------------------------------
    def lookup_fails(self, key: str, from_peer: int, owner_peer: int) -> bool:
        """Whether one routed DHT query fails in flight.

        Partition cuts between the querying peer and the responsible
        node fail deterministically; otherwise each active
        ``lookup_failure`` spec gets one Bernoulli draw.  Retries call
        this again -- the re-route excludes the hop that dropped the
        previous copy, so each copy's fate is an independent draw.
        """
        if self.partitioned(from_peer, owner_peer):
            self.inject(
                "partition", "lookup",
                key=key, from_peer=from_peer, owner=owner_peer,
            )
            return True
        now = self.sim.now
        for spec in self._lookup_failure:
            if spec.active(now) and self._roll(spec.rate):
                self.inject(
                    "lookup_failure", "lookup", key=key, from_peer=from_peer
                )
                return True
        return False

    def flood_drop(self, src: int, dst: int) -> bool:
        """Whether one flooding query copy on edge ``src -> dst`` drops.

        Shares the ``lookup_failure`` rate (per forwarded message) and
        the partition cut, so the unstructured substrate degrades under
        the same plan as the DHTs.
        """
        if self.partitioned(src, dst):
            self.inject("partition", "flood", src=src, dst=dst)
            return True
        now = self.sim.now
        for spec in self._lookup_failure:
            if spec.active(now) and self._roll(spec.rate):
                self.inject("lookup_failure", "flood", src=src, dst=dst)
                return True
        return False

    # -- admission faults ---------------------------------------------------
    def admission_fails(self, site: str, **fields: Any) -> bool:
        """Whether one reservation message transiently fails."""
        now = self.sim.now
        for spec in self._admission_failure:
            if spec.active(now) and self._roll(spec.rate):
                self.inject("admission_failure", site, **fields)
                return True
        return False

    # -- stale soft state ---------------------------------------------------
    def note_departure(self, peer_id: int) -> None:
        """Called once per departure; may leave lingering soft state."""
        now = self.sim.now
        for spec in self._stale_state:
            if spec.active(now) and self._roll(spec.rate):
                self._ghosts[peer_id] = now + spec.staleness
                self.inject(
                    "stale_state", "probe",
                    peer=peer_id, until=round(now + spec.staleness, 9),
                )
                return

    def ghost_active(self, peer_id: int) -> bool:
        """Whether observers still believe departed ``peer_id`` is alive."""
        expires = self._ghosts.get(peer_id)
        if expires is None:
            return False
        if self.sim.now >= expires:
            del self._ghosts[peer_id]
            return False
        return True

    # -- partitions ---------------------------------------------------------
    def _minority(self, spec_index: int, fraction: float, peer_id: int) -> bool:
        h = derive_seed(self._partition_salt, f"region/{spec_index}/{peer_id}")
        return h / _HASH_SPACE < fraction

    def partitioned(self, a: int, b: int) -> bool:
        """Whether peers ``a`` and ``b`` sit across an active cut."""
        if not self._partitions:
            return False
        now = self.sim.now
        for i, spec in enumerate(self._partitions):
            if not spec.active(now):
                continue
            if self._minority(i, spec.fraction, a) != self._minority(
                i, spec.fraction, b
            ):
                return True
        return False

    # -- reporting -----------------------------------------------------------
    def summary(self) -> str:
        """Per-(kind, site) injection tallies plus retry totals."""
        lines = [
            f"faults: {self.n_injected} injected, "
            f"{self.n_retries} retries, {self.n_exhausted} budgets exhausted"
        ]
        if self.counts:
            width = max(len(f"{k}@{s}") for k, s in self.counts)
            for (kind, site), count in sorted(self.counts.items()):
                label = f"{kind}@{site}"
                lines.append(f"  {label:<{width}}  {count:>8d}")
        return "\n".join(lines)
