"""Deterministic fault injection for the P2P substrate.

The paper's evaluation assumes a polite network: probes, DHT lookups and
reservations always succeed instantly, and the only fault is a clean
whole-peer departure.  This package makes the substrate misbehave on
purpose -- message loss and delay, lookup failures, lingering soft
state, transient reservation failures and regional partitions -- under a
seeded, declarative :class:`FaultPlan`, so the model's robustness claims
can be measured instead of asserted.

* :mod:`repro.faults.plan` -- the declarative plan (JSON round-trip).
* :mod:`repro.faults.backoff` -- the shared retry/backoff policy.
* :mod:`repro.faults.injector` -- per-operation fault decisions.
"""

from repro.faults.backoff import RetryPolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
]
