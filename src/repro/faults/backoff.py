"""Capped exponential backoff with deterministic, seeded jitter.

One :class:`RetryPolicy` shape is shared by every hardened consumer --
the prober, the lookup registry, session admission and runtime recovery
-- so the backoff discipline (and its tests) live in one place.

Backoff delays are *simulated* minutes.  Where the consumer runs inside
the synchronous setup pipeline (probing, lookup, admission) the delay is
virtual: it is recorded on the ``retry.attempt`` telemetry event for
analysis but does not advance the clock, because the paper's setup
protocol is a synchronous exchange.  Runtime recovery, which is event
driven, schedules its retries at real simulated delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget + capped exponential backoff schedule.

    ``delay(k)`` for the ``k``-th retry (1-based) is::

        min(cap, base * multiplier**(k-1)) * jitter_factor

    where ``jitter_factor`` is drawn uniformly from
    ``[1 - jitter, 1]`` when an RNG is supplied (deterministic under a
    seeded generator) and is 1 otherwise.
    """

    #: How many retries follow the first attempt (0 = fail immediately).
    max_retries: int = 3
    #: First retry delay, simulated minutes.
    backoff_base: float = 0.05
    #: Upper bound on any single delay.
    backoff_cap: float = 0.5
    #: Geometric growth factor between consecutive retries.
    multiplier: float = 2.0
    #: Randomized fraction of each delay (0 disables jitter).
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base <= 0:
            raise ValueError("backoff_base must be positive")
        if self.backoff_cap < self.backoff_base:
            raise ValueError("backoff_cap must be >= backoff_base")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def delay(self, attempt: int, rng=None) -> float:
        """Backoff before retry number ``attempt`` (1-based), minutes."""
        if attempt < 1:
            raise ValueError("retry attempts are numbered from 1")
        d = min(self.backoff_cap,
                self.backoff_base * self.multiplier ** (attempt - 1))
        if rng is not None and self.jitter > 0:
            d *= (1.0 - self.jitter) + self.jitter * float(rng.random())
        return d

    def delays(self, rng=None, n: Optional[int] = None) -> List[float]:
        """The full backoff schedule (``n`` defaults to the budget)."""
        count = self.max_retries if n is None else n
        return [self.delay(k, rng) for k in range(1, count + 1)]
