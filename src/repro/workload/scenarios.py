"""Time-varying workload scenarios: flash crowds and diurnal cycles.

§4.1's workload is stationary Poisson.  Real P2P request streams are
not: media events produce *flash crowds* (a sharp burst onto one
application) and user populations produce *diurnal* rate cycles.  This
module generalizes the generator to a time-varying rate λ(t) via the
standard **thinning** construction (Lewis & Shedler): candidate arrivals
are drawn at the envelope rate ``λ_max`` and accepted with probability
``λ(t)/λ_max``, which yields an exact non-homogeneous Poisson process.

Profiles
--------
* :class:`ConstantRate` -- the §4.1 baseline.
* :class:`FlashCrowd` -- base rate plus a burst window at ``peak``
  multiple, optionally focused on one application.
* :class:`DiurnalRate` -- sinusoidal day/night cycle.

``benchmarks/bench_flash_crowd.py`` uses these to measure how the three
algorithms absorb a 10x burst.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.services.applications import ApplicationTemplate
from repro.services.qoscompiler import UserRequest
from repro.sim.engine import Simulator
from repro.sim.process import Process

__all__ = [
    "RateProfile",
    "ConstantRate",
    "FlashCrowd",
    "DiurnalRate",
    "VariableRateGenerator",
]


class RateProfile:
    """A time-varying request rate λ(t) (requests/minute)."""

    def rate_at(self, t: float) -> float:
        raise NotImplementedError

    @property
    def max_rate(self) -> float:
        """An upper envelope for thinning; must dominate λ(t) everywhere."""
        raise NotImplementedError

    def app_bias_at(self, t: float) -> Optional[str]:
        """Application every *burst-attributed* request targets, if any."""
        return None


@dataclass(frozen=True)
class ConstantRate(RateProfile):
    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("rate must be positive")

    def rate_at(self, t: float) -> float:
        return self.rate

    @property
    def max_rate(self) -> float:
        return self.rate


@dataclass(frozen=True)
class FlashCrowd(RateProfile):
    """Base rate with a burst window at ``peak``x, aimed at one app.

    During ``[start, start + duration)`` the total rate is
    ``base_rate * peak``; the excess over the base rate goes to
    ``hot_application`` when one is named (everyone rushes to the same
    stream), the base share keeps its usual mix.
    """

    base_rate: float
    start: float
    duration: float
    peak: float = 10.0
    hot_application: Optional[str] = None

    def __post_init__(self) -> None:
        if self.base_rate <= 0 or self.duration <= 0 or self.peak < 1:
            raise ValueError("need base_rate > 0, duration > 0, peak >= 1")

    def in_burst(self, t: float) -> bool:
        return self.start <= t < self.start + self.duration

    def rate_at(self, t: float) -> float:
        return self.base_rate * (self.peak if self.in_burst(t) else 1.0)

    @property
    def max_rate(self) -> float:
        return self.base_rate * self.peak

    def app_bias_at(self, t: float) -> Optional[str]:
        return self.hot_application if self.in_burst(t) else None


@dataclass(frozen=True)
class DiurnalRate(RateProfile):
    """``mean_rate * (1 + amplitude * sin(2π t / period))``."""

    mean_rate: float
    amplitude: float = 0.5
    period: float = 1440.0  # one simulated day, in minutes

    def __post_init__(self) -> None:
        if self.mean_rate <= 0:
            raise ValueError("mean rate must be positive")
        if not 0 <= self.amplitude < 1:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def rate_at(self, t: float) -> float:
        return self.mean_rate * (
            1.0 + self.amplitude * math.sin(2 * math.pi * t / self.period)
        )

    @property
    def max_rate(self) -> float:
        return self.mean_rate * (1.0 + self.amplitude)


class VariableRateGenerator:
    """Non-homogeneous Poisson request stream via thinning."""

    def __init__(
        self,
        sim: Simulator,
        profile: RateProfile,
        horizon: float,
        applications: Sequence[ApplicationTemplate],
        alive_peer_ids: Callable[[], Sequence[int]],
        sink: Callable[[UserRequest], None],
        rng: np.random.Generator,
        duration_range: tuple = (1.0, 60.0),
        qos_levels: tuple = ("low", "average", "high"),
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.sim = sim
        self.profile = profile
        self.horizon = horizon
        self.applications = list(applications)
        if not self.applications:
            raise ValueError("need at least one application")
        self._by_name = {a.name: a for a in self.applications}
        self.alive_peer_ids = alive_peer_ids
        self.sink = sink
        self.rng = rng
        self.duration_range = duration_range
        self.qos_levels = qos_levels
        self.n_generated = 0
        self._next_id = 0

    def _make_request(self, hot_app: Optional[str]) -> Optional[UserRequest]:
        ids = self.alive_peer_ids()
        if not ids:
            return None
        rng = self.rng
        if hot_app is not None and hot_app in self._by_name:
            # Excess burst traffic rushes the hot application; the base
            # share (1/peak of the burst rate) keeps the usual mix.  A
            # uniform draw against base/burst ratio approximates that
            # split without needing the profile internals.
            app_name = hot_app
        else:
            app_name = self.applications[
                int(rng.integers(len(self.applications)))
            ].name
        lo, hi = self.duration_range
        request = UserRequest(
            request_id=self._next_id,
            peer_id=ids[int(rng.integers(len(ids)))],
            application=app_name,
            qos_level=str(rng.choice(self.qos_levels)),
            session_duration=float(rng.uniform(lo, hi)),
            arrival_time=self.sim.now,
        )
        self._next_id += 1
        return request

    def _run(self) -> Iterator:
        env = self.profile.max_rate
        mean_gap = 1.0 / env
        while True:
            gap = float(self.rng.exponential(mean_gap))
            if self.sim.now + gap > self.horizon:
                return
            yield self.sim.timeout(gap)
            t = self.sim.now
            # Thinning: accept with probability λ(t)/λ_max.
            if self.rng.random() > self.profile.rate_at(t) / env:
                continue
            hot = self.profile.app_bias_at(t)
            if hot is not None:
                # Only the burst *excess* rushes the hot application; the
                # base-rate share keeps the normal application mix.
                base = getattr(self.profile, "base_rate", 0.0)
                burst_share = 1.0 - base / self.profile.rate_at(t)
                if self.rng.random() > burst_share:
                    hot = None
            request = self._make_request(hot)
            if request is not None:
                self.n_generated += 1
                self.sink(request)

    def start(self) -> Process:
        return Process(self.sim, self._run(), name="variable-workload")
