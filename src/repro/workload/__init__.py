"""Workload generation (the request stream of §4.1)."""

from repro.workload.generator import RequestGenerator, WorkloadConfig

__all__ = ["RequestGenerator", "WorkloadConfig"]
