"""The request stream: Poisson arrivals over random peers (§4.1).

"During each minute, certain number of user requests are generated and
assigned on a set of randomly chosen peers.  The user request is
represented by any of the 10 distributed applications whose service path
lengths are between 2 to 5 and whose session durations are between 1 to
60 minutes.  The user's QoS requirement is specified by a single
parameter which has three levels: high, average, and low."

:class:`RequestGenerator` renders that as a Poisson process with
exponential inter-arrival times at ``rate`` requests/minute; every
arrival draws a requesting peer, an application, a QoS level and a
session duration and hands the request to a sink callable (usually
``aggregator.aggregate`` wrapped by the metrics collector).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from repro.services.applications import ApplicationTemplate
from repro.services.qoscompiler import UserRequest
from repro.sim.engine import Simulator
from repro.sim.process import Process

__all__ = ["WorkloadConfig", "RequestGenerator"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Workload parameters; defaults mirror §4.1."""

    #: Request arrival rate, requests per minute.
    rate_per_min: float = 100.0
    #: Generation stops at this simulated minute (sessions may run on).
    horizon: float = 60.0
    #: Session duration range, minutes (uniform).
    duration_range: tuple = (1.0, 60.0)
    #: QoS levels drawn uniformly.
    qos_levels: tuple = ("low", "average", "high")

    def __post_init__(self) -> None:
        if self.rate_per_min <= 0:
            raise ValueError("request rate must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        lo, hi = self.duration_range
        if not 0 < lo <= hi:
            raise ValueError(f"bad duration range ({lo}, {hi})")


class RequestGenerator:
    """Drives the request stream into a sink."""

    def __init__(
        self,
        sim: Simulator,
        config: WorkloadConfig,
        applications: Sequence[ApplicationTemplate],
        alive_peer_ids: Callable[[], Sequence[int]],
        sink: Callable[[UserRequest], None],
        rng: np.random.Generator,
    ) -> None:
        self.sim = sim
        self.config = config
        self.applications = list(applications)
        if not self.applications:
            raise ValueError("need at least one application template")
        self.alive_peer_ids = alive_peer_ids
        self.sink = sink
        self.rng = rng
        self.n_generated = 0
        self._next_id = 0

    def make_request(self) -> Optional[UserRequest]:
        """One §4.1 request at the current time; None if no peer is alive."""
        ids = self.alive_peer_ids()
        if not ids:
            return None
        rng = self.rng
        app = self.applications[int(rng.integers(len(self.applications)))]
        lo, hi = self.config.duration_range
        request = UserRequest(
            request_id=self._next_id,
            peer_id=ids[int(rng.integers(len(ids)))],
            application=app.name,
            qos_level=str(rng.choice(self.config.qos_levels)),
            session_duration=float(rng.uniform(lo, hi)),
            arrival_time=self.sim.now,
        )
        self._next_id += 1
        return request

    def _run(self) -> Iterator:
        mean_gap = 1.0 / self.config.rate_per_min
        while True:
            gap = float(self.rng.exponential(mean_gap))
            if self.sim.now + gap > self.config.horizon:
                return
            yield self.sim.timeout(gap)
            request = self.make_request()
            if request is not None:
                self.n_generated += 1
                self.sink(request)

    def start(self) -> Process:
        return Process(self.sim, self._run(), name="workload")
