"""Span tracing in simulated time.

A *span* is a named interval with a parent, so nested spans render as a
trace tree::

    with tracer.span("request", request_id=7):
        with tracer.span("qcs.compose"):
            with tracer.span("qcs.graph_build"):
                ...
            with tracer.span("qcs.solve"):
                ...

Two flavours:

* :meth:`SpanTracer.span` -- a context manager for synchronous phases.
  Parentage follows the with-nesting (an explicit stack, no thread
  locals: the simulator is single-threaded by construction).
* :meth:`SpanTracer.open` -- a detached span for intervals that outlive
  the opening call, e.g. a session's admit -> completion lifetime.  The
  caller keeps the handle and calls :meth:`Span.end`.

Every span closes by emitting one ``span`` event on the bus carrying
``(name, id, parent, start)``; the event's own timestamp is the end, so
the exported stream stays monotone and byte-deterministic.  Wall-clock
durations are *also* accumulated per span name -- but only in-process,
for the optimization summary; wall time never enters the event stream
(it would break seeded reproducibility).

``NULL_TRACER`` is the disabled-mode stand-in: ``span()`` hands back one
shared no-op context manager, so instrumented code needs no branches and
pays ~a method call when telemetry is off.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.bus import BusEvent, EventBus

__all__ = ["Span", "SpanTracer", "NullTracer", "NULL_TRACER", "render_span_tree"]


class Span:
    """One open interval; close with :meth:`end` (or via ``with``)."""

    __slots__ = (
        "tracer", "name", "span_id", "parent_id", "sim_start",
        "fields", "_wall_start", "_nested", "_closed",
    )

    def __init__(
        self,
        tracer: "SpanTracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        sim_start: float,
        fields: Dict[str, Any],
        nested: bool,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.sim_start = sim_start
        self.fields = fields
        # In-process wall aggregate only; never enters the event stream.
        self._wall_start = time.perf_counter()  # lint: disable=DET001 -- profiling feed
        self._nested = nested
        self._closed = False

    @property
    def detached(self) -> bool:
        """True for :meth:`SpanTracer.open` spans (interval outlives the
        opening call, e.g. a session lifetime).  Wall-clock consumers
        use this to tell sim-lifetime intervals from hot-path work."""
        return not self._nested

    def end(self, **extra: Any) -> None:
        """Close the span: pop the stack (if nested) and emit the event."""
        if self._closed:
            return
        self._closed = True
        self.tracer._close(self, extra)

    # -- context-manager protocol ------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.end()
        else:
            self.end(error=exc_type.__name__)


class SpanTracer:
    """Creates spans, tracks nesting, and emits ``span`` events."""

    def __init__(self, bus: EventBus, clock: Callable[[], float]) -> None:
        self._bus = bus
        self._clock = clock
        self._stack: List[int] = []
        self._next_id = 0
        #: per-name wall-clock aggregates: name -> [count, total_seconds].
        self._wall: Dict[str, List[float]] = {}
        #: wall-clock close observers: fn(span, wall_start, wall_end).
        #: In-process only (the profiler's feed); nothing an observer
        #: sees ever reaches the bus, so the exported stream stays
        #: byte-deterministic with observers attached.
        self._wall_observers: List[Callable[[Span, float, float], None]] = []

    def _new(self, name: str, nested: bool, fields: Dict[str, Any]) -> Span:
        span = Span(
            self,
            name,
            span_id=self._next_id,
            parent_id=self._stack[-1] if self._stack else None,
            sim_start=self._clock(),
            fields=fields,
            nested=nested,
        )
        self._next_id += 1
        if nested:
            self._stack.append(span.span_id)
        return span

    def span(self, name: str, **fields: Any) -> Span:
        """A stack-nested span for a synchronous phase (use ``with``)."""
        return self._new(name, nested=True, fields=fields)

    def open(self, name: str, **fields: Any) -> Span:
        """A detached span whose interval outlives the opening call."""
        return self._new(name, nested=False, fields=fields)

    def _close(self, span: Span, extra: Dict[str, Any]) -> None:
        if span._nested:
            # Tolerate out-of-order closes (an exception unwinding through
            # several spans) by popping down to this span.
            while self._stack and self._stack[-1] != span.span_id:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        wall_end = time.perf_counter()  # lint: disable=DET001 -- profiling feed
        agg = self._wall.get(span.name)
        if agg is None:
            agg = self._wall[span.name] = [0, 0.0]
        agg[0] += 1
        agg[1] += wall_end - span._wall_start
        for fn in self._wall_observers:
            fn(span, span._wall_start, wall_end)
        fields = {
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "start": span.sim_start,
        }
        if span.fields:
            fields.update(span.fields)
        if extra:
            fields.update(extra)
        self._bus.emit_event("span", fields)

    # -- wall-clock summary (in-process only; never exported) ----------------
    def add_wall_observer(
        self, fn: Callable[[Span, float, float], None]
    ) -> Callable[[], None]:
        """Call ``fn(span, wall_start, wall_end)`` on every span close.

        Returns an unsubscribe callable.  Times are ``perf_counter``
        values; the observer must not emit bus events (that would leak
        wall-clock ordering into the deterministic stream).
        """
        self._wall_observers.append(fn)

        def remove() -> None:
            try:
                self._wall_observers.remove(fn)
            except ValueError:
                pass

        return remove

    def wall_totals(self) -> Dict[str, Tuple[int, float]]:
        """``name -> (count, total wall seconds)`` for closed spans."""
        return {n: (int(c), t) for n, (c, t) in sorted(self._wall.items())}

    def wall_table(self) -> str:
        if not self._wall:
            return "(no spans recorded)"
        width = max(len(n) for n in self._wall)
        lines = [f"{'span':<{width}}     count   total ms    mean µs"]
        for name, (count, total) in self.wall_totals().items():
            mean_us = (total / count) * 1e6 if count else 0.0
            lines.append(
                f"{name:<{width}}  {count:>8d} {total * 1e3:>10.2f} "
                f"{mean_us:>10.1f}"
            )
        return "\n".join(lines)


class NullTracer:
    """Disabled-mode tracer: every ``span()`` is one shared no-op."""

    __slots__ = ()

    class _NullSpan:
        __slots__ = ()

        def __enter__(self):
            return self

        def __exit__(self, exc_type, exc, tb):
            return None

        def end(self, **extra: Any) -> None:
            return None

    _SPAN = _NullSpan()

    def span(self, name: str, **fields: Any) -> "_NullSpan":
        return self._SPAN

    def open(self, name: str, **fields: Any) -> "_NullSpan":
        return self._SPAN

    def add_wall_observer(self, fn) -> Callable[[], None]:
        return lambda: None

    def wall_totals(self) -> Dict[str, Tuple[int, float]]:
        return {}

    def wall_table(self) -> str:
        return "(tracing disabled)"


NULL_TRACER = NullTracer()


def render_span_tree(events: Sequence[BusEvent], limit: int = 200) -> str:
    """Render ``span`` events (from a bus or a parsed JSONL) as a tree.

    Children are indented under their parent; each line shows the span's
    simulated interval.  ``limit`` caps the output for huge traces.
    """
    spans = [e for e in events if e.name == "span"]
    if not spans:
        return "(no spans)"
    children: Dict[Optional[int], List[BusEvent]] = {}
    for e in spans:
        children.setdefault(e.fields.get("parent"), []).append(e)

    lines: List[str] = []

    def walk(parent: Optional[int], depth: int) -> None:
        for e in children.get(parent, ()):
            if len(lines) >= limit:
                return
            f = e.fields
            extras = " ".join(
                f"{k}={v}"
                for k, v in f.items()
                if k not in ("name", "id", "parent", "start")
            )
            lines.append(
                f"{'  ' * depth}{f['name']} "
                f"[{f['start']:.3f} -> {e.time:.3f} min]"
                + (f" {extras}" if extras else "")
            )
            walk(f["id"], depth + 1)

    walk(None, 0)
    if len(lines) >= limit:
        lines.append(f"... ({len(spans)} spans total)")
    return "\n".join(lines)
