"""The metrics registry: counters, gauges and histograms by dotted name.

Instruments are created lazily on first use and shared by name::

    registry.counter("probe.messages_sent").inc()
    registry.gauge("probe.tables").set(len(tables))
    registry.histogram("lookup.hops").observe(hops)

Every instrument is deterministic state (no wall-clock, no sampling), so
a seeded run always reproduces the same registry -- the same property the
event stream has.  ``MetricsRegistry.summary_table()`` renders the whole
registry as the text table the CLI prints after a telemetry run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Streaming distribution summary: count/sum/min/max plus a reservoir.

    The reservoir keeps the first ``reservoir_cap`` observations exactly
    (enough for percentiles in every experiment this repo runs); beyond
    that only the running aggregates update.  Everything is filled in
    arrival order, so seeded runs reproduce the reservoir bit-for-bit.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_values", "_cap")

    def __init__(self, name: str, reservoir_cap: int = 10_000) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._values: List[float] = []
        self._cap = reservoir_cap

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._values) < self._cap:
            self._values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the reservoir (``q`` in [0, 100])."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Histogram {self.name} n={self.count} mean={self.mean:.3g}>"
        )


class MetricsRegistry:
    """Lazily created, name-addressed instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- access (creates on first use) ------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
        return inst

    # -- inspection -----------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def counters(self) -> Dict[str, float]:
        return {n: c.value for n, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, float]:
        return {n: g.value for n, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-data dump (used by tests and the CLI)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                n: {
                    "count": h.count,
                    "mean": h.mean,
                    "min": h.min,
                    "max": h.max,
                    "p50": h.percentile(50),
                    "p95": h.percentile(95),
                    "p99": h.percentile(99),
                }
                for n, h in self._histograms.items()
            },
        }

    # -- rendering ---------------------------------------------------------
    def summary_table(self) -> str:
        """The registry as aligned text sections (counters first)."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters")
            width = max(len(n) for n in self._counters)
            for name, value in self.counters().items():
                lines.append(f"  {name:<{width}}  {value:>12g}")
        if self._gauges:
            lines.append("gauges")
            width = max(len(n) for n in self._gauges)
            for name, value in self.gauges().items():
                lines.append(f"  {name:<{width}}  {value:>12g}")
        if self._histograms:
            lines.append(
                "histograms"
                "                 count       mean        min        max"
                "        p50        p95        p99"
            )
            width = max(len(n) for n in self._histograms)
            for name, h in self.histograms().items():
                lines.append(
                    f"  {name:<{width}}  {h.count:>8d} {h.mean:>10.3f} "
                    f"{(h.min or 0):>10.3f} {(h.max or 0):>10.3f} "
                    f"{h.percentile(50):>10.3f} {h.percentile(95):>10.3f} "
                    f"{h.percentile(99):>10.3f}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
