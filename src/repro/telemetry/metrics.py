"""The metrics registry: counters, gauges and histograms by dotted name.

Instruments are created lazily on first use and shared by name::

    registry.counter("probe.messages_sent").inc()
    registry.gauge("probe.tables").set(len(tables))
    registry.histogram("lookup.hops").observe(hops)

Every instrument is deterministic state (no wall-clock, no sampling), so
a seeded run always reproduces the same registry -- the same property the
event stream has.  ``MetricsRegistry.summary_table()`` renders the whole
registry as the text table the CLI prints after a telemetry run.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: A registry tap: ``fn(name, kind, value)`` mirrored on every counter
#: increment / histogram observation (see ``MetricsRegistry.attach_tap``).
Tap = Callable[[str, str, float], None]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value", "_tap")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._tap: Optional[Tap] = None

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount
        if self._tap is not None:
            self._tap(self.name, "counter", amount)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value:g}>"


class Gauge:
    """A value that goes up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value:g}>"


class Histogram:
    """Streaming distribution summary: count/sum/min/max plus a reservoir.

    The reservoir keeps the first ``reservoir_cap`` observations exactly
    (enough for percentiles in every experiment this repo runs); beyond
    that only the running aggregates update.  Everything is filled in
    arrival order, so seeded runs reproduce the reservoir bit-for-bit.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_values", "_cap", "_tap")

    def __init__(self, name: str, reservoir_cap: int = 10_000) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._values: List[float] = []
        self._cap = reservoir_cap
        self._tap: Optional[Tap] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._values) < self._cap:
            self._values.append(value)
        if self._tap is not None:
            self._tap(self.name, "histogram", value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the reservoir (``q`` in [0, 100])."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
        return ordered[rank]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Histogram {self.name} n={self.count} mean={self.mean:.3g}>"
        )


class MetricsRegistry:
    """Lazily created, name-addressed instruments."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._tap: Optional[Tap] = None
        self._tap_kinds: Tuple[str, ...] = ("counter", "histogram")

    # -- access (creates on first use) ------------------------------------
    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter(name)
            if "counter" in self._tap_kinds:
                inst._tap = self._tap
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram(name)
            if "histogram" in self._tap_kinds:
                inst._tap = self._tap
        return inst

    # -- windowed-layer hook ------------------------------------------------
    def attach_tap(
        self,
        tap: Optional[Tap],
        kinds: Tuple[str, ...] = ("counter", "histogram"),
    ) -> None:
        """Mirror every update into ``tap(name, kind, value)``.

        The tap is a pure observer -- it cannot mutate instruments or
        emit events, so attaching one leaves the registry state (and any
        seeded telemetry export) byte-identical.  Pass ``None`` to
        detach.  ``kinds`` restricts which instrument kinds carry the
        tap: the serving plane taps histograms only (observations are
        the irrecoverable part) and derives counter windows by
        delta-sampling the cumulative values, keeping counter
        increments -- the hottest instrument path -- tap-free.
        """
        self._tap = tap
        self._tap_kinds = kinds
        counter_tap = tap if "counter" in kinds else None
        histogram_tap = tap if "histogram" in kinds else None
        for counter in self._counters.values():
            counter._tap = counter_tap
        for histogram in self._histograms.values():
            histogram._tap = histogram_tap

    # -- inspection -----------------------------------------------------------
    @property
    def empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def counters(self) -> Dict[str, float]:
        return {n: c.value for n, c in sorted(self._counters.items())}

    def gauges(self) -> Dict[str, float]:
        return {n: g.value for n, g in sorted(self._gauges.items())}

    def histograms(self) -> Dict[str, Histogram]:
        return dict(sorted(self._histograms.items()))

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-data dump (used by tests and the CLI)."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {
                n: {
                    "count": h.count,
                    "mean": h.mean,
                    "min": h.min,
                    "max": h.max,
                    "p50": h.percentile(50),
                    "p95": h.percentile(95),
                    "p99": h.percentile(99),
                    # percentiles cover the reservoir only -- the first
                    # `reservoir_cap` observations (windowed series are
                    # the rolling view)
                    "reservoir": len(h._values),
                    "reservoir_cap": h._cap,
                }
                for n, h in self._histograms.items()
            },
        }

    # -- rendering ---------------------------------------------------------
    def summary_table(self) -> str:
        """The registry as aligned text sections (counters first)."""
        lines: List[str] = []
        if self._counters:
            lines.append("counters")
            width = max(len(n) for n in self._counters)
            for name, value in self.counters().items():
                lines.append(f"  {name:<{width}}  {value:>12g}")
        if self._gauges:
            lines.append("gauges")
            width = max(len(n) for n in self._gauges)
            for name, value in self.gauges().items():
                lines.append(f"  {name:<{width}}  {value:>12g}")
        if self._histograms:
            lines.append(
                "histograms"
                "                 count       mean        min        max"
                "        p50        p95        p99"
                "   (percentiles: first 10k observations)"
            )
            width = max(len(n) for n in self._histograms)
            for name, h in self.histograms().items():
                lines.append(
                    f"  {name:<{width}}  {h.count:>8d} {h.mean:>10.3f} "
                    f"{(h.min or 0):>10.3f} {(h.max or 0):>10.3f} "
                    f"{h.percentile(50):>10.3f} {h.percentile(95):>10.3f} "
                    f"{h.percentile(99):>10.3f}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"
