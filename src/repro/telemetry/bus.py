"""The structured event bus: ``emit(name, **fields)`` on the sim clock.

The bus is the single spine every telemetry signal travels over:

* instrumented subsystems **emit** named events whose timestamp is the
  *simulated* clock (wall time never enters the stream, so two runs with
  the same seed produce byte-identical streams -- tested in
  ``tests/telemetry/test_determinism.py``);
* consumers **subscribe** by event name (or ``"*"``) and receive each
  event synchronously, in emission order;
* when ``record=True`` the bus additionally retains events (optionally
  bounded) for later export as JSONL.

Dispatch-only mode (``record=False``) is what a disabled-telemetry grid
runs: the low-volume request/session events still reach the metrics
layer (:meth:`repro.experiments.metrics.MetricsCollector.attach`), but
nothing is retained and no high-volume instrumentation site ever fires,
so the hot paths pay only a ``None`` check (measured < 2 % on
``bench_qcs_complexity``; see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    IO,
    Iterator,
    List,
    Optional,
    Union,
)

__all__ = ["BusEvent", "EventBus"]


@dataclass(frozen=True, slots=True)
class BusEvent:
    """One named, timestamped occurrence on the bus.

    ``time`` is simulated minutes; ``seq`` is a per-bus monotone counter
    that orders simultaneous events (the simulator fires ties FIFO, so
    ``(time, seq)`` is a total, reproducible order).
    """

    time: float
    seq: int
    name: str
    fields: Dict[str, Any]

    def __getattr__(self, key: str) -> Any:
        try:
            return self.fields[key]
        except KeyError:
            raise AttributeError(key) from None

    def to_json(self) -> str:
        """One canonical JSON line (sorted keys -> byte-stable output)."""
        payload = {"t": self.time, "seq": self.seq, "event": self.name}
        payload.update(self.fields)
        return json.dumps(payload, sort_keys=True, default=_jsonable)

    def __str__(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:9.3f}] {self.name:<22} {inner}"


def _jsonable(value: Any) -> Any:
    """Fallback serializer: tuples/sets become lists, the rest ``str``."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    return str(value)


class EventBus:
    """Named-event pub/sub stamped with the simulation clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated time.
    record:
        Retain emitted events for export/inspection.  ``False`` keeps
        the bus dispatch-only (subscribers still fire).
    capacity:
        With ``record=True``, keep at most this many most-recent events
        (``None`` = unbounded).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        record: bool = True,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None)")
        self._clock = clock
        self._record = record
        self._events: Deque[BusEvent] = deque(maxlen=capacity)
        self._subscribers: Dict[str, List[Callable[[BusEvent], None]]] = {}
        self._seq = 0
        self.n_emitted = 0

    @property
    def recording(self) -> bool:
        return self._record

    # -- emission ---------------------------------------------------------
    def emit(self, name: str, /, **fields: Any) -> BusEvent:
        """Stamp, retain (if recording) and dispatch one event.

        The event name is positional-only so payloads may themselves
        carry a ``name`` field (``span`` events do).
        """
        event = BusEvent(self._clock(), self._seq, name, fields)
        self._seq += 1
        self.n_emitted += 1
        if self._record:
            self._events.append(event)
        subs = self._subscribers
        if subs:
            for fn in subs.get(name, ()):
                fn(event)
            for fn in subs.get("*", ()):
                fn(event)
        return event

    def emit_event(self, name: str, fields: Dict[str, Any]) -> BusEvent:
        """:meth:`emit` with a pre-built fields dict.

        High-volume emitters (the span tracer) assemble their payload
        once and hand over ownership of ``fields`` instead of paying a
        kwargs repack per event.
        """
        event = BusEvent(self._clock(), self._seq, name, fields)
        self._seq += 1
        self.n_emitted += 1
        if self._record:
            self._events.append(event)
        subs = self._subscribers
        if subs:
            for fn in subs.get(name, ()):
                fn(event)
            for fn in subs.get("*", ()):
                fn(event)
        return event

    # -- subscription -------------------------------------------------------
    def subscribe(
        self, name: str, fn: Callable[[BusEvent], None]
    ) -> Callable[[], None]:
        """Call ``fn`` on every ``name`` event (``"*"`` = every event).

        Returns an unsubscribe callable.
        """
        self._subscribers.setdefault(name, []).append(fn)

        def unsubscribe() -> None:
            try:
                self._subscribers[name].remove(fn)
            except (KeyError, ValueError):
                pass

        return unsubscribe

    # -- retained-stream queries ---------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[BusEvent]:
        return iter(self._events)

    def events(
        self,
        name: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[BusEvent]:
        """Retained events, optionally filtered by name and time window.

        A ``name`` ending in ``.`` matches the whole prefix (e.g.
        ``"qcs."`` returns every QCS event).
        """
        if name is not None and name.endswith("."):
            match = lambda e: e.name.startswith(name)  # noqa: E731
        elif name is not None:
            match = lambda e: e.name == name  # noqa: E731
        else:
            match = lambda e: True  # noqa: E731
        return [e for e in self._events if match(e) and since <= e.time <= until]

    def counts(self) -> Counter:
        """Retained events by name."""
        return Counter(e.name for e in self._events)

    # -- export -----------------------------------------------------------
    def export_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write the retained stream as JSON Lines; returns line count.

        ``destination`` is a path or an open text file.  Lines are in
        emission order, hence non-decreasing in ``t`` and strictly
        increasing in ``seq``.
        """
        if hasattr(destination, "write"):
            return self._write_jsonl(destination)
        with open(destination, "w", encoding="utf-8") as fh:
            return self._write_jsonl(fh)

    def _write_jsonl(self, fh: IO[str]) -> int:
        n = 0
        for event in self._events:
            fh.write(event.to_json())
            fh.write("\n")
            n += 1
        return n
