"""Trace analytics: span-tree reconstruction over exported streams.

PR 1's tracer answers "what happened" -- this module answers "where did
the time go".  It consumes ``span`` records from either source:

* a telemetry JSONL export (``repro run --telemetry out.jsonl``), whose
  durations are *simulated minutes*.  Setup-phase spans (request, QCS,
  selection) close at the same sim instant they open -- the pipeline is
  synchronous -- so their sim durations are zero by construction; the
  detached ``session`` spans carry the meaningful sim intervals.
* a profile trace (``repro profile run --trace-out prof.jsonl``), the
  same record shape with *wall-clock seconds* (tagged ``"unit": "s"``).
  This is where per-request hot-path attribution lives; wall time never
  enters the telemetry stream itself (seeded byte-determinism).

Offered analyses:

* :func:`build_forest` -- reconstruct the span trees (parent links come
  from the tracer's explicit nesting stack, so no heuristics needed);
* :func:`aggregate_spans` -- per-name count/total/self-time tables;
* :func:`critical_path` / :func:`phase_report` -- which phase (graph
  build, DP, lookup, probing, admission, ...) dominated each request;
* :func:`folded_stacks` -- flamegraph.pl / speedscope compatible
  folded-stack output (``root;child;leaf <integer weight>``).

All of it is plain post-processing: nothing here touches the bus, the
RNG streams or the simulator, so analysing a trace can never perturb a
run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    IO,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "SpanRecord",
    "SpanNode",
    "TraceAnalysisError",
    "spans_from_events",
    "load_jsonl_spans",
    "build_forest",
    "aggregate_spans",
    "format_span_table",
    "critical_path",
    "phase_report",
    "folded_stacks",
    "render_folded",
    "render_forest",
]

#: Field names that are structural, not user payload, on a span record.
_STRUCTURAL = ("name", "id", "parent", "start", "unit")


class TraceAnalysisError(ValueError):
    """A stream could not be parsed into span records."""


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: a named ``[start, end]`` interval with a parent."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: float
    fields: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)


@dataclass
class SpanNode:
    """A span record plus its reconstructed children."""

    record: SpanRecord
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.record.name

    @property
    def duration(self) -> float:
        return self.record.duration

    @property
    def self_time(self) -> float:
        """Duration not covered by child spans (clamped at zero)."""
        return max(
            0.0, self.duration - sum(c.duration for c in self.children)
        )

    def walk(self) -> Iterable["SpanNode"]:
        """Depth-first over this subtree, parents before children."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))


# -- ingestion -------------------------------------------------------------

def spans_from_events(events: Iterable[Any]) -> List[SpanRecord]:
    """Span records from in-memory bus events (``event.name == "span"``)."""
    out: List[SpanRecord] = []
    for e in events:
        if e.name != "span":
            continue
        f = e.fields
        out.append(SpanRecord(
            name=f["name"],
            span_id=f["id"],
            parent_id=f.get("parent"),
            start=f["start"],
            end=e.time,
            fields={k: v for k, v in f.items() if k not in _STRUCTURAL},
        ))
    return out


def load_jsonl_spans(
    source: Union[str, IO[str]]
) -> Tuple[List[SpanRecord], str]:
    """Parse a JSONL stream into ``(span records, unit)``.

    Accepts both telemetry exports (sim minutes, unit ``"min"``) and
    profiler trace files (wall seconds, each record tagged
    ``"unit": "s"``).  Non-span events are skipped, so a full telemetry
    export works directly.
    """
    if hasattr(source, "read"):
        return _parse_jsonl(source)
    with open(source, "r", encoding="utf-8") as fh:
        return _parse_jsonl(fh)


def _parse_jsonl(fh: IO[str]) -> Tuple[List[SpanRecord], str]:
    records: List[SpanRecord] = []
    unit = "min"
    for lineno, line in enumerate(fh, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceAnalysisError(
                f"invalid JSON on line {lineno}: {exc}"
            ) from None
        if rec.get("event") != "span":
            continue
        try:
            records.append(SpanRecord(
                name=rec["name"],
                span_id=rec["id"],
                parent_id=rec.get("parent"),
                start=rec["start"],
                end=rec["t"],
                fields={
                    k: v for k, v in rec.items()
                    if k not in _STRUCTURAL + ("t", "seq", "event")
                },
            ))
        except KeyError as exc:
            raise TraceAnalysisError(
                f"span record on line {lineno} is missing field {exc}"
            ) from None
        if rec.get("unit") == "s":
            unit = "s"
    return records, unit


# -- forest reconstruction --------------------------------------------------

def build_forest(records: Sequence[SpanRecord]) -> List[SpanNode]:
    """Reconstruct span trees; roots keep stream order, children by start.

    A record whose parent id never appears (e.g. the parent span was
    still open when the export happened) becomes a root rather than
    being dropped.
    """
    nodes = {r.span_id: SpanNode(r) for r in records}
    roots: List[SpanNode] = []
    for r in records:
        node = nodes[r.span_id]
        parent = nodes.get(r.parent_id) if r.parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda n: (n.record.start, n.record.span_id))
    return roots


# -- per-name aggregation ----------------------------------------------------

@dataclass
class SpanStats:
    name: str
    count: int = 0
    total: float = 0.0
    self_total: float = 0.0
    max_duration: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def aggregate_spans(forest: Sequence[SpanNode]) -> Dict[str, SpanStats]:
    """Per-span-name totals over every node in the forest."""
    stats: Dict[str, SpanStats] = {}
    for root in forest:
        for node in root.walk():
            s = stats.get(node.name)
            if s is None:
                s = stats[node.name] = SpanStats(node.name)
            s.count += 1
            s.total += node.duration
            s.self_total += node.self_time
            s.max_duration = max(s.max_duration, node.duration)
    return dict(sorted(stats.items()))


def format_span_table(stats: Mapping[str, SpanStats], unit: str) -> str:
    """Aligned text table; durations in ms (wall) or minutes (sim)."""
    if not stats:
        return "(no spans)"
    if unit == "s":
        scale, dur_unit = 1e3, "ms"
    else:
        scale, dur_unit = 1.0, "min"
    width = max(max(len(n) for n in stats), len("span"))
    lines = [
        f"{'span':<{width}}     count  total {dur_unit:<3}   self {dur_unit:<3}"
        f"   mean {dur_unit:<3}    max {dur_unit:<3}"
    ]
    by_self = sorted(
        stats.values(), key=lambda s: (-s.self_total, s.name)
    )
    for s in by_self:
        lines.append(
            f"{s.name:<{width}}  {s.count:>8d} {s.total * scale:>10.3f} "
            f"{s.self_total * scale:>10.3f} {s.mean * scale:>10.3f} "
            f"{s.max_duration * scale:>10.3f}"
        )
    return "\n".join(lines)


# -- critical paths ---------------------------------------------------------

def critical_path(node: SpanNode) -> List[SpanNode]:
    """The root-to-leaf chain following the largest-duration child."""
    chain = [node]
    while node.children:
        node = max(
            node.children,
            key=lambda c: (c.duration, -c.record.start, -c.record.span_id),
        )
        chain.append(node)
    return chain


def _dominant_phase(root: SpanNode) -> Tuple[str, float]:
    """The descendant name with the largest self-time under ``root``."""
    best_name, best = root.name, -1.0
    for node in root.walk():
        if node.self_time > best:
            best_name, best = node.name, node.self_time
    return best_name, best


def phase_report(
    forest: Sequence[SpanNode], root_name: str = "request"
) -> str:
    """Which phase dominated each ``root_name`` tree, and by how much.

    Reports (a) the per-phase self-time breakdown across all matching
    trees and (b) the distribution of per-tree dominant phases.  When
    every span has zero duration (sim-time setup spans), falls back to
    span counts and says so.
    """
    trees = [r for r in forest if r.name == root_name]
    if not trees:
        names = sorted({r.name for r in forest})
        return (
            f"(no '{root_name}' spans in this trace; "
            f"roots present: {', '.join(names) if names else 'none'})"
        )
    stats = aggregate_spans(trees)
    grand_total = sum(s.self_total for s in stats.values())
    lines = [f"{len(trees)} '{root_name}' trees, "
             f"cumulative time {sum(t.duration for t in trees):g}"]
    width = max(len(n) for n in stats)
    if grand_total > 0:
        lines.append(f"  {'phase':<{width}}   self total      share      count")
        for s in sorted(stats.values(), key=lambda s: -s.self_total):
            lines.append(
                f"  {s.name:<{width}}  {s.self_total:>12.6f} "
                f"{s.self_total / grand_total:>9.1%} {s.count:>10d}"
            )
        dominants: Dict[str, int] = {}
        for t in trees:
            name, _ = _dominant_phase(t)
            dominants[name] = dominants.get(name, 0) + 1
        lines.append("  dominant phase per tree:")
        for name, n in sorted(dominants.items(), key=lambda kv: -kv[1]):
            lines.append(f"    {name:<{width}}  {n:>6d} ({n / len(trees):.1%})")
        # Root durations can all be zero (sim-time setup trees whose only
        # timed descendants are session lifetimes); fall back to the
        # heaviest subtree.
        longest = max(
            trees,
            key=lambda t: (t.duration, sum(n.duration for n in t.walk())),
        )
        chain = critical_path(longest)
        lines.append(
            "  critical path of slowest tree: "
            + " > ".join(n.name for n in chain)
            + f"  ({longest.duration:g})"
        )
    else:
        # Zero-duration trees: the synchronous setup pipeline in sim
        # time.  Counts still show the tree shape; wall attribution
        # needs a profile trace.
        lines.append("  (all spans have zero duration at this clock; "
                     "showing counts -- use `repro profile run` for "
                     "wall-clock attribution)")
        lines.append(f"  {'phase':<{width}}      count")
        for s in sorted(stats.values(), key=lambda s: (-s.count, s.name)):
            lines.append(f"  {s.name:<{width}}  {s.count:>9d}")
    return "\n".join(lines)


# -- flame output -----------------------------------------------------------

def folded_stacks(
    forest: Sequence[SpanNode], by_count: bool = False
) -> Dict[str, int]:
    """Semicolon-folded stacks with integer weights.

    Weights are per-stack *self* time scaled to an integer unit
    (microseconds for wall traces, micro-minutes for sim traces -- the
    consumer only cares about ratios).  With ``by_count=True`` (or
    automatically when every duration rounds to zero) each closed span
    weighs 1 instead.
    """
    def collect(weigh) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for root in forest:
            stack: List[str] = []

            def visit(node: SpanNode) -> None:
                stack.append(node.name)
                w = weigh(node)
                if w > 0:
                    key = ";".join(stack)
                    out[key] = out.get(key, 0) + w
                for child in node.children:
                    visit(child)
                stack.pop()

            visit(root)
        return out

    if not by_count:
        stacks = collect(lambda n: int(round(n.self_time * 1e6)))
        if stacks:
            return stacks
    return collect(lambda n: 1)


def render_folded(stacks: Mapping[str, int]) -> str:
    """The classic ``stack value`` lines flamegraph.pl/speedscope read."""
    return "\n".join(
        f"{stack} {value}" for stack, value in sorted(stacks.items())
    )


def render_forest(
    forest: Sequence[SpanNode], unit: str, limit: int = 200
) -> str:
    """Indented tree view with durations (offline twin of ``span_tree``)."""
    if not forest:
        return "(no spans)"
    scale, dur_unit = (1e3, "ms") if unit == "s" else (1.0, "min")
    lines: List[str] = []
    total = 0

    def visit(node: SpanNode, depth: int) -> None:
        nonlocal total
        total += 1
        if len(lines) >= limit:
            return
        extras = " ".join(f"{k}={v}" for k, v in node.record.fields.items())
        lines.append(
            f"{'  ' * depth}{node.name} "
            f"[{node.duration * scale:.3f} {dur_unit}]"
            + (f" {extras}" if extras else "")
        )
        for child in node.children:
            visit(child, depth + 1)

    for root in forest:
        visit(root, 0)
    if total > limit:
        lines.append(f"... ({total} spans total)")
    return "\n".join(lines)
