"""Windowed instruments: ring-buffer sliding windows over the registry.

The cumulative :class:`~repro.telemetry.metrics.Histogram` keeps only
its first ``reservoir_cap`` observations exactly, so on a long-running
server its percentiles freeze on ancient traffic.  This module fixes the
blind spot *without touching the deterministic export path*: a
:class:`WindowedMetrics` attaches to the registry as a **tap** (see
:meth:`MetricsRegistry.attach_tap`) and mirrors every counter increment
and histogram observation into a ring of time buckets.  Queries then
report *rolling* rate / mean / p50 / p95 / p99 over the last ``width``
clock units only.

Two invariants keep seeded runs byte-identical with the windowed layer
on or off (the differential test in
``tests/telemetry/test_windows.py``):

* the tap never emits bus events, never mutates an instrument, and never
  reads the wall clock unless the *series itself* is declared
  wall-clocked (``wall=True`` -- e.g. serving-side latency feeds);
* bucketing is a pure function of the clock the window was built with
  (the simulator clock by default), so two identical runs fill identical
  buckets.

The unit of ``width``/``step`` is whatever the clock returns -- sim
minutes for the default simulator clock, seconds for a wall clock.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

__all__ = ["WindowConfig", "SlidingWindow", "WindowedMetrics"]


class WindowConfig:
    """Shape of every window one :class:`WindowedMetrics` maintains."""

    __slots__ = ("width", "step", "sample_cap")

    def __init__(
        self, width: float = 5.0, step: float = 0.25, sample_cap: int = 512
    ) -> None:
        if width <= 0 or step <= 0:
            raise ValueError("window width and step must be positive")
        if step > width:
            raise ValueError("window step must not exceed the width")
        if sample_cap < 1:
            raise ValueError("sample_cap must be positive")
        self.width = float(width)
        self.step = float(step)
        self.sample_cap = sample_cap

    @property
    def n_buckets(self) -> int:
        return max(1, round(self.width / self.step))


class _Bucket:
    """One ring slot: aggregates plus a bounded sample for percentiles."""

    __slots__ = ("bucket_id", "count", "total", "samples")

    def __init__(self) -> None:
        self.bucket_id = -1
        self.count = 0
        self.total = 0.0
        self.samples: List[float] = []

    def reset(self, bucket_id: int) -> None:
        self.bucket_id = bucket_id
        self.count = 0
        self.total = 0.0
        self.samples.clear()


class SlidingWindow:
    """A ring of time buckets over one metric series.

    ``observe(now, value)`` files the value under the bucket covering
    ``now``; slots are recycled lazily, so arbitrary clock jumps cost
    O(1).  Queries merge the slots still inside ``[now - width, now]``.
    """

    __slots__ = (
        "name", "kind", "wall", "config", "_buckets", "_first_t",
        "_bucket_cache",
    )

    def __init__(
        self,
        name: str,
        kind: str = "histogram",
        wall: bool = False,
        config: Optional[WindowConfig] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        #: True for series fed from wall-clock measurements; exposition
        #: labels them so deterministic consumers can filter them out.
        self.wall = wall
        self.config = config or WindowConfig()
        self._buckets = [_Bucket() for _ in range(self.config.n_buckets)]
        self._first_t: Optional[float] = None
        #: Last slot the tap resolved (validated by id before reuse).
        self._bucket_cache: Optional[_Bucket] = None

    def _slot(self, now: float) -> _Bucket:
        bucket_id = int(now // self.config.step)
        bucket = self._buckets[bucket_id % len(self._buckets)]
        if bucket.bucket_id != bucket_id:
            bucket.reset(bucket_id)
        return bucket

    def observe(self, now: float, value: float) -> None:
        if self._first_t is None or now < self._first_t:
            self._first_t = now
        bucket = self._slot(now)
        bucket.count += 1
        bucket.total += value
        if self.kind != "counter" and len(bucket.samples) < self.config.sample_cap:
            # Counter windows keep count/total only; percentiles over
            # bare increments carry no signal (see ``record``).
            bucket.samples.append(value)

    def _live(self, now: float, width: Optional[float]) -> List[_Bucket]:
        """Slots whose interval intersects ``[now - width, now]``."""
        span = self.config.width if width is None else min(width, self.config.width)
        newest = int(now // self.config.step)
        oldest = int((now - span) // self.config.step) + 1
        return [
            b for b in self._buckets
            if oldest <= b.bucket_id <= newest and b.count
        ]

    def stats(self, now: float, width: Optional[float] = None) -> Dict[str, float]:
        """Rolling aggregates over the last ``width`` clock units.

        Returns count / rate (per clock unit) / mean / p50 / p95 / p99;
        all zeros when the window is empty.  The rate denominator is the
        effective covered span, so a window younger than ``width`` does
        not under-report.
        """
        span = self.config.width if width is None else min(width, self.config.width)
        live = self._live(now, span)
        count = sum(b.count for b in live)
        if not count:
            return {"count": 0, "rate": 0.0, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        total = sum(b.total for b in live)
        covered = span
        if self._first_t is not None:
            covered = min(span, max(self.config.step, now - self._first_t))
        samples: List[float] = []
        for b in live:
            samples.extend(b.samples)
        samples.sort()

        def pct(q: float) -> float:
            if not samples:  # counter windows keep no percentile samples
                return 0.0
            rank = min(len(samples) - 1,
                       max(0, round(q / 100 * (len(samples) - 1))))
            return samples[rank]

        return {
            "count": count,
            "rate": count / covered,
            "mean": total / count,
            "p50": pct(50),
            "p95": pct(95),
            "p99": pct(99),
        }

    def count(self, now: float, width: Optional[float] = None) -> int:
        return sum(b.count for b in self._live(now, width))

    def rate(self, now: float, width: Optional[float] = None) -> float:
        """Observations per clock unit, without touching the samples.

        Same covered-span denominator as :meth:`stats`, but skips the
        percentile merge/sort -- the SLO engine's per-step ``rate``
        measurements stay O(buckets).
        """
        span = self.config.width if width is None else min(width, self.config.width)
        count = sum(b.count for b in self._live(now, span))
        if not count:
            return 0.0
        covered = span
        if self._first_t is not None:
            covered = min(span, max(self.config.step, now - self._first_t))
        return count / covered

    def total(self, now: float, width: Optional[float] = None) -> float:
        return sum(b.total for b in self._live(now, width))

    def percentile(
        self, now: float, q: float, width: Optional[float] = None
    ) -> float:
        samples: List[float] = []
        for b in self._live(now, width):
            samples.extend(b.samples)
        if not samples:
            return 0.0
        samples.sort()
        rank = min(len(samples) - 1,
                   max(0, round(q / 100 * (len(samples) - 1))))
        return samples[rank]


class WindowedMetrics:
    """Every catalogued counter/histogram, windowed, behind one clock.

    Registry-fed series appear automatically through :meth:`record` (the
    tap); derived series (request/denial tallies, wall latencies) are
    declared up front with :meth:`track` so their names are part of the
    telemetry catalog contract (TEL001 closes over literal ``track``
    sites).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        config: Optional[WindowConfig] = None,
    ) -> None:
        self.clock = clock
        self.config = config or WindowConfig()
        self._series: Dict[str, SlidingWindow] = {}
        #: Cumulative counter values at the last ``sample_counters``.
        self._counter_last: Dict[str, float] = {}

    # -- series management ---------------------------------------------------
    def track(
        self, name: str, kind: str = "histogram", wall: bool = False
    ) -> SlidingWindow:
        """Declare a derived series (idempotent; returns the window)."""
        window = self._series.get(name)
        if window is None:
            window = self._series[name] = SlidingWindow(
                name, kind=kind, wall=wall, config=self.config
            )
        return window

    def series(self, name: str) -> Optional[SlidingWindow]:
        return self._series.get(name)

    def names(self) -> List[str]:
        return sorted(self._series)

    # -- feeds ---------------------------------------------------------------
    def record(self, name: str, kind: str, value: float) -> None:
        """The registry tap: mirror one instrument update (sim clock).

        This runs on every counter increment and histogram observation
        in the grid (~dozens per serving request), so the bucket-filing
        logic of :meth:`SlidingWindow.observe` is inlined here -- the
        observability plane's overhead budget (<3% end-to-end, measured
        by the ``serving-slo`` perf scenario) is mostly this function.
        """
        if kind == "gauge":
            return  # gauges are last-write-wins; a window adds nothing
        window = self._series.get(name)
        if window is None:
            window = self._series[name] = SlidingWindow(
                name, kind=kind, config=self.config
            )
        now = self.clock()
        if window._first_t is None or now < window._first_t:
            window._first_t = now
        config = self.config
        bucket_id = int(now // config.step)
        bucket = window._bucket_cache
        if bucket is None or bucket.bucket_id != bucket_id:
            buckets = window._buckets
            bucket = buckets[bucket_id % len(buckets)]
            if bucket.bucket_id != bucket_id:
                bucket.reset(bucket_id)
            window._bucket_cache = bucket
        bucket.count += 1
        bucket.total += value
        if kind != "counter":
            # Counter windows carry count/total only: a percentile over
            # bare increments says nothing, and skipping the sample
            # append keeps the hot tap path lean.
            samples = bucket.samples
            if len(samples) < config.sample_cap:
                samples.append(value)

    def observe(self, name: str, value: float, now: Optional[float] = None) -> None:
        """Feed one declared (tracked) series directly."""
        window = self._series[name]
        window.observe(self.clock() if now is None else now, value)

    def sample_counters(
        self, values: Dict[str, float], now: Optional[float] = None
    ) -> None:
        """Delta-sample cumulative counter values into counter windows.

        The cheap complement of the per-observation tap: a counter's
        rolling rate needs only how much its cumulative value grew,
        so instead of mirroring every increment (the hottest instrument
        path -- dozens per serving request), the caller hands the
        current values once per window step and each counter's increase
        since the previous sample lands in the bucket covering ``now``.
        The first sample of a name is a baseline only (pre-attach
        totals never pollute the window).  ``count`` accrues the summed
        integer increase, ``total`` the exact one; sub-step timing
        inside a bucket is not preserved, which the bucketed window
        never resolved anyway.
        """
        t = self.clock() if now is None else now
        last = self._counter_last
        for name, value in values.items():
            prev = last.get(name)
            last[name] = value
            if prev is None or value <= prev:
                continue
            delta = value - prev
            window = self._series.get(name)
            if window is None:
                window = self._series[name] = SlidingWindow(
                    name, kind="counter", config=self.config
                )
            if window._first_t is None or t < window._first_t:
                window._first_t = t
            bucket = window._slot(t)
            bucket.count += int(delta) or 1
            bucket.total += delta

    # -- queries -------------------------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> Dict[str, Dict[str, Any]]:
        """``name -> {kind, wall, count, rate, mean, p50, p95, p99}``."""
        t = self.clock() if now is None else now
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._series):
            window = self._series[name]
            stats = window.stats(t)
            stats["kind"] = window.kind
            stats["wall"] = window.wall
            out[name] = stats
        return out

    def summary_table(self, now: Optional[float] = None) -> str:
        """The windowed series as an aligned text section."""
        if not self._series:
            return "(no windowed series)"
        t = self.clock() if now is None else now
        width = max(len(n) for n in self._series)
        header = (f"windowed (last {self.config.width:g})"
                  f"{'':<{max(0, width - 14)}}"
                  "count       rate        p50        p95        p99")
        lines = [header]
        for name in sorted(self._series):
            s = self._series[name].stats(t)
            lines.append(
                f"  {name:<{width}}  {s['count']:>8d} {s['rate']:>10.3f} "
                f"{s['p50']:>10.3f} {s['p95']:>10.3f} {s['p99']:>10.3f}"
            )
        return "\n".join(lines)
