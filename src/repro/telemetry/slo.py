"""The SLO engine: declared objectives evaluated as multi-window burn rates.

An :class:`Objective` states what "healthy" means for one windowed
series -- a floor (ψ must stay above 0.85) or a ceiling (denial rate
must stay below 0.25) -- and the :class:`SloEngine` turns the windowed
measurements into one of three states per objective:

``ok``
    Both evaluation windows are inside the objective.
``warn``
    The error budget is burning: the short window already violates the
    objective, or the long window has consumed more than
    ``warn_fraction`` of the budget.
``breach``
    Both the short *and* the long window violate the objective -- the
    classic multi-window burn-rate page condition (fast burn confirmed
    by sustained burn, so a single bad step cannot page).

State *transitions* are emitted as catalogued ``slo.state`` events on
the bus; steady states stay silent, so a healthy server adds nothing to
the stream.  Everything is driven by the window clock (sim time on the
serving plane), which keeps evaluation timing -- and therefore the
emitted transitions -- a pure function of the request trace.

The **burn rate** reported per window is the fraction of the error
budget consumed, normalized so 1.0 means "exactly at the objective":

* ``floor`` objectives (ψ): ``burn = (1 - value) / (1 - target)``;
* ``ceiling`` objectives (denial rate, latency p95): ``burn = value /
  target``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.bus import EventBus
from repro.telemetry.windows import WindowedMetrics

__all__ = ["Objective", "SloStatus", "SloEngine", "default_serving_objectives"]

#: Ordered severity; transitions are reported against this scale.
STATES = ("ok", "warn", "breach")


@dataclass(frozen=True)
class Objective:
    """One declared service-level objective over a windowed series."""

    #: Catalogued SLO name (``SLO_CATALOG`` in the telemetry catalog).
    name: str
    description: str
    #: ``"floor"`` (value must stay >= target) or ``"ceiling"`` (<=).
    kind: str
    target: float
    #: Windowed series the measurement reads (numerator for ratios).
    series: str
    #: ``"ratio"`` (count/denominator count), ``"rate"`` (count per
    #: clock unit) or a percentile (``"p50"``/``"p95"``/``"p99"``).
    stat: str
    #: Denominator series for ``stat="ratio"``.
    denominator: Optional[str] = None
    #: Fraction of the budget burned on the long window that arms warn.
    warn_fraction: float = 0.5
    #: With fewer than this many numerator observations in the long
    #: window the objective reports ``ok`` (no signal, no alarm).
    min_count: int = 5

    def __post_init__(self) -> None:
        if self.kind not in ("floor", "ceiling"):
            raise ValueError(f"objective kind must be floor/ceiling, got {self.kind!r}")
        if self.stat not in ("ratio", "rate", "p50", "p95", "p99"):
            raise ValueError(f"unknown objective stat {self.stat!r}")
        if self.stat == "ratio" and self.denominator is None:
            raise ValueError("ratio objectives need a denominator series")
        if self.kind == "floor" and not 0.0 <= self.target < 1.0 and self.stat == "ratio":
            raise ValueError("ratio floor target must be in [0, 1)")

    def burn(self, value: float) -> float:
        """Budget consumed by ``value``, normalized to 1.0 at the target."""
        if self.kind == "floor":
            budget = max(1e-12, 1.0 - self.target)
            return max(0.0, 1.0 - value) / budget
        return value / max(1e-12, self.target)


@dataclass
class SloStatus:
    """The engine's latest verdict on one objective."""

    objective: Objective
    state: str = "ok"
    value_long: float = 0.0
    value_short: float = 0.0
    burn_long: float = 0.0
    burn_short: float = 0.0
    count_long: int = 0
    #: Clock time of the last state *transition* (None = never left ok).
    since: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.objective.name,
            "description": self.objective.description,
            "kind": self.objective.kind,
            "stat": self.objective.stat,
            "series": self.objective.series,
            "target": self.objective.target,
            "state": self.state,
            "value_long": self.value_long,
            "value_short": self.value_short,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
            "count_long": self.count_long,
            "since": self.since,
        }


def default_serving_objectives(
    targets: Optional[Dict[str, float]] = None,
) -> Tuple[Objective, ...]:
    """The serving plane's stock objectives; ``targets`` overrides by name.

    Every name here must exist in ``SLO_CATALOG``
    (:mod:`repro.telemetry.catalog`); TEL001 holds the two in sync.
    """
    overrides = targets or {}

    def tgt(name: str, default: float) -> float:
        return float(overrides.get(name, default))

    return (
        Objective(
            name="slo.psi",
            description="rolling aggregation grade ψ (admitted/requests)",
            kind="floor",
            target=tgt("slo.psi", 0.85),
            series="serve.window.admits",
            stat="ratio",
            denominator="serve.window.requests",
        ),
        Objective(
            name="slo.setup_latency_p95",
            description="rolling p95 serve-side setup latency, wall µs",
            kind="ceiling",
            target=tgt("slo.setup_latency_p95", 50_000.0),
            series="serve.window.setup_latency_us",
            stat="p95",
        ),
        Objective(
            name="slo.denial_rate",
            description="rolling denied-compose fraction",
            kind="ceiling",
            target=tgt("slo.denial_rate", 0.25),
            series="serve.window.denials",
            stat="ratio",
            denominator="serve.window.requests",
        ),
        Objective(
            name="slo.fault_rate",
            description="rolling injected-fault rate per clock unit",
            kind="ceiling",
            target=tgt("slo.fault_rate", 2.0),
            series="serve.window.faults",
            stat="rate",
        ),
    )


class SloEngine:
    """Evaluates objectives over a :class:`WindowedMetrics` pair of windows."""

    def __init__(
        self,
        windows: WindowedMetrics,
        objectives: Tuple[Objective, ...],
        bus: Optional[EventBus] = None,
        short_fraction: float = 0.25,
    ) -> None:
        if not 0.0 < short_fraction <= 1.0:
            raise ValueError("short_fraction must be in (0, 1]")
        self.windows = windows
        self.objectives = tuple(objectives)
        self.bus = bus
        self.long_width = windows.config.width
        self.short_width = max(windows.config.step, self.long_width * short_fraction)
        self._statuses: Dict[str, SloStatus] = {
            o.name: SloStatus(o) for o in self.objectives
        }
        self._last_eval: Optional[float] = None
        self.n_evaluations = 0
        self.n_transitions = 0

    # -- measurement ---------------------------------------------------------
    def _measure(self, obj: Objective, now: float, width: float) -> Tuple[float, int]:
        window = self.windows.series(obj.series)
        if window is None:
            return 0.0, 0
        count = window.count(now, width)
        if obj.stat == "ratio":
            assert obj.denominator is not None
            denom_window = self.windows.series(obj.denominator)
            denom = denom_window.count(now, width) if denom_window else 0
            if denom == 0:
                return (1.0 if obj.kind == "floor" else 0.0), 0
            return count / denom, denom
        if obj.stat == "rate":
            return window.rate(now, width), count
        return window.percentile(now, int(obj.stat[1:]), width), count

    def _classify(self, obj: Objective, burn_long: float, burn_short: float,
                  count_long: int) -> str:
        if count_long < obj.min_count:
            return "ok"
        if burn_long >= 1.0 and burn_short >= 1.0:
            return "breach"
        if burn_short >= 1.0 or burn_long >= obj.warn_fraction:
            return "warn"
        return "ok"

    # -- evaluation ----------------------------------------------------------
    def evaluate(self, now: float) -> List[SloStatus]:
        """Re-measure every objective; emit ``slo.state`` on transitions."""
        self._last_eval = now
        self.n_evaluations += 1
        out: List[SloStatus] = []
        for obj in self.objectives:
            status = self._statuses[obj.name]
            value_long, count_long = self._measure(obj, now, self.long_width)
            value_short, _ = self._measure(obj, now, self.short_width)
            burn_long = obj.burn(value_long)
            burn_short = obj.burn(value_short)
            new_state = self._classify(obj, burn_long, burn_short, count_long)
            if new_state != status.state:
                self.n_transitions += 1
                status.since = now
                # Objectives over wall-fed series stay out of the event
                # stream: their transitions depend on wall-clock
                # measurements, and wall time must never reach the bus
                # (seeded exports are byte-deterministic).  They remain
                # fully visible through statuses()/as_dict().
                window = self.windows.series(obj.series)
                wall_fed = window.wall if window is not None else False
                if self.bus is not None and not wall_fed:
                    self.bus.emit(
                        "slo.state",
                        slo=obj.name,
                        state=new_state,
                        previous=status.state,
                        value=value_long,
                        burn=burn_long,
                        target=obj.target,
                    )
            status.state = new_state
            status.value_long = value_long
            status.value_short = value_short
            status.burn_long = burn_long
            status.burn_short = burn_short
            status.count_long = count_long
            out.append(status)
        return out

    def maybe_evaluate(self, now: float) -> None:
        """Evaluate at most once per window step (the tick-path entry)."""
        if self._last_eval is None or now - self._last_eval >= self.windows.config.step:
            self.evaluate(now)

    # -- views ---------------------------------------------------------------
    def statuses(self) -> List[SloStatus]:
        return [self._statuses[o.name] for o in self.objectives]

    def worst_state(self) -> str:
        rank = max(
            (STATES.index(s.state) for s in self._statuses.values()),
            default=0,
        )
        return STATES[rank]

    def as_dict(self, now: Optional[float] = None) -> Dict[str, Any]:
        if now is not None:
            self.maybe_evaluate(now)
        return {
            "state": self.worst_state(),
            "windows": {"long": self.long_width, "short": self.short_width},
            "evaluations": self.n_evaluations,
            "transitions": self.n_transitions,
            "objectives": [s.as_dict() for s in self.statuses()],
        }
