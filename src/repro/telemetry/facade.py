"""The :class:`Telemetry` facade: one handle bundling bus + metrics + spans.

The grid owns exactly one ``Telemetry`` (``grid.telemetry``).  It exists
in two modes:

* **enabled** (``GridConfig.telemetry=True``): the bus records events,
  the registry fills, the tracer emits spans, and every instrumented
  subsystem receives the handle.
* **disabled** (default): the bus is dispatch-only (so the metrics layer
  still consumes request/session events over it), the tracer is the
  shared no-op, and hot-path subsystems receive ``None`` -- their
  telemetry cost is one attribute check, same as the legacy tracer.

``export_jsonl``/``summary`` are the run-level outputs behind
``repro run --telemetry out.jsonl`` and ``repro telemetry summary``.
"""

from __future__ import annotations

from typing import IO, Callable, Optional, Union

from repro.telemetry.bus import EventBus
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import NULL_TRACER, NullTracer, SpanTracer, render_span_tree

__all__ = ["Telemetry"]


class Telemetry:
    """Event bus + metrics registry + span tracer behind one handle."""

    def __init__(
        self,
        clock: Callable[[], float],
        enabled: bool = True,
        capacity: Optional[int] = None,
    ) -> None:
        self.enabled = enabled
        self.bus = EventBus(clock, record=enabled, capacity=capacity)
        self.metrics = MetricsRegistry()
        self.tracer: Union[SpanTracer, NullTracer] = (
            SpanTracer(self.bus, clock) if enabled else NULL_TRACER
        )

    @classmethod
    def for_simulator(
        cls, sim, enabled: bool = True, capacity: Optional[int] = None
    ) -> "Telemetry":
        return cls(lambda: sim.now, enabled=enabled, capacity=capacity)

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A dispatch-only instance on a frozen clock (for tests/tools)."""
        return cls(lambda: 0.0, enabled=False)

    # -- outputs -----------------------------------------------------------
    def export_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write the retained event stream as JSONL; returns line count."""
        return self.bus.export_jsonl(destination)

    def span_tree(self, limit: int = 200) -> str:
        return render_span_tree(list(self.bus), limit=limit)

    def summary(self) -> str:
        """Event counts, the metrics registry and span wall totals."""
        lines = [f"telemetry: {self.bus.n_emitted} events emitted, "
                 f"{len(self.bus)} retained"]
        counts = self.bus.counts()
        if counts:
            lines.append("events")
            width = max(len(n) for n in counts)
            for name, count in sorted(counts.items()):
                lines.append(f"  {name:<{width}}  {count:>10d}")
        if not self.metrics.empty:
            lines.append(self.metrics.summary_table())
        wall = self.tracer.wall_table()
        if wall and not wall.startswith("("):
            lines.append(wall)
        return "\n".join(lines)
