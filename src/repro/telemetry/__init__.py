"""Runtime observability for the QSA stack.

Three cooperating pieces (see ``docs/architecture.md`` §Telemetry):

* :mod:`repro.telemetry.bus` -- the structured event bus, stamped with
  the simulator clock;
* :mod:`repro.telemetry.metrics` -- the counter/gauge/histogram
  registry;
* :mod:`repro.telemetry.spans` -- sim-time span tracing.

Post-hoc analysis rides on top:

* :mod:`repro.telemetry.analysis` -- span-tree reconstruction, critical
  paths and flame (folded-stack) export over exported streams;
* :mod:`repro.telemetry.profiling` -- wall-clock profiling of a run
  (kept out of the event stream to preserve seeded byte-determinism).

:class:`repro.telemetry.facade.Telemetry` bundles them; the catalog of
every emitted name lives in :mod:`repro.telemetry.catalog`.
"""

from repro.telemetry.analysis import (
    SpanNode,
    SpanRecord,
    aggregate_spans,
    build_forest,
    critical_path,
    folded_stacks,
    load_jsonl_spans,
    phase_report,
)
from repro.telemetry.bus import BusEvent, EventBus
from repro.telemetry.catalog import (
    EVENT_CATALOG,
    METRIC_CATALOG,
    SLO_CATALOG,
    SPAN_CATALOG,
    format_catalog,
)
from repro.telemetry.exposition import render_prometheus
from repro.telemetry.facade import Telemetry
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.profiling import ProfileReport, Profiler, profile_run
from repro.telemetry.slo import Objective, SloEngine, default_serving_objectives
from repro.telemetry.spans import NULL_TRACER, Span, SpanTracer, render_span_tree
from repro.telemetry.windows import SlidingWindow, WindowConfig, WindowedMetrics

__all__ = [
    "BusEvent",
    "EventBus",
    "Telemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "NULL_TRACER",
    "render_span_tree",
    "EVENT_CATALOG",
    "METRIC_CATALOG",
    "SPAN_CATALOG",
    "SLO_CATALOG",
    "format_catalog",
    "WindowConfig",
    "SlidingWindow",
    "WindowedMetrics",
    "Objective",
    "SloEngine",
    "default_serving_objectives",
    "render_prometheus",
    "SpanNode",
    "SpanRecord",
    "aggregate_spans",
    "build_forest",
    "critical_path",
    "folded_stacks",
    "load_jsonl_spans",
    "phase_report",
    "ProfileReport",
    "Profiler",
    "profile_run",
]
