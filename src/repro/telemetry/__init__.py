"""Runtime observability for the QSA stack.

Three cooperating pieces (see ``docs/architecture.md`` §Telemetry):

* :mod:`repro.telemetry.bus` -- the structured event bus, stamped with
  the simulator clock;
* :mod:`repro.telemetry.metrics` -- the counter/gauge/histogram
  registry;
* :mod:`repro.telemetry.spans` -- sim-time span tracing.

:class:`repro.telemetry.facade.Telemetry` bundles them; the catalog of
every emitted name lives in :mod:`repro.telemetry.catalog`.
"""

from repro.telemetry.bus import BusEvent, EventBus
from repro.telemetry.catalog import EVENT_CATALOG, METRIC_CATALOG, format_catalog
from repro.telemetry.facade import Telemetry
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import NULL_TRACER, Span, SpanTracer, render_span_tree

__all__ = [
    "BusEvent",
    "EventBus",
    "Telemetry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "NULL_TRACER",
    "render_span_tree",
    "EVENT_CATALOG",
    "METRIC_CATALOG",
    "format_catalog",
]
