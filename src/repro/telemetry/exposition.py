"""Prometheus text exposition (format 0.0.4) for the telemetry registry.

Renders the cumulative registry, the windowed series and the SLO states
as the plain-text format every Prometheus-compatible scraper ingests::

    # TYPE repro_lookup_count counter
    repro_lookup_count_total 1284
    repro_lookup_hops{quantile="0.95"} 6
    repro_window_rate{series="lookup.hops"} 12.5
    repro_slo_state{slo="slo.psi"} 0

Conventions:

* dotted names map to ``repro_``-prefixed snake case (``lookup.hops`` ->
  ``repro_lookup_hops``); counters gain the idiomatic ``_total`` suffix;
* cumulative histogram quantiles carry the reservoir caveat in their
  ``# HELP`` line -- they summarize the *first 10k* observations, the
  windowed series are the rolling view;
* windowed series fed from wall-clock measurements carry
  ``clock="wall"`` so deterministic consumers (and the stability test)
  can filter them; everything else is a pure function of (seed, trace);
* output ordering is fully sorted, making the rendering byte-stable for
  a seeded sim-time server.

``render_prometheus`` is transport-agnostic; the serving plane
content-negotiates it on ``GET /metrics`` (docs/observability.md).
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry

__all__ = ["CONTENT_TYPE", "prometheus_name", "render_prometheus"]

#: The content type Prometheus expects for the text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, prefix: str = "repro_") -> str:
    """A catalogued dotted name as a valid Prometheus metric name."""
    return prefix + _INVALID.sub("_", name)


def _fmt(value: Any) -> str:
    """A sample value in canonical text form (int-like floats stay short)."""
    number = float(value)
    if number.is_integer() and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(
    registry: MetricsRegistry,
    windows: Optional[Dict[str, Dict[str, Any]]] = None,
    slo: Optional[Dict[str, Any]] = None,
    include_wall: bool = True,
) -> str:
    """The whole observability surface as Prometheus text exposition.

    ``windows`` is a :meth:`WindowedMetrics.snapshot` mapping and ``slo``
    a :meth:`SloEngine.as_dict` document; both optional so a bare
    registry still renders.  ``include_wall=False`` drops the
    wall-clocked series entirely (byte-stable output for seeded runs).
    """
    lines: List[str] = []

    for name, value in registry.counters().items():
        metric = prometheus_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")
    for name, value in registry.gauges().items():
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, hist in registry.histograms().items():
        metric = prometheus_name(name)
        lines.append(
            f"# HELP {metric} cumulative summary "
            "(quantiles over the first 10k observations only)"
        )
        lines.append(f"# TYPE {metric} summary")
        for q in (50, 95, 99):
            lines.append(
                f'{metric}{{quantile="0.{q}"}} {_fmt(hist.percentile(q))}'
            )
        lines.append(f"{metric}_sum {_fmt(hist.total)}")
        lines.append(f"{metric}_count {_fmt(hist.count)}")

    if windows:
        stats = ("count", "rate", "mean", "p50", "p95", "p99")
        for stat in stats:
            metric = f"repro_window_{stat}"
            lines.append(f"# TYPE {metric} gauge")
            for name in sorted(windows):
                snap = windows[name]
                wall = bool(snap.get("wall"))
                if wall and not include_wall:
                    continue
                labels = f'series="{_escape(name)}"'
                if wall:
                    labels += ',clock="wall"'
                lines.append(f"{metric}{{{labels}}} {_fmt(snap[stat])}")

    if slo:
        state_code = {"ok": 0, "warn": 1, "breach": 2}

        def wall_fed(status: Dict[str, Any]) -> bool:
            series = status.get("series", "")
            return bool((windows or {}).get(series, {}).get("wall"))

        objectives = [
            s for s in slo.get("objectives", [])
            if include_wall or not wall_fed(s)
        ]
        def slo_labels(status: Dict[str, Any]) -> str:
            labels = f'slo="{_escape(status["slo"])}"'
            if wall_fed(status):
                labels += ',clock="wall"'
            return labels

        lines.append("# HELP repro_slo_state objective state "
                     "(0 ok, 1 warn, 2 breach)")
        lines.append("# TYPE repro_slo_state gauge")
        for status in objectives:
            lines.append(
                f"repro_slo_state{{{slo_labels(status)}}} "
                f"{state_code.get(status['state'], 0)}"
            )
        for metric, key in (
            ("repro_slo_target", "target"),
            ("repro_slo_value", "value_long"),
            ("repro_slo_burn_long", "burn_long"),
            ("repro_slo_burn_short", "burn_short"),
        ):
            lines.append(f"# TYPE {metric} gauge")
            for status in objectives:
                lines.append(
                    f"{metric}{{{slo_labels(status)}}} {_fmt(status[key])}"
                )

    return "\n".join(lines) + "\n"
