"""Wall-clock profiling: where a run spends *real* time.

The telemetry stream is deliberately wall-clock-free (seeded runs must
export byte-identical JSONL), so wall-time attribution lives here, fully
in-process:

* :class:`Profiler` rides :meth:`SpanTracer.add_wall_observer`: every
  span close hands it ``(span, wall_start, wall_end)``, from which it
  keeps (a) a wall-time mirror of the span forest and (b) a reservoir
  histogram of per-request setup latency (the wall duration of each
  ``request`` span) -- reusing the metrics registry's
  :class:`~repro.telemetry.metrics.Histogram`.
* :func:`profile_run` wraps one experiment with a profiler attached,
  optional :mod:`cProfile` integration (top-N cumulative report) and
  per-subsystem throughput counters (requests/sec, lookups/sec,
  probes/sec).

Because the profiler only *observes* span closes and never emits bus
events, draws RNG or advances the simulator, a profiled run's telemetry
export is byte-identical to an unprofiled one (tested in
``tests/telemetry/test_profiling.py``).
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry.analysis import (
    SpanRecord,
    aggregate_spans,
    build_forest,
    folded_stacks,
    format_span_table,
    phase_report,
    render_folded,
)
from repro.telemetry.metrics import Histogram

__all__ = ["Profiler", "ProfileReport", "profile_run"]


class Profiler:
    """Collects wall-clock span records and setup-latency samples."""

    def __init__(self, request_span: str = "request") -> None:
        self.request_span = request_span
        self.wall_spans: List[SpanRecord] = []
        #: Per-request wall setup latency, microseconds (reservoir kept
        #: in arrival order like every registry histogram).
        self.setup_latency_us = Histogram("request.setup_wall_us")
        self._t0: Optional[float] = None
        self._detach = None
        self._grid = None

    # -- wiring ------------------------------------------------------------
    def attach(self, grid) -> None:
        """Observe ``grid``'s span tracer (telemetry must be enabled)."""
        if not grid.telemetry.enabled:
            raise ValueError(
                "profiling needs telemetry spans; build the grid with "
                "GridConfig(telemetry=True) (profile_run does this for you)"
            )
        self._grid = grid
        self._t0 = time.perf_counter()
        self._detach = grid.telemetry.tracer.add_wall_observer(self._on_close)

    def detach(self) -> None:
        if self._detach is not None:
            self._detach()
            self._detach = None

    @property
    def grid(self):
        """The grid this profiler observed (``None`` before attach)."""
        return self._grid

    def _on_close(self, span, wall_start: float, wall_end: float) -> None:
        if span.detached:
            # Detached spans (session lifetimes) measure *sim* intervals;
            # their wall extent is just how long the run took to reach the
            # close, which would swamp the hot-path attribution.
            return
        t0 = self._t0 or 0.0
        self.wall_spans.append(SpanRecord(
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            start=wall_start - t0,
            end=wall_end - t0,
        ))
        if span.name == self.request_span:
            self.setup_latency_us.observe((wall_end - wall_start) * 1e6)

    # -- reporting ---------------------------------------------------------
    def report(
        self,
        wall_seconds: float,
        n_requests: int,
        cprofile_text: Optional[str] = None,
    ) -> "ProfileReport":
        grid = self._grid
        n_lookups = grid.ring.n_lookups if grid is not None else 0
        n_probes = grid.probing.probe_messages if grid is not None else 0
        wall = max(wall_seconds, 1e-9)
        return ProfileReport(
            wall_seconds=wall_seconds,
            n_requests=n_requests,
            throughput={
                "requests_per_sec": n_requests / wall,
                "lookups_per_sec": n_lookups / wall,
                "probes_per_sec": n_probes / wall,
            },
            setup_latency_us=self.setup_latency_us,
            wall_spans=list(self.wall_spans),
            cprofile_text=cprofile_text,
        )


@dataclass
class ProfileReport:
    """One profiled run: throughput, latency reservoir and wall spans."""

    wall_seconds: float
    n_requests: int
    throughput: Dict[str, float]
    setup_latency_us: Histogram
    wall_spans: List[SpanRecord] = field(default_factory=list)
    cprofile_text: Optional[str] = None

    def latency_percentiles(self) -> Dict[str, float]:
        h = self.setup_latency_us
        return {
            "count": float(h.count),
            "mean": h.mean,
            "p50": h.percentile(50),
            "p95": h.percentile(95),
            "p99": h.percentile(99),
            "max": h.max or 0.0,
        }

    def span_table(self) -> str:
        return format_span_table(
            aggregate_spans(build_forest(self.wall_spans)), unit="s"
        )

    def critical_path_report(self, root: Optional[str] = None) -> str:
        return phase_report(
            build_forest(self.wall_spans), root_name=root or "request"
        )

    def folded(self) -> str:
        return render_folded(folded_stacks(build_forest(self.wall_spans)))

    def export_trace_jsonl(self, destination) -> int:
        """Write the wall-span records in the span-event JSONL shape.

        Each line carries ``"unit": "s"`` so ``repro trace`` commands
        recognise wall seconds.  This is a *profile artifact*, distinct
        from the deterministic telemetry export.
        """
        import json

        def write(fh) -> int:
            n = 0
            for i, r in enumerate(self.wall_spans):
                fh.write(json.dumps({
                    "t": r.end, "seq": i, "event": "span", "name": r.name,
                    "id": r.span_id, "parent": r.parent_id,
                    "start": r.start, "unit": "s",
                }, sort_keys=True))
                fh.write("\n")
                n += 1
            return n

        if hasattr(destination, "write"):
            return write(destination)
        with open(destination, "w", encoding="utf-8") as fh:
            return write(fh)

    def render(self, top_spans: int = 0) -> str:
        """The human-facing profile summary the CLI prints."""
        p = self.latency_percentiles()
        lines = [
            f"wall clock: {self.wall_seconds:.2f}s over "
            f"{self.n_requests} requests",
            "throughput",
        ]
        for name, value in self.throughput.items():
            lines.append(f"  {name:<18}  {value:>12.1f}")
        lines.append(
            "request setup latency (wall µs): "
            f"n={int(p['count'])} mean={p['mean']:.0f} p50={p['p50']:.0f} "
            f"p95={p['p95']:.0f} p99={p['p99']:.0f} max={p['max']:.0f}"
        )
        lines.append("")
        lines.append(self.critical_path_report())
        lines.append("")
        lines.append(self.span_table())
        if self.cprofile_text:
            lines.append("")
            lines.append(self.cprofile_text.rstrip())
        return "\n".join(lines)


def profile_run(
    config,
    cprofile: bool = False,
    top: int = 25,
    trace_out: Optional[str] = None,
):
    """Run one experiment under wall-clock profiling.

    Returns ``(result, report)``.  Telemetry spans are forced on for the
    run (the stream itself stays seeded-deterministic); ``cprofile=True``
    additionally wraps the run in :mod:`cProfile` and attaches a top-N
    cumulative-time table to the report.
    """
    from dataclasses import replace

    from repro.experiments.runner import run_experiment

    if not config.grid.telemetry:
        config = replace(config, grid=replace(config.grid, telemetry=True))
    profiler = Profiler()
    cprofile_text = None
    if cprofile:
        import cProfile
        import pstats

        prof = cProfile.Profile()
        result = prof.runcall(run_experiment, config, profiler=profiler)
        buf = io.StringIO()
        stats = pstats.Stats(prof, stream=buf)
        stats.sort_stats("cumulative").print_stats(top)
        cprofile_text = _trim_cprofile(buf.getvalue(), top)
    else:
        result = run_experiment(config, profiler=profiler)
    report = profiler.report(
        wall_seconds=result.wall_seconds,
        n_requests=result.n_requests,
        cprofile_text=cprofile_text,
    )
    if trace_out is not None:
        report.export_trace_jsonl(trace_out)
    return result, report


def _trim_cprofile(text: str, top: int) -> str:
    """Keep the header + top rows of pstats output (it pads heavily)."""
    lines = [ln.rstrip() for ln in text.splitlines() if ln.strip()]
    return "\n".join(lines[: top + 6])
