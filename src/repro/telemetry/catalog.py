"""The event and metric catalog: every name the instrumentation emits.

Kept as data (not prose) so the CLI (``repro telemetry catalog``), the
docs and the tests all read the same source of truth.  When adding an
instrumentation site, register its names here -- the telemetry tests
assert that a traced run emits no unknown event names.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "EVENT_CATALOG",
    "METRIC_CATALOG",
    "SPAN_CATALOG",
    "SLO_CATALOG",
    "format_catalog",
]

#: event name -> (fields, description)
EVENT_CATALOG: Dict[str, tuple] = {
    "request.setup": (
        "request_id, peer, application, level, status, admitted, "
        "lookup_hops, random_fallbacks, arrival_time, duration",
        "setup pipeline finished for one user request (any outcome)",
    ),
    "session.resolved": (
        "session_id, request_id, state, reason",
        "an admitted session completed or failed (metrics-layer feed)",
    ),
    "qcs.composed": (
        "application, n_nodes, n_edges, score, hops",
        "QCS found a QoS-consistent shortest path",
    ),
    "qcs.failed": (
        "application, n_nodes, n_edges",
        "consistency graph has no path to the source layer",
    ),
    "selection.hop": (
        "selecting_peer, chosen, n_candidates, n_known, fallback, phi",
        "one hop of the Φ/uptime peer-selection walk",
    ),
    "probe.refresh": (
        "target, epoch",
        "a probing epoch snapshot was taken (one probe message)",
    ),
    "lookup.done": (
        "key, from_peer, hops, protocol",
        "one routed DHT lookup resolved",
    ),
    "session.admitted": (
        "session_id, request_id, peers, duration",
        "atomic admission reserved every resource/connection",
    ),
    "session.completed": (
        "session_id, request_id",
        "session ran to its scheduled end",
    ),
    "session.failed": (
        "session_id, request_id, reason",
        "session torn down before its end",
    ),
    "session.released": (
        "session_id, request_id, held_minutes",
        "client-initiated early teardown (serving-plane DELETE)",
    ),
    "serve.request": (
        "method, route, status",
        "the serving plane answered one HTTP API request",
    ),
    "recovery.repaired": (
        "session_id, dead_peer, latency",
        "runtime failure recovery replaced the departed peer",
    ),
    "recovery.failed": (
        "session_id, dead_peer",
        "repair attempt gave up; session failed",
    ),
    "churn.join": ("peer", "a peer arrived (topological variation)"),
    "churn.leave": ("peer", "a peer departed (topological variation)"),
    "fault.injected": (
        "kind, site [, kind-specific fields]",
        "the fault injector made one operation misbehave",
    ),
    "retry.attempt": (
        "site, attempt, delay [, site fields]",
        "a hardened consumer retried after an injected failure",
    ),
    "retry.exhausted": (
        "site, attempts [, site fields]",
        "a retry budget ran dry; the plain failure path follows",
    ),
    "slo.state": (
        "slo, state, previous, value, burn, target",
        "a service-level objective changed state (ok|warn|breach)",
    ),
    "span": (
        "name, id, parent, start [, site fields]",
        "a traced interval closed (see repro.telemetry.spans)",
    ),
}

#: metric name -> (kind, description)
METRIC_CATALOG: Dict[str, tuple] = {
    "qcs.compositions": ("counter", "QCS runs attempted"),
    "qcs.graph_edges": ("counter", "consistency edges built, cumulative"),
    "qcs.graph_nodes": ("counter", "consistency nodes built, cumulative"),
    "qcs.no_path": ("counter", "compositions with no consistent path"),
    "selection.steps": ("counter", "peer-selection hops executed"),
    "selection.random_fallback": ("counter", "hops that fell back to random"),
    "selection.no_candidate": ("counter", "hops where no peer qualified"),
    "probe.messages_sent": ("counter", "probe messages (epoch snapshots)"),
    "probe.resolution_messages": ("counter", "neighbor-resolution messages"),
    "probe.tables": ("gauge", "neighbor tables currently materialized"),
    "lookup.count": ("counter", "routed DHT lookups"),
    "lookup.hops": ("histogram", "application-level hops per lookup"),
    "cache.route.hits": ("counter", "ring lookups answered at the start node"),
    "cache.route.misses": ("counter", "ring lookups that walked the overlay"),
    "cache.record.hits": ("counter", "registry reads served from the record cache"),
    "cache.record.misses": ("counter", "registry reads that routed to the DHT"),
    "cache.qcs_edge.hits": ("counter", "QCS consistency edges reused across compositions"),
    "cache.qcs_edge.misses": ("counter", "QCS consistency edges computed fresh"),
    "cache.qcs_plan.hits": ("counter", "vectorized-QCS composition plans reused"),
    "cache.qcs_plan.misses": ("counter", "vectorized-QCS composition plans sliced fresh"),
    "discovery.routed": ("counter", "discoveries that paid a routed walk"),
    "discovery.cached": ("counter", "discoveries served from cache/dedupe"),
    "store.generation": ("gauge", "SoA peer-store membership generation"),
    "store.rows_recycled": ("gauge", "SoA peer-store rows reused after departures"),
    "session.admitted": ("counter", "sessions admitted"),
    "session.completed": ("counter", "sessions completed"),
    "session.failed": ("counter", "sessions failed"),
    "session.released": ("counter", "sessions released early by their owner"),
    "serve.requests": ("counter", "HTTP API requests served"),
    "session.admission_rejected": ("counter", "admissions denied (rolled back)"),
    "recovery.repaired": ("counter", "sessions repaired after a departure"),
    "recovery.failed": ("counter", "repair attempts that gave up"),
    "recovery.latency": ("histogram", "departure -> repair, sim minutes"),
    "churn.arrivals": ("counter", "peers that joined"),
    "churn.departures": ("counter", "peers that left"),
    "fault.injected": ("counter", "faults injected by the active plan"),
    "retry.attempts": ("counter", "backoff retries across hardened sites"),
    "retry.exhausted": ("counter", "retry budgets that ran dry"),
    # windowed series (kind "window") are derived rolling views fed by the
    # serving plane's observability layer, never cumulative instruments;
    # TEL001 closes them over the literal ``track(...)`` sites.
    "serve.window.requests": ("window", "compose requests, rolling window"),
    "serve.window.admits": ("window", "admitted composes, rolling window"),
    "serve.window.denials": ("window", "denied composes, rolling window"),
    "serve.window.faults": ("window", "injected faults, rolling window"),
    "serve.window.setup_latency_us": (
        "window",
        "serve-side setup wall latency (µs), rolling window",
    ),
}


#: span name -> description.  Span events all share the ``span`` entry of
#: EVENT_CATALOG; this indexes the *names* those events may carry, so the
#: linter (TEL001) can hold tracer call sites and catalog two-way
#: consistent just like plain events.
SPAN_CATALOG: Dict[str, str] = {
    "request": "one user request's whole setup pipeline",
    "qcs.compose": "QoS-consistent composition for one request",
    "qcs.graph_build": "consistency-graph construction inside qcs.compose",
    "qcs.solve": (
        "shortest-path sweep inside qcs.compose (kernel-neutral: the "
        "dp, dijkstra and vectorized kernels all emit this name so "
        "their telemetry exports stay byte-identical)"
    ),
    "lookup.candidates": "DHT candidate discovery for one request",
    "lookup.hosts": "DHT host-record fetches for the composed path",
    "selection": "the Φ/uptime peer-selection walk over all hops",
    "selection.hop": "one hop of the peer-selection walk",
    "admission": "atomic resource/connection admission",
    "probing.resolve": "neighbor resolution triggered by a request",
    "session": "an admitted session's admit -> resolution lifetime",
    "serve.request": (
        "one serving-plane request's whole handling, carrying the "
        "trace_id that correlates the serve -> aggregation -> "
        "composition -> probing span tree"
    ),
}


#: SLO name -> description.  Objectives declared in code
#: (``repro.telemetry.slo``) must use names registered here; the linter
#: (TEL001) holds ``Objective(name=...)`` sites and this catalog two-way
#: consistent, same as events and spans.
SLO_CATALOG: Dict[str, str] = {
    "slo.psi": "rolling aggregation grade ψ must stay above its floor",
    "slo.setup_latency_p95": "rolling p95 setup latency must stay under ceiling",
    "slo.denial_rate": "rolling denied-compose fraction must stay under ceiling",
    "slo.fault_rate": "rolling injected-fault rate must stay under ceiling",
}


def format_catalog() -> str:
    """Both catalogs as one aligned text table (the CLI's output)."""
    lines = ["events"]
    width = max(len(n) for n in EVENT_CATALOG)
    for name, (fields, desc) in EVENT_CATALOG.items():
        lines.append(f"  {name:<{width}}  {desc}")
        lines.append(f"  {'':<{width}}    fields: {fields}")
    lines.append("")
    lines.append("spans (names carried by `span` events)")
    width = max(len(n) for n in SPAN_CATALOG)
    for name, desc in SPAN_CATALOG.items():
        lines.append(f"  {name:<{width}}  {desc}")
    lines.append("")
    lines.append("metrics")
    width = max(len(n) for n in METRIC_CATALOG)
    for name, (kind, desc) in METRIC_CATALOG.items():
        lines.append(f"  {name:<{width}}  [{kind}] {desc}")
    lines.append("")
    lines.append("slos (objective names carried by `slo.state` events)")
    width = max(len(n) for n in SLO_CATALOG)
    for name, desc in SLO_CATALOG.items():
        lines.append(f"  {name:<{width}}  {desc}")
    return "\n".join(lines)
