"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure5`` / ``figure6`` / ``figure7`` / ``figure8``
    Regenerate one of the paper's result figures and print its
    table/series (same output as the benches, without pytest).
``run``
    One custom experiment: choose algorithm, rate, horizon, churn, seed.
    ``--telemetry PATH`` records the full telemetry stream and writes it
    as JSONL.  ``--faults PLAN.json`` runs under a fault-injection plan
    (see :mod:`repro.faults.plan` for the format) and prints the
    injection summary.
``telemetry``
    Work with the telemetry subsystem: ``catalog`` prints the event and
    metric catalogs, ``summary PATH`` summarizes an exported JSONL
    stream (event counts, ordering, and p50/p95/p99 for the histograms
    reconstructable from the stream).
``trace``
    Analyze the spans of an exported stream (telemetry JSONL or a
    profile trace): ``tree`` renders the span forest, ``critical-path``
    attributes time to pipeline phases, ``flame`` exports folded stacks
    (flamegraph.pl / speedscope compatible).
``profile``
    Run one experiment under wall-clock profiling: hot-path span
    attribution, throughput counters, optional cProfile top-N, optional
    wall-trace export for the ``trace`` commands.
``perf``
    The perf-regression harness: ``record`` runs named scenarios into a
    schema-validated ``BENCH_<n>.json``, ``compare`` diffs two documents
    and exits non-zero on regressions, ``scenarios`` lists what's
    available.
``lint``
    The determinism & invariant linter (see
    :mod:`repro.analysis`): AST rules DET001/DET002/DET003 (wall clock,
    un-streamed RNG, unordered iteration), TEL001 (two-way event/span
    catalog check) and CACHE001 (fast-path cache contract).  Exits
    non-zero on findings; ``--format json`` for machine consumption.
``serve``
    Run the grid as a long-lived QoS-composition service over HTTP
    (see :mod:`repro.serve` and docs/serving.md): ``POST /compose``,
    session inspection/teardown, ``/status``, ``/metrics``.
``loadgen``
    Drive a running server with the §4.1 workload over HTTP
    (open/closed loop) and report throughput + RTT percentiles.
``info``
    Package, capability and scale information (the same build
    descriptor ``GET /status`` serves).

Examples::

    python -m repro figure5 --rates 100 400 1000 --horizon 30
    python -m repro run --algorithm random --rate 200 --churn 50
    python -m repro run --rate 100 --telemetry events.jsonl
    python -m repro run --rate 100 --faults plan.json
    python -m repro telemetry summary events.jsonl
    python -m repro trace critical-path events.jsonl
    python -m repro profile run --rate 100 --cprofile --trace-out prof.jsonl
    python -m repro trace flame prof.jsonl --out prof.folded
    python -m repro perf record --out BENCH_1.json
    python -m repro perf compare BENCH_0.json BENCH_1.json
    python -m repro lint src tests
    python -m repro lint --select DET001 --format json src
    python -m repro serve --scenario baseline --port 8177 --telemetry serve.jsonl
    python -m repro loadgen --port 8177 -n 500 --concurrency 8
    REPRO_PAPER_SCALE=1 python -m repro figure7
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import figures
from repro.experiments.config import default_scale, is_paper_scale, scale_factor
from repro.experiments.reporting import banner, format_series_table, format_sweep_table
from repro.experiments.runner import run_experiment

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Scalable QoS-Aware Service Aggregation "
            "Model for Peer-to-Peer Computing Grids' (HPDC 2002)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    f5 = sub.add_parser("figure5", help="average ψ vs request rate")
    f5.add_argument("--rates", type=float, nargs="+",
                    default=[50, 100, 200, 400, 600, 800, 1000])
    f5.add_argument("--horizon", type=float, default=60.0)
    f5.add_argument("--seed", type=int, default=0)
    f5.add_argument("--plot", action="store_true",
                    help="render an ASCII chart as well")

    f6 = sub.add_parser("figure6", help="ψ fluctuation at 200 req/min")
    f6.add_argument("--rate", type=float, default=200.0)
    f6.add_argument("--horizon", type=float, default=100.0)
    f6.add_argument("--seed", type=int, default=0)
    f6.add_argument("--plot", action="store_true")

    f7 = sub.add_parser("figure7", help="average ψ vs churn rate")
    f7.add_argument("--churn-rates", type=float, nargs="+",
                    default=[0, 25, 50, 100, 150, 200])
    f7.add_argument("--rate", type=float, default=100.0)
    f7.add_argument("--horizon", type=float, default=60.0)
    f7.add_argument("--seed", type=int, default=0)
    f7.add_argument("--plot", action="store_true")

    f8 = sub.add_parser("figure8", help="ψ fluctuation under churn")
    f8.add_argument("--rate", type=float, default=100.0)
    f8.add_argument("--churn", type=float, default=100.0)
    f8.add_argument("--horizon", type=float, default=60.0)
    f8.add_argument("--seed", type=int, default=0)
    f8.add_argument("--plot", action="store_true")

    run = sub.add_parser("run", help="one custom experiment")
    run.add_argument("--algorithm", choices=("qsa", "random", "fixed"),
                     default="qsa")
    run.add_argument("--rate", type=float, default=100.0,
                     help="request rate, req/min in paper units")
    run.add_argument("--horizon", type=float, default=30.0)
    run.add_argument("--churn", type=float, default=0.0,
                     help="churn rate, peers/min in paper units")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--no-uptime-filter", action="store_true",
                     help="disable QSA's uptime term (ablation A1)")
    run.add_argument("--telemetry", metavar="PATH", default=None,
                     help="record full telemetry and export it as JSONL")
    run.add_argument("--faults", metavar="PLAN.json", default=None,
                     help="inject faults from a JSON fault plan")
    run.add_argument("--sanitize", metavar="PATH", default=None,
                     help="run under the determinism sanitizer and export "
                          "the draw/write ledger as JSONL")
    run.add_argument("--backend", choices=("soa", "object"), default=None,
                     help="peer-state backend (default: GridConfig default; "
                          "the backends are sanitize-ledger-identical)")

    tel = sub.add_parser("telemetry", help="telemetry catalog and tools")
    tel_sub = tel.add_subparsers(dest="telemetry_action", required=True)
    tel_sub.add_parser("catalog", help="print the event/metric catalogs")
    tel_summary = tel_sub.add_parser(
        "summary", help="summarize an exported JSONL event stream"
    )
    tel_summary.add_argument("path", help="JSONL file from --telemetry")

    trace = sub.add_parser("trace", help="span analytics over a JSONL stream")
    trace_sub = trace.add_subparsers(dest="trace_action", required=True)
    tr_tree = trace_sub.add_parser("tree", help="render the span forest")
    tr_tree.add_argument("path", help="telemetry JSONL or profile trace")
    tr_tree.add_argument("--limit", type=int, default=200,
                         help="max lines to print")
    tr_cp = trace_sub.add_parser(
        "critical-path",
        help="per-phase time attribution and dominant phases",
    )
    tr_cp.add_argument("path", help="telemetry JSONL or profile trace")
    tr_cp.add_argument("--root", default="request",
                       help="root span name to analyze (default: request)")
    tr_flame = trace_sub.add_parser(
        "flame", help="folded-stack output (flamegraph.pl / speedscope)"
    )
    tr_flame.add_argument("path", help="telemetry JSONL or profile trace")
    tr_flame.add_argument("--out", default=None,
                          help="write folded stacks here (default: stdout)")
    tr_flame.add_argument("--counts", action="store_true",
                          help="weight stacks by span count, not self time")
    tr_req = trace_sub.add_parser(
        "request",
        help="fetch one request's correlated span tree from a live "
             "server by trace id",
    )
    tr_req.add_argument("trace_id", help="trace id (x-repro-trace header / "
                                         "compose response)")
    tr_req.add_argument("--host", default="127.0.0.1")
    tr_req.add_argument("--port", type=int, default=8177)
    tr_req.add_argument("--json", action="store_true", dest="as_json",
                        help="print the raw span records as JSON")

    prof = sub.add_parser("profile", help="wall-clock profiling")
    prof_sub = prof.add_subparsers(dest="profile_action", required=True)
    prof_run = prof_sub.add_parser(
        "run", help="run one experiment under the profiler"
    )
    prof_run.add_argument("--algorithm", choices=("qsa", "random", "fixed"),
                          default="qsa")
    prof_run.add_argument("--rate", type=float, default=100.0,
                          help="request rate, req/min in paper units")
    prof_run.add_argument("--horizon", type=float, default=30.0)
    prof_run.add_argument("--churn", type=float, default=0.0,
                          help="churn rate, peers/min in paper units")
    prof_run.add_argument("--seed", type=int, default=0)
    prof_run.add_argument("--cprofile", action="store_true",
                          help="also run cProfile and print a top-N table")
    prof_run.add_argument("--top", type=int, default=25,
                          help="cProfile rows to keep (with --cprofile)")
    prof_run.add_argument("--trace-out", metavar="PATH", default=None,
                          help="export the wall-span trace as JSONL "
                               "(feed to `repro trace`)")

    perf = sub.add_parser("perf", help="perf-regression harness")
    perf_sub = perf.add_subparsers(dest="perf_action", required=True)
    perf_rec = perf_sub.add_parser(
        "record", help="run scenarios into a BENCH_<n>.json document"
    )
    perf_rec.add_argument("--scenarios", nargs="+", default=None,
                          metavar="NAME",
                          help="scenario names (default: baseline churn heavy)")
    perf_rec.add_argument("--seed", type=int, default=0)
    perf_rec.add_argument("--algorithm",
                          choices=("qsa", "random", "fixed"), default="qsa")
    perf_rec.add_argument("--out", default=None, metavar="PATH",
                          help="output path (default: next free "
                               "BENCH_<n>.json in the current directory)")
    perf_cmp = perf_sub.add_parser(
        "compare", help="diff two bench documents; non-zero on regression"
    )
    perf_cmp.add_argument("old", help="baseline BENCH json")
    perf_cmp.add_argument("new", help="candidate BENCH json")
    perf_cmp.add_argument("--threshold", type=float, default=0.25,
                          help="max tolerated throughput/latency drift "
                               "ratio (default 0.25)")
    perf_cmp.add_argument("--psi-tolerance", type=float, default=0.02,
                          help="max tolerated absolute ψ drop (default 0.02)")
    perf_cmp.add_argument("--warn-only", action="store_true",
                          help="report regressions but exit zero (CI smoke)")
    perf_sub.add_parser("scenarios", help="list the named scenarios")

    lint = sub.add_parser("lint", help="determinism & invariant linter")
    lint.add_argument("paths", nargs="*", default=["src", "tests"],
                      help="files/directories to scan (default: src tests)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      dest="output_format",
                      help="report format (default: text)")
    lint.add_argument("--select", nargs="+", default=None, metavar="RULE",
                      help="run only these rule ids")
    lint.add_argument("--disable", nargs="+", default=None, metavar="RULE",
                      help="skip these rule ids")
    lint.add_argument("--jobs", type=int, default=None,
                      help="worker processes (default: one per CPU)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")
    lint.add_argument("--whole-program", action="store_true",
                      help="arm the cross-module pass (DET004/SHARD001/"
                           "TEL002) and require '-- why' on pragmas")

    sanitize = sub.add_parser(
        "sanitize", help="determinism sanitizer ledger tools"
    )
    san_sub = sanitize.add_subparsers(dest="sanitize_action", required=True)
    san_cmp = san_sub.add_parser(
        "compare", help="diff two draw/write ledgers (exit 1 on divergence)"
    )
    san_cmp.add_argument("ledger_a", help="first sanitize JSONL ledger")
    san_cmp.add_argument("ledger_b", help="second sanitize JSONL ledger")
    san_over = san_sub.add_parser(
        "overhead", help="measure sanitizer overhead on the baseline scenario"
    )
    san_over.add_argument("--rate", type=float, default=100.0)
    san_over.add_argument("--horizon", type=float, default=20.0)
    san_over.add_argument("--seed", type=int, default=0)
    san_over.add_argument("--repeat", type=int, default=3,
                          help="runs per arm; the minimum wall time wins")

    from repro.serve.cli import (
        add_loadgen_arguments,
        add_serve_arguments,
        add_top_arguments,
    )

    serve = sub.add_parser(
        "serve", help="run the grid as a long-lived composition service"
    )
    add_serve_arguments(serve)
    loadgen = sub.add_parser(
        "loadgen", help="drive a running server with the §4.1 workload"
    )
    add_loadgen_arguments(loadgen)
    top = sub.add_parser(
        "top", help="live terminal view of a running server (windowed "
                    "rates, SLO states, worst traces)"
    )
    add_top_arguments(top)

    sub.add_parser("info", help="package, capability and scale information")
    return parser


def _plot_sweep(sweep, x_label: str, title: str) -> None:
    from repro.experiments.plotting import ascii_chart

    print()
    print(ascii_chart(
        {name: (sweep.x_values, ys) for name, ys in sweep.ratios.items()},
        y_range=(0.0, 1.0),
        x_label=x_label,
        title=title,
    ))


def _plot_series(series, title: str) -> None:
    from repro.experiments.plotting import ascii_chart

    print()
    print(ascii_chart(
        {name: (series.times, ys) for name, ys in series.ratios.items()},
        y_range=(0.0, 1.0),
        x_label="time (min)",
        title=title,
    ))


def _cmd_figure5(args) -> int:
    sweep = figures.figure5(tuple(args.rates), args.horizon, args.seed)
    print(banner("Figure 5 -- average ψ vs request rate"))
    print(format_sweep_table(sweep.x_label, sweep.x_values, sweep.ratios))
    if args.plot:
        _plot_sweep(sweep, "request rate (req/min)", "ψ vs request rate")
    return 0


def _cmd_figure6(args) -> int:
    series = figures.figure6(args.rate, args.horizon, seed=args.seed)
    print(banner(f"Figure 6 -- ψ fluctuation at {args.rate:g} req/min"))
    print(format_series_table("time (min)", series.times, series.ratios))
    print("overall: " + ", ".join(
        f"{a}={v:.3f}" for a, v in series.overall.items()))
    if args.plot:
        _plot_series(series, f"ψ fluctuation at {args.rate:g} req/min")
    return 0


def _cmd_figure7(args) -> int:
    sweep = figures.figure7(
        tuple(args.churn_rates), args.rate, args.horizon, args.seed
    )
    print(banner("Figure 7 -- average ψ vs topological variation rate"))
    print(format_sweep_table(sweep.x_label, sweep.x_values, sweep.ratios))
    if args.plot:
        _plot_sweep(sweep, "churn rate (peers/min)", "ψ vs churn")
    return 0


def _cmd_figure8(args) -> int:
    series = figures.figure8(args.rate, args.churn, args.horizon,
                             seed=args.seed)
    print(banner("Figure 8 -- ψ fluctuation under churn"))
    print(format_series_table("time (min)", series.times, series.ratios))
    print("overall: " + ", ".join(
        f"{a}={v:.3f}" for a, v in series.overall.items()))
    if args.plot:
        _plot_series(series, f"ψ under churn {args.churn:g} peers/min")
    return 0


def _cmd_run(args) -> int:
    config = default_scale(args.rate, args.horizon, args.churn, args.seed)
    options = {}
    if args.algorithm == "qsa" and args.no_uptime_filter:
        options["uptime_filter"] = False
    config = config.with_algorithm(args.algorithm, **options)
    if args.backend is not None:
        config = config.with_backend(args.backend)
    if args.faults is not None:
        from repro.faults.plan import FaultPlan

        try:
            plan = FaultPlan.load(args.faults)
        except OSError as exc:
            print(f"cannot read fault plan {args.faults}: {exc}",
                  file=sys.stderr)
            return 1
        except ValueError as exc:
            print(f"invalid fault plan {args.faults}: {exc}",
                  file=sys.stderr)
            return 1
        config = config.with_faults(plan)
        print(f"fault plan: {plan}")
    if args.telemetry is not None:
        # Fail fast on an unwritable path rather than after the run.
        try:
            with open(args.telemetry, "w"):
                pass
        except OSError as exc:
            print(f"cannot write telemetry to {args.telemetry}: {exc}",
                  file=sys.stderr)
            return 1
        config = config.with_telemetry(args.telemetry)
    if args.sanitize is not None:
        try:
            with open(args.sanitize, "w"):
                pass
        except OSError as exc:
            print(f"cannot write sanitize ledger to {args.sanitize}: {exc}",
                  file=sys.stderr)
            return 1
        config = config.with_sanitize(args.sanitize)
    result = run_experiment(config)
    print(result.summary())
    print(f"mean DHT lookup hops: {result.mean_lookup_hops:.2f}")
    print(f"probing overhead:     {result.probe_overhead:.2%}")
    n_disc = result.n_routed_discoveries + result.n_cached_discoveries
    if n_disc:
        hit_rate = result.n_cached_discoveries / n_disc
        print(f"discovery cache:      {result.n_cached_discoveries}/{n_disc} "
              f"hits ({hit_rate:.1%}), {result.n_routed_discoveries} routed")
    if result.n_arrivals or result.n_departures:
        print(f"churn events:         {result.n_arrivals} arrivals, "
              f"{result.n_departures} departures")
    print(f"wall clock:           {result.wall_seconds:.1f}s")
    if result.fault_summary is not None:
        print()
        print(result.fault_summary)
    if args.telemetry is not None:
        print(f"telemetry:            {result.n_telemetry_events} events "
              f"-> {args.telemetry}")
        print()
        print(result.telemetry_summary)
    if args.sanitize is not None:
        print(f"sanitize ledger:      {result.n_sanitize_records} records "
              f"-> {args.sanitize}")
    return 0


def _cmd_telemetry(args) -> int:
    if args.telemetry_action == "catalog":
        from repro.telemetry import format_catalog

        print(format_catalog())
        return 0
    # summary <path>
    import json

    from repro.telemetry.metrics import Histogram
    from repro.telemetry.windows import SlidingWindow

    counts: dict = {}
    t_min = t_max = None
    prev = None
    monotone = True
    n = 0
    # Histograms reconstructable from the stream itself; surfaced with
    # the same p50/p95/p99 columns the registry summary prints.  The
    # cumulative percentiles cover the first 10k observations only; the
    # windowed row next to each shows the *rolling* view over the last
    # window of the stream, so the two cannot be confused.
    hists = {
        "lookup.hops": Histogram("lookup.hops"),
        "recovery.latency": Histogram("recovery.latency"),
        "session.duration": Histogram("session.duration"),
    }
    windows = {name: SlidingWindow(name) for name in hists}
    try:
        stream = open(args.path)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 1

    def _observe(name: str, t: float, value: float) -> None:
        hists[name].observe(value)
        windows[name].observe(t, value)

    with stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                print(f"{args.path}: invalid JSON on line {lineno}: {exc}",
                      file=sys.stderr)
                return 1
            n += 1
            event = rec["event"]
            counts[event] = counts.get(event, 0) + 1
            t = rec["t"]
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
            if prev is not None and t < prev:
                monotone = False
            prev = t
            if event == "lookup.done" and "hops" in rec:
                _observe("lookup.hops", t, rec["hops"])
            elif event == "recovery.repaired" and "latency" in rec:
                _observe("recovery.latency", t, rec["latency"])
            elif event == "span" and rec.get("name") == "session":
                _observe("session.duration", t, t - rec.get("start", t))
    if n == 0:
        print(f"{args.path}: empty event stream")
        return 0
    print(f"{args.path}: {n} events, "
          f"t = [{t_min:g}, {t_max:g}] min, "
          f"timestamps {'monotone' if monotone else 'OUT OF ORDER'}")
    width = max(len(k) for k in counts)
    for name in sorted(counts):
        print(f"  {name:<{width}}  {counts[name]:>8d}")
    filled = {name: h for name, h in hists.items() if h.count}
    if filled:
        width = max(len(name) for name in filled)
        print("histograms"
              + " " * max(1, width - 4)
              + "count       mean        p50        p95        p99"
              + "   (percentiles: first 10k observations)")
        for name, h in sorted(filled.items()):
            print(f"  {name:<{width}}  {h.count:>8d} {h.mean:>10.3f} "
                  f"{h.percentile(50):>10.3f} {h.percentile(95):>10.3f} "
                  f"{h.percentile(99):>10.3f}")
        window_width = windows[next(iter(filled))].config.width
        print(f"windowed (last {window_width:g} min of the stream)")
        for name in sorted(filled):
            s = windows[name].stats(t_max)
            print(f"  {name:<{width}}  {s['count']:>8d} {s['mean']:>10.3f} "
                  f"{s['p50']:>10.3f} {s['p95']:>10.3f} "
                  f"{s['p99']:>10.3f}")
    return 0 if monotone else 1


def _cmd_trace(args) -> int:
    if args.trace_action == "request":
        from repro.serve.client import ServeApiError, ServeClient

        try:
            with ServeClient(args.host, args.port) as client:
                view = client.trace(args.trace_id)
        except ServeApiError as exc:
            print(f"repro trace request: {exc.message}", file=sys.stderr)
            return 1
        except (TimeoutError, OSError) as exc:
            print(f"repro trace request: cannot reach "
                  f"{args.host}:{args.port}: {exc}", file=sys.stderr)
            return 1
        if args.as_json:
            import json

            print(json.dumps(view, indent=2, sort_keys=True))
            return 0
        print(f"trace {view['trace_id']}: {view['n_spans']} spans")
        print(view["tree"])
        return 0

    from repro.telemetry.analysis import (
        TraceAnalysisError,
        build_forest,
        folded_stacks,
        load_jsonl_spans,
        phase_report,
        render_folded,
        render_forest,
    )

    try:
        records, unit = load_jsonl_spans(args.path)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    except TraceAnalysisError as exc:
        print(f"{args.path}: {exc}", file=sys.stderr)
        return 1
    if not records:
        print(f"{args.path}: no span events in this stream "
              "(was the run telemetry-enabled?)", file=sys.stderr)
        return 1
    forest = build_forest(records)
    if args.trace_action == "tree":
        print(render_forest(forest, unit, limit=args.limit))
        return 0
    if args.trace_action == "critical-path":
        unit_note = "wall seconds" if unit == "s" else "sim minutes"
        print(f"{args.path}: {len(records)} spans, durations in {unit_note}")
        print(phase_report(forest, root_name=args.root))
        return 0
    # flame
    stacks = folded_stacks(forest, by_count=args.counts)
    folded = render_folded(stacks)
    if args.out is not None:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(folded)
            fh.write("\n")
        print(f"{len(stacks)} stacks -> {args.out}")
    else:
        print(folded)
    return 0


def _cmd_profile(args) -> int:
    from repro.telemetry.profiling import profile_run

    config = default_scale(args.rate, args.horizon, args.churn, args.seed)
    config = config.with_algorithm(args.algorithm)
    result, report = profile_run(
        config,
        cprofile=args.cprofile,
        top=args.top,
        trace_out=args.trace_out,
    )
    print(result.summary())
    print()
    print(report.render())
    if args.trace_out is not None:
        print()
        print(f"wall-span trace: {len(report.wall_spans)} spans "
              f"-> {args.trace_out} (analyze with `repro trace`)")
    return 0


def _cmd_perf(args) -> int:
    from repro.perf import (
        SCENARIOS,
        compare_benches,
        load_bench,
        next_bench_path,
        record_bench,
        write_bench,
    )

    if args.perf_action == "scenarios":
        width = max(len(n) for n in SCENARIOS)
        for name, sc in sorted(SCENARIOS.items()):
            print(f"{name:<{width}}  {sc.description}")
        return 0
    if args.perf_action == "record":
        try:
            doc = record_bench(
                scenario_names=args.scenarios,
                seed=args.seed,
                algorithm=args.algorithm,
                progress=lambda msg: print(msg, file=sys.stderr),
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        out = args.out or next_bench_path(".")
        write_bench(doc, out)
        print(f"bench document -> {out}")
        for name, sc in doc["scenarios"].items():
            lat = sc["setup_latency_us"]
            print(f"  {name}: ψ={sc['psi']:.3f} "
                  f"{sc['throughput']['requests_per_sec']:.1f} req/s "
                  f"setup p95={lat['p95']:.0f}µs "
                  f"({sc['wall_seconds']:.2f}s wall)")
        return 0
    # compare <old> <new>
    try:
        old = load_bench(args.old)
        new = load_bench(args.new)
    except OSError as exc:
        print(f"cannot read bench document: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    comparison = compare_benches(
        old, new, threshold=args.threshold, psi_tolerance=args.psi_tolerance
    )
    print(f"comparing {args.old} (old) vs {args.new} (new), "
          f"threshold {args.threshold:.0%}")
    print(comparison.render())
    if not comparison.ok and not args.warn_only:
        return 1
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import all_rules, lint_paths

    if args.list_rules:
        rules = all_rules()
        width = max(len(r.id) for r in rules)
        for rule in rules:
            print(f"{rule.id:<{width}}  {rule.name}")
            print(f"{'':<{width}}  invariant: {rule.invariant}")
        return 0
    try:
        report = lint_paths(
            args.paths,
            select=args.select,
            disable=args.disable,
            jobs=args.jobs,
            whole_program=args.whole_program,
        )
    except KeyError as exc:
        print(str(exc.args[0]) if exc.args else str(exc), file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    return report.exit_code


def _cmd_sanitize(args) -> int:
    if args.sanitize_action == "compare":
        from repro.sim.sanitizer import compare_ledger_files

        try:
            verdict = compare_ledger_files(args.ledger_a, args.ledger_b)
        except OSError as exc:
            print(f"cannot read ledger: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"malformed ledger: {exc}", file=sys.stderr)
            return 2
        print(verdict.render())
        return 0 if verdict.identical else 1

    # overhead: run the baseline scenario with the sanitizer off and on,
    # prove telemetry byte-identity, and report the wall-clock delta.
    import hashlib
    import os
    import tempfile
    import time as _time  # lint: disable=DET001 -- overhead measurement is wall-clock by definition

    def _arm(sanitize_path) -> tuple:
        config = default_scale(args.rate, args.horizon, 0.0, args.seed)
        with tempfile.NamedTemporaryFile(
            mode="w", suffix=".jsonl", delete=False
        ) as handle:
            tel_path = handle.name
        config = config.with_telemetry(tel_path)
        if sanitize_path is not None:
            config = config.with_sanitize(sanitize_path)
        best = float("inf")
        for _ in range(max(1, args.repeat)):
            t0 = _time.perf_counter()  # lint: disable=DET001 -- measuring wall overhead, not sim state
            run_experiment(config)
            elapsed = _time.perf_counter() - t0  # lint: disable=DET001 -- same measurement
            best = min(best, elapsed)
        with open(tel_path, "rb") as fh:
            digest = hashlib.blake2b(fh.read(), digest_size=16).hexdigest()
        os.unlink(tel_path)
        return best, digest

    import os

    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as handle:
        ledger_path = handle.name
    off_s, off_digest = _arm(None)
    on_s, on_digest = _arm(ledger_path)
    os.unlink(ledger_path)
    overhead = (on_s - off_s) / off_s if off_s else float("inf")
    print(f"baseline rate={args.rate:g} horizon={args.horizon:g} "
          f"seed={args.seed} (best of {max(1, args.repeat)})")
    print(f"sanitizer off: {off_s:.3f}s  telemetry blake2b {off_digest}")
    print(f"sanitizer on:  {on_s:.3f}s  telemetry blake2b {on_digest}")
    print(f"overhead:      {overhead:+.1%}")
    identical = off_digest == on_digest
    print(f"telemetry byte-identical: {'yes' if identical else 'NO'}")
    return 0 if identical else 1


def _cmd_info(args) -> int:
    # One source of truth with the serving plane: `repro info` prints the
    # same build/capability descriptor `GET /status` embeds.
    from repro.capabilities import build_descriptor

    desc = build_descriptor()
    print(f"{desc['name']} {desc['version']}  (api {desc['serve_api']})")
    print(f"paper: {desc['paper']}")
    print(f"algorithms:       {', '.join(desc['algorithms'])}")
    print(f"lookup protocols: {', '.join(desc['lookup_protocols'])}")
    print(f"QCS kernels:      {', '.join(desc['composition_kernels'])} "
          f"(default {desc['composition_kernel_default']})")
    print(f"peer state:       {', '.join(desc['peer_state_backends'])} "
          f"(default {desc['peer_state_backend_default']})")
    print(f"fast paths:       "
          f"{'on' if desc['fast_paths_default'] else 'off'} by default")
    print(f"fault kinds:      {', '.join(desc['fault_kinds'])}")
    print(f"scenarios:        {', '.join(desc['scenarios'])}")
    print(f"paper scale active: {is_paper_scale()} "
          f"(population factor {scale_factor():g})")
    cfg = default_scale(100, 60)
    print(f"default experiment grid: {cfg.grid.n_peers} peers, "
          f"probe budget M={cfg.grid.probing.budget}, "
          f"seed={cfg.grid.seed}")
    print("set REPRO_PAPER_SCALE=1 for the paper's 10^4-peer setup")
    return 0


_COMMANDS = {
    "figure5": _cmd_figure5,
    "figure6": _cmd_figure6,
    "figure7": _cmd_figure7,
    "figure8": _cmd_figure8,
    "run": _cmd_run,
    "telemetry": _cmd_telemetry,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "perf": _cmd_perf,
    "lint": _cmd_lint,
    "sanitize": _cmd_sanitize,
    "info": _cmd_info,
}


def _cmd_serve(args) -> int:
    from repro.serve.cli import cmd_serve

    return cmd_serve(args)


def _cmd_loadgen(args) -> int:
    from repro.serve.cli import cmd_loadgen

    return cmd_loadgen(args)


def _cmd_top(args) -> int:
    from repro.serve.cli import cmd_top

    return cmd_top(args)


_COMMANDS["serve"] = _cmd_serve
_COMMANDS["loadgen"] = _cmd_loadgen
_COMMANDS["top"] = _cmd_top


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:  # e.g. `repro trace flame ... | head`
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
