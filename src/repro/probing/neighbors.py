"""Per-peer neighbor tables with benefit ordering and the M budget.

The table keeps at most ``budget`` entries.  When over budget it evicts
the *least beneficial* entries first, where benefit follows the paper's
probing order ("any peer first probes its 1-hop direct neighbors, then
1-hop indirect neighbors, then 2-hop direct neighbors and so on"):

    priority = 2 * hop + (0 if direct else 1)

(lower is better).  Ties are broken by recency -- fresher entries win.
Entries are soft state: each carries an expiry time and expired entries
are treated as absent (and lazily pruned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["NeighborEntry", "NeighborTable"]


@dataclass
class NeighborEntry:
    """One (soft-state) neighbor relationship."""

    peer_id: int
    hop: int
    direct: bool
    expires_at: float

    @property
    def priority(self) -> int:
        """Benefit rank; lower probes first (paper §2.2 ordering)."""
        return 2 * self.hop + (0 if self.direct else 1)


class NeighborTable:
    """The neighbor set one peer maintains (bounded by the probe budget)."""

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = budget
        self._entries: Dict[int, NeighborEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._entries

    def entries(self) -> List[NeighborEntry]:
        return list(self._entries.values())

    def get(self, peer_id: int, now: float) -> Optional[NeighborEntry]:
        """The active entry for ``peer_id``, or ``None`` (expired counts
        as absent and is pruned)."""
        entry = self._entries.get(peer_id)
        if entry is None:
            return None
        if entry.expires_at < now:
            del self._entries[peer_id]
            return None
        return entry

    def resolve(
        self,
        neighbors: Iterable[Tuple[int, int, bool]],
        now: float,
        ttl: float,
    ) -> int:
        """Add/refresh ``(peer_id, hop, direct)`` relations; enforce budget.

        An existing entry is refreshed (expiry extended) and upgraded to
        the better (lower) priority of old vs. new.  Returns the number
        of entries *newly added* (refreshes are free under the budget).
        """
        added = 0
        expires = now + ttl
        for peer_id, hop, direct in neighbors:
            if hop < 1:
                raise ValueError(f"hop must be >= 1, got {hop}")
            entry = self._entries.get(peer_id)
            if entry is not None:
                entry.expires_at = max(entry.expires_at, expires)
                new = NeighborEntry(peer_id, hop, direct, entry.expires_at)
                if new.priority < entry.priority:
                    entry.hop, entry.direct = hop, direct
            else:
                self._entries[peer_id] = NeighborEntry(peer_id, hop, direct, expires)
                added += 1
        if len(self._entries) > self.budget:
            self._evict(now)
        return added

    def _evict(self, now: float) -> None:
        """Drop expired entries, then worst-priority ones, down to budget."""
        # Pass 1: expired entries go first.
        expired = [pid for pid, e in self._entries.items() if e.expires_at < now]
        for pid in expired:
            del self._entries[pid]
        overflow = len(self._entries) - self.budget
        if overflow <= 0:
            return
        # Pass 2: evict by (priority desc, expiry asc) -- least beneficial,
        # then stalest.
        victims = sorted(
            self._entries.values(),
            key=lambda e: (-e.priority, e.expires_at),
        )[:overflow]
        for e in victims:
            del self._entries[e.peer_id]

    def drop(self, peer_id: int) -> None:
        self._entries.pop(peer_id, None)

    def active_ids(self, now: float) -> List[int]:
        return [pid for pid, e in self._entries.items() if e.expires_at >= now]
