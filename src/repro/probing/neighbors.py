"""Per-peer neighbor tables with benefit ordering and the M budget.

The table keeps at most ``budget`` entries.  When over budget it evicts
the *least beneficial* entries first, where benefit follows the paper's
probing order ("any peer first probes its 1-hop direct neighbors, then
1-hop indirect neighbors, then 2-hop direct neighbors and so on"):

    priority = 2 * hop + (0 if direct else 1)

(lower is better).  Ties are broken by recency -- fresher entries win.
Entries are soft state: each carries an expiry time and expired entries
are treated as absent (and lazily pruned).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

__all__ = ["NeighborEntry", "NeighborTable"]


@dataclass(slots=True)
class NeighborEntry:
    """One (soft-state) neighbor relationship."""

    peer_id: int
    hop: int
    direct: bool
    expires_at: float

    @property
    def priority(self) -> int:
        """Benefit rank; lower probes first (paper §2.2 ordering)."""
        return 2 * self.hop + (0 if self.direct else 1)


class NeighborTable:
    """The neighbor set one peer maintains (bounded by the probe budget)."""

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = budget
        self._entries: Dict[int, NeighborEntry] = {}
        self._pid_cache: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._entries)

    def pid_array(self) -> np.ndarray:
        """Member ids as an int64 array, for vectorized membership tests.

        Rebuilt lazily after inserts (:meth:`resolve`); *deletions* do
        not invalidate it, so it may be a stale **superset** of the live
        keys -- callers prefiltering candidates with it must still treat
        a ``_entries`` miss as unknown.  (A superset can only add probe
        positions whose dict lookup then fails exactly like the
        unfiltered loop; a subset would silently hide members, so every
        insert path invalidates.)
        """
        cache = self._pid_cache
        if cache is None:
            cache = self._pid_cache = np.fromiter(
                self._entries, np.int64, len(self._entries)
            )
        return cache

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._entries

    def entries(self) -> List[NeighborEntry]:
        return list(self._entries.values())

    def get(self, peer_id: int, now: float) -> Optional[NeighborEntry]:
        """The active entry for ``peer_id``, or ``None`` (expired counts
        as absent and is pruned)."""
        entry = self._entries.get(peer_id)
        if entry is None:
            return None
        if entry.expires_at < now:
            del self._entries[peer_id]
            return None
        return entry

    def resolve(
        self,
        neighbors: Iterable[Tuple[int, int, bool]],
        now: float,
        ttl: float,
    ) -> int:
        """Add/refresh ``(peer_id, hop, direct)`` relations; enforce budget.

        An existing entry is refreshed (expiry extended) and upgraded to
        the better (lower) priority of old vs. new.  Returns the number
        of entries *newly added* (refreshes are free under the budget).
        """
        expires = now + ttl
        self._pid_cache = None  # inserts below may add members
        entries = self._entries
        # Pending inserts are staged (pid -> [priority, hop, direct]) so
        # entries doomed by the budget are never constructed: the staged
        # view plus the refreshed existing entries rank exactly like the
        # insert-everything-then-evict spelling, including its stable
        # (priority desc, expiry asc, insertion order) tie-breaks.
        staged: Dict[int, list] = {}
        for peer_id, hop, direct in neighbors:
            if hop < 1:
                raise ValueError(f"hop must be >= 1, got {hop}")
            priority = 2 * hop + (0 if direct else 1)
            entry = entries.get(peer_id)
            if entry is not None:
                if expires > entry.expires_at:
                    entry.expires_at = expires
                if priority < 2 * entry.hop + (0 if entry.direct else 1):
                    entry.hop, entry.direct = hop, direct
            else:
                pending = staged.get(peer_id)
                if pending is None:
                    staged[peer_id] = [priority, hop, direct]
                elif priority < pending[0]:
                    pending[0], pending[1], pending[2] = priority, hop, direct
        added = len(staged)
        if len(entries) + added <= self.budget:
            for peer_id, (_, hop, direct) in staged.items():
                entries[peer_id] = NeighborEntry(peer_id, hop, direct, expires)
            return added
        # Over budget: expired entries go first (staged ones are fresh by
        # construction), then rank the union by (priority desc, expiry
        # asc) with insertion order -- existing entries before staged
        # ones -- breaking ties, and keep the best ``budget``.
        for pid in [p for p, e in entries.items() if e.expires_at < now]:
            del entries[pid]
        overflow = len(entries) + added - self.budget
        if overflow <= 0:
            for peer_id, (_, hop, direct) in staged.items():
                entries[peer_id] = NeighborEntry(peer_id, hop, direct, expires)
            return added
        ranked = [
            (-2 * e.hop - (0 if e.direct else 1), e.expires_at, i, pid)
            for i, (pid, e) in enumerate(entries.items())
        ]
        base = len(ranked)
        ranked.extend(
            (-pending[0], expires, base + i, pid)
            for i, (pid, pending) in enumerate(staged.items())
        )
        ranked.sort()
        for _, _, i, pid in ranked[:overflow]:
            if i < base:
                del entries[pid]
            else:
                del staged[pid]
        for peer_id, (_, hop, direct) in staged.items():
            entries[peer_id] = NeighborEntry(peer_id, hop, direct, expires)
        return added

    def _evict(self, now: float) -> None:
        """Drop expired entries, then worst-priority ones, down to budget."""
        # Pass 1: expired entries go first.
        expired = [pid for pid, e in self._entries.items() if e.expires_at < now]
        for pid in expired:
            del self._entries[pid]
        overflow = len(self._entries) - self.budget
        if overflow <= 0:
            return
        # Pass 2: evict by (priority desc, expiry asc) -- least beneficial,
        # then stalest.  Sorting bare tuples (with the enumeration index
        # reproducing the stable sort's insertion-order tie-break) skips
        # the per-comparison key-lambda overhead of the obvious spelling.
        ranked = sorted(
            (-2 * e.hop - (0 if e.direct else 1), e.expires_at, i, pid)
            for i, (pid, e) in enumerate(self._entries.items())
        )
        for _, _, _, pid in ranked[:overflow]:
            del self._entries[pid]

    def drop(self, peer_id: int) -> None:
        self._entries.pop(peer_id, None)

    def active_ids(self, now: float) -> List[int]:
        return [pid for pid, e in self._entries.items() if e.expires_at >= now]
