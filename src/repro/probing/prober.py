"""The probing service: stale-by-one-epoch performance views.

Implements the :class:`~repro.core.selection.PerformanceView` protocol on
top of per-peer :class:`~repro.probing.neighbors.NeighborTable`\\ s.

Semantics
---------
* ``observe(observer, target)`` returns information only when ``target``
  is an active neighbor of ``observer`` -- the scalability constraint of
  §2.2 (no peer knows more than ``M`` others).
* The returned state is the target's state **as of the start of the
  current probing epoch** (``epoch = floor(now / period)``): a periodic
  prober refreshes once per period, so every observer within an epoch
  sees the same, possibly stale snapshot.  Snapshots are taken lazily on
  first access per epoch, making the simulation cost proportional to
  queries rather than ``peers x neighbors x epochs``.
* The available bandwidth β combines the snapshot's uplink residual with
  the (current) pair bottleneck and the observer's own downlink -- the
  observer always knows its own side precisely.

Overhead accounting
-------------------
``probe_messages`` counts one message per probe attempt (including
fault-triggered retries) and ``resolution_messages`` counts
neighbor-resolution notifications, so the benches can verify the
paper's "probing overhead within M/N = 1%" claim.

Fault tolerance
---------------
With a :class:`~repro.faults.injector.FaultInjector` attached, probe
messages may be lost or delayed.  An attempt whose injected delay
exceeds ``ProbingConfig.timeout`` counts as lost; lost attempts retry
with the capped exponential backoff of ``ProbingConfig.retry``.  When
the retry budget runs dry the prober degrades instead of failing: it
keeps serving the previous epoch's snapshot (marked stale) or, with no
snapshot to fall back on, reports the target as unknown -- which sends
the selector down its plain random-fallback path.  The backoff delays
are virtual (the setup exchange is synchronous); they are recorded on
``retry.attempt`` telemetry events rather than the sim clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.resources import ResourceVector
from repro.core.selection import PeerInfo
from repro.faults.backoff import RetryPolicy
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.probing.neighbors import NeighborTable
from repro.sim.engine import Simulator

__all__ = ["ProbingConfig", "ProbingService"]


@dataclass(frozen=True)
class ProbingConfig:
    """Probing parameters (defaults mirror §4.1: ``M = 100``)."""

    #: Max neighbors any peer maintains/probes (the paper's ``M``).
    budget: int = 100
    #: Probe period in minutes (information staleness bound).
    period: float = 1.0
    #: Soft-state TTL for neighbor entries, minutes.
    ttl: float = 10.0
    #: A probe attempt slower than this (minutes) counts as lost.
    timeout: float = 0.25
    #: Retry budget + backoff for lost/timed-out probes (only exercised
    #: when a fault injector is attached).
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("probe period must be positive")
        if self.ttl <= 0:
            raise ValueError("neighbor TTL must be positive")
        if self.timeout <= 0:
            raise ValueError("probe timeout must be positive")


#: Sentinel: the probe failed this epoch but the peer is not known dead.
_LOST = object()


@dataclass
class _Snapshot:
    epoch: int
    availability: np.ndarray
    avail_up: float
    uptime: float
    #: True when the refresh failed and these are a prior epoch's values.
    stale: bool = False


class ProbingService:
    """Bounded-neighborhood, epoch-snapshotted performance information."""

    #: Resolution fast path (synced with ``GridConfig.fast_paths`` by the
    #: grid): :meth:`resolve_selection_hops` skips re-resolving targets
    #: whose soft-state entries are still fresh and at least as good --
    #: the table refresh would be a pure no-op (``expires_at`` is already
    #: past ``now + ttl`` and the priority cannot upgrade), so table
    #: state and all downstream selection stay bit-identical; only the
    #: duplicate notification messages disappear.
    fast_paths = True

    def __init__(
        self,
        sim: Simulator,
        directory: PeerDirectory,
        network: NetworkModel,
        config: ProbingConfig | None = None,
        telemetry=None,
        injector=None,
    ) -> None:
        self.sim = sim
        self.directory = directory
        self.network = network
        self.config = config or ProbingConfig()
        #: Optional :class:`repro.telemetry.Telemetry` (probe fan-out and
        #: budget-usage instrumentation); ``None`` keeps observe() clean.
        self.telemetry = telemetry
        #: Optional :class:`repro.faults.injector.FaultInjector`; ``None``
        #: keeps the probe fast path loss-free and allocation-identical.
        self.injector = injector
        self._tables: Dict[int, NeighborTable] = {}
        self._snapshots: Dict[int, _Snapshot] = {}
        #: Struct-of-arrays backing (``None`` on the object directory).
        #: With a store AND no injector, epoch snapshots live in the
        #: store's ``snap_*`` arrays (refreshed per neighbor block)
        #: instead of per-peer ``_Snapshot`` objects; fault injection
        #: keeps the dict plane, whose ghost/degrade semantics are
        #: per-object by nature.
        self._store = getattr(directory, "store", None)
        self.probe_messages = 0
        self.resolution_messages = 0

    # -- neighbor resolution (paper §3.3) ------------------------------------
    def table(self, peer_id: int) -> NeighborTable:
        tbl = self._tables.get(peer_id)
        if tbl is None:
            tbl = NeighborTable(self.config.budget)
            self._tables[peer_id] = tbl
        return tbl

    def resolve(
        self,
        observer: int,
        neighbors: Iterable[Tuple[int, int, bool]],
        ) -> int:
        """Resolve ``(peer_id, hop, direct)`` relations at ``observer``."""
        triples = list(neighbors)
        added = self.table(observer).resolve(triples, self.sim.now, self.config.ttl)
        self.resolution_messages += len(triples)
        tel = self.telemetry
        if tel is not None:
            m = tel.metrics
            m.counter("probe.resolution_messages").inc(len(triples))
            m.gauge("probe.tables").set(len(self._tables))
        return added

    def selection_plan(
        self, hop_candidates: Sequence[Sequence[int]]
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Pre-flatten a selection walk's candidate lists, once.

        ``_select_walk`` calls :meth:`resolve_selection_hops` with the
        suffix ``hop_candidates[i:]`` at every hop; flattening the full
        list once and slicing ``(flat[off[i]:], hops[off[i]:] - i)`` per
        suffix spares the per-hop re-flatten.  Returns ``(flat, hops,
        offsets)`` or ``None`` when the fast path is off (the scalar
        path never uses a plan).
        """
        if not self.fast_paths:
            return None
        lens = [len(c) for c in hop_candidates]
        total = sum(lens)
        flat = np.fromiter(
            (pid for cands in hop_candidates for pid in cands),
            np.int64, total,
        )
        hops = np.repeat(np.arange(1, len(lens) + 1), lens)
        offsets = np.zeros(len(lens) + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        return flat, hops, offsets

    def resolve_selection_hops(
        self,
        observer: int,
        hop_candidates: Sequence[Sequence[int]],
        direct: bool,
        plan: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        """Resolve the candidate providers of the next hops at ``observer``.

        ``hop_candidates[i]`` are the peers able to provide the service
        ``i+1`` hops away from the observer (reverse flow direction).
        ``direct=True`` when the observer is the requesting host itself
        (its own application), ``False`` for peers along someone else's
        path (indirect neighbors).
        """
        if not self.fast_paths:
            triples: List[Tuple[int, int, bool]] = []
            for i, cands in enumerate(hop_candidates):
                hop = i + 1
                for pid in cands:
                    if pid != observer:
                        triples.append((pid, hop, direct))
            if triples:
                self.resolve(observer, triples)
            return
        # Fast path.  Two exact reductions before the table sees anything:
        # * targets whose existing soft state is fresh (expiry already
        #   past now + ttl) and at least as good are skipped -- resolving
        #   them again would change neither the entry nor its expiry;
        # * new targets are merged (best priority, first position) and
        #   only the top ``budget`` kept: a new entry outranked by
        #   ``budget`` same-call newcomers loses the table eviction no
        #   matter what the table holds, so it can never survive, and
        #   dropping it cannot change which other entries do.
        # Only the notification-message count differs from the plain path.
        #
        # Vectorized: the candidate flood is a numpy array; membership in
        # the (budget-bounded, so tiny) table is one ``isin`` against its
        # cached pid array, and the staged merge exploits that priority
        # ``2 * hop + bias`` grows monotonically with position -- the
        # first occurrence of a pid is always its best, so the scalar
        # "update on strictly lower priority" branch can never fire.
        if plan is not None:
            flat, hops_arr = plan
            if not len(flat):
                return
        else:
            lens = [len(c) for c in hop_candidates]
            total = sum(lens)
            if total == 0:
                return
            flat = np.fromiter(
                (pid for cands in hop_candidates for pid in cands),
                np.int64, total,
            )
            hops_arr = np.repeat(np.arange(1, len(lens) + 1), lens)
        keep = flat != observer
        if not keep.all():
            flat = flat[keep]
            hops_arr = hops_arr[keep]
            if not len(flat):
                return
        tbl = self._tables.get(observer)
        entries = tbl._entries if tbl is not None else None
        fresh_after = self.sim.now + self.config.ttl
        bias = 0 if direct else 1
        triples: List[Tuple[int, int, bool]] = []
        staged_mask = np.ones(len(flat), dtype=bool)
        if entries:
            # Broadcast equality beats np.isin's sort path at table sizes
            # bounded by the probe budget (tens of entries).
            member = (flat[:, None] == tbl.pid_array()).any(axis=1)
            for i in np.flatnonzero(member):
                pid = int(flat[i])
                entry = entries.get(pid)
                if entry is None:
                    continue  # stale superset hit: really unknown
                staged_mask[i] = False
                hop = int(hops_arr[i])
                if not (
                    entry.expires_at >= fresh_after
                    and 2 * entry.hop + (0 if entry.direct else 1)
                    <= 2 * hop + bias
                ):
                    triples.append((pid, hop, direct))
        s_pids = flat[staged_mask]
        if len(s_pids):
            s_hops = hops_arr[staged_mask]
            _, first_idx = np.unique(s_pids, return_index=True)
            first_idx.sort()  # first occurrence per pid, arrival order
            u_pids = s_pids[first_idx]
            u_hops = s_hops[first_idx]
            budget = self.config.budget
            if len(u_pids) > budget:
                # Keep the eviction's best ``budget`` newcomers: lowest
                # priority, latest position on ties (same-call entries
                # share an expiry, so later insertion wins the stable
                # tie-break) -- then back to arrival order.
                arrival = np.arange(len(u_pids))
                sel = np.lexsort((-arrival, 2 * u_hops + bias))[:budget]
                sel.sort()
                u_pids = u_pids[sel]
                u_hops = u_hops[sel]
            triples.extend(
                (int(p), int(h), direct) for p, h in zip(u_pids, u_hops)
            )
        if triples:
            self.resolve(observer, triples)

    def drop_peer(self, peer_id: int) -> None:
        """Forget a departed peer everywhere (lazy tables stay lazy)."""
        self._tables.pop(peer_id, None)
        inj = self.injector
        if inj is None or not inj.ghost_active(peer_id):
            self._snapshots.pop(peer_id, None)
        # A ghost-active peer keeps its last snapshot: the stale_state
        # fault makes observers serve it until the lingering soft state
        # expires.  Entries pointing *to* the departed peer are pruned
        # lazily on observe() (observers discover the death on probe).

    # -- the PerformanceView protocol -------------------------------------
    def _record_probe(self) -> None:
        self.probe_messages += 1
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("probe.messages_sent").inc()

    def _take_snapshot(self, peer, target: int, epoch: int) -> _Snapshot:
        snap = _Snapshot(
            epoch=epoch,
            availability=peer.available.values.copy(),
            avail_up=peer.avail_up,
            uptime=peer.uptime(self.sim.now),
        )
        self._snapshots[target] = snap
        tel = self.telemetry
        if tel is not None:
            tel.bus.emit("probe.refresh", target=target, epoch=epoch)
        return snap

    def _snapshot(self, target: int):
        """The current-epoch snapshot of ``target``.

        Returns ``None`` when the peer is dead, the sentinel ``_LOST``
        when the probe failed this epoch but the peer may still be
        alive, or a (possibly stale) :class:`_Snapshot` otherwise.
        """
        peer = self.directory.get(target)
        if peer is None or not peer.alive:
            return None
        epoch = int(self.sim.now / self.config.period)
        snap = self._snapshots.get(target)
        if snap is not None and snap.epoch == epoch:
            return snap
        inj = self.injector
        if inj is None:
            self._record_probe()
            return self._take_snapshot(peer, target, epoch)
        return self._probe_with_faults(peer, target, epoch, snap, inj)

    def _probe_with_faults(self, peer, target, epoch, prev, inj):
        """One refresh under fault injection: timeout, retry, degrade."""
        retry = self.config.retry
        attempts = 0
        while True:
            self._record_probe()
            lost = inj.probe_lost(target)
            if not lost:
                delay = inj.probe_delay(target)
                if delay <= self.config.timeout:
                    return self._take_snapshot(peer, target, epoch)
                # The reply missed the timeout window: count as a loss.
            attempts += 1
            if attempts > retry.max_retries:
                inj.retry_exhausted("probe", attempts=attempts, target=target)
                if prev is not None:
                    # Degrade to the previous epoch's values; marking the
                    # current epoch avoids re-burning the budget on every
                    # observe() within it.
                    prev.epoch = epoch
                    prev.stale = True
                    return prev
                return _LOST
            inj.retry_attempt(
                "probe", attempts, retry.delay(attempts, inj.rng),
                target=target,
            )

    def _row_snapshot(self, target: int, epoch: int) -> int:
        """Array-plane :meth:`_snapshot`: refresh ``target``'s store row.

        Returns the store row (refreshed to ``epoch`` if stale, with the
        same probe accounting and ``probe.refresh`` event the dict plane
        records) or ``-1`` when the peer is departed.  Only called with
        no injector attached, so a refresh never fails.
        """
        row = self.directory.row_of(target)
        if row < 0:
            return -1
        store = self._store
        if store.snap_epoch[row] != epoch:
            self._record_probe()
            store.snap_avail[row] = store.available[row]
            store.snap_up[row] = store.avail_up[row]
            uptime = self.sim.now - store.joined_at[row]
            store.snap_uptime[row] = uptime if uptime > 0.0 else 0.0
            store.snap_epoch[row] = epoch
            tel = self.telemetry
            if tel is not None:
                tel.bus.emit("probe.refresh", target=target, epoch=epoch)
        return row

    def observe(self, observer: int, target: int) -> Optional[PeerInfo]:
        """The observer's (stale, bounded) view of target; None if unknown."""
        tbl = self._tables.get(observer)
        if tbl is None:
            return None
        entry = tbl.get(target, self.sim.now)
        if entry is None:
            return None
        if self._store is not None and self.injector is None:
            return self._observe_row(observer, target, tbl)
        inj = self.injector
        if inj is not None and inj.partitioned(observer, target):
            # The probe cannot cross the cut; the entry stays (soft
            # state survives a partition, unlike a discovered death).
            inj.inject("partition", "probe", observer=observer, target=target)
            return None
        snap = self._snapshot(target)
        if snap is _LOST:
            return None  # probe failed; keep the entry, report unknown
        if snap is None and inj is not None and inj.ghost_active(target):
            # stale_state fault: the departure has not propagated yet, so
            # the observer still trusts the last snapshot it holds.
            snap = self._snapshots.get(target)
        if snap is None:
            tbl.drop(target)  # probe discovered the departure
            self._snapshots.pop(target, None)
            return None
        observer_peer = self.directory.get(observer)
        observer_down = (
            observer_peer.avail_down if observer_peer is not None else float("inf")
        )
        pair_avail = self.network.pair_capacity(target, observer) - (
            self.network.pair_reserved(target, observer)
        )
        beta = max(0.0, min(pair_avail, snap.avail_up, observer_down))
        # Fast-path ResourceVector construction: observe() runs for every
        # candidate of every hop, and the snapshot array is read-only by
        # contract, so skip the validating constructor and the copy.
        availability = ResourceVector.__new__(ResourceVector)
        availability.names = self.directory.resource_names
        availability.values = snap.availability
        return PeerInfo(
            peer_id=target,
            availability=availability,
            bandwidth_to_observer=beta,
            uptime=snap.uptime,
            latency=self.network.latency_ms(target, observer),
        )

    def _observe_row(self, observer: int, target: int, tbl) -> Optional[PeerInfo]:
        """Array-plane :meth:`observe` body (store present, no injector)."""
        epoch = int(self.sim.now / self.config.period)
        row = self._row_snapshot(target, epoch)
        if row < 0:
            tbl.drop(target)  # probe discovered the departure
            self._snapshots.pop(target, None)
            return None
        store = self._store
        orow = self.directory.row_of(observer)
        observer_down = (
            store.avail_down[orow] if orow >= 0 else float("inf")
        )
        capacity, latency = self.network.pair_static(target, observer)
        beta = capacity - self.network.pair_reserved(target, observer)
        if store.snap_up[row] < beta:
            beta = store.snap_up[row]
        if observer_down < beta:
            beta = observer_down
        if beta < 0.0:
            beta = 0.0
        availability = ResourceVector.__new__(ResourceVector)
        availability.names = self.directory.resource_names
        availability.values = store.snap_avail[row]
        return PeerInfo(
            peer_id=target,
            availability=availability,
            bandwidth_to_observer=beta,
            uptime=store.snap_uptime[row],
            latency=latency,
        )

    def observe_block(
        self, observer: int, targets: Sequence[int]
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Array view of :meth:`observe_many` for SoA directories.

        Returns ``(known, avail, betas, uptimes, latencies)`` where
        ``known`` is a bool mask over ``targets`` and the other arrays
        align with ``known``'s True positions (candidate order):
        ``avail`` is the ``(k, m)`` snapshot availability block, the rest
        are ``(k,)``.  Values are bitwise-identical to what the
        per-target :meth:`observe` chain produces -- batch refresh copies
        the same rows, and the β clamp chain uses the same elementwise
        minima.  ``None`` when the array plane is unavailable (object
        directory or fault injection); callers fall back to
        :meth:`observe_many`.
        """
        if self._store is None or self.injector is not None:
            return None
        store = self._store
        n = len(targets)
        known = np.zeros(n, dtype=bool)
        tbl = self._tables.get(observer)
        m = len(self.directory.resource_names)
        if tbl is None:
            empty = np.empty(0, dtype=np.float64)
            return known, np.empty((0, m)), empty, empty, empty
        now = self.sim.now
        entries = tbl._entries
        epoch = int(now / self.config.period)
        row_of = self.directory.row_of
        snap_epoch = store.snap_epoch
        pair_static = self.network.pair_static
        pair_reserved = self.network.pair_reserved
        rows: List[int] = []
        caps: List[float] = []
        lats: List[float] = []
        resv: List[float] = []
        stale: List[int] = []  # positions in `targets` needing a refresh
        stale_rows: set = set()
        # Budget-bounded tables are tiny next to the candidate flood, so
        # membership is one vectorized isin against the cached pid array
        # (a stale superset only adds positions whose dict probe fails,
        # exactly like the unfiltered scalar loop).
        if not entries:
            empty = np.empty(0, dtype=np.float64)
            return known, np.empty((0, m)), empty, empty, empty
        t_arr = np.fromiter(targets, np.int64, n)
        member = (t_arr[:, None] == tbl.pid_array()).any(axis=1)
        for i in np.flatnonzero(member):
            target = targets[i]
            entry = entries.get(target)
            if entry is None:
                continue
            if entry.expires_at < now:
                del entries[target]
                continue
            row = row_of(target)
            if row < 0:
                del entries[target]  # probe discovered the departure
                self._snapshots.pop(target, None)
                continue
            if snap_epoch[row] != epoch and row not in stale_rows:
                stale_rows.add(row)
                stale.append(i)
            known[i] = True
            rows.append(row)
            capacity, latency = pair_static(target, observer)
            caps.append(capacity)
            lats.append(latency)
            resv.append(pair_reserved(target, observer))
        k = len(rows)
        if k == 0:
            empty = np.empty(0, dtype=np.float64)
            return known, np.empty((0, m)), empty, empty, empty
        if stale:
            # Batch soft-state refresh of the stale rows: same values
            # (and the same per-target probe.refresh events, in candidate
            # order) as the scalar per-target refresh.
            srows = np.fromiter(
                (row_of(targets[i]) for i in stale), np.int64, len(stale)
            )
            store.snap_avail[srows] = store.available[srows]
            store.snap_up[srows] = store.avail_up[srows]
            uptimes = now - store.joined_at[srows]
            np.maximum(uptimes, 0.0, out=uptimes)
            store.snap_uptime[srows] = uptimes
            store.snap_epoch[srows] = epoch
            self.probe_messages += len(stale)
            tel = self.telemetry
            if tel is not None:
                tel.metrics.counter("probe.messages_sent").inc(len(stale))
                bus = tel.bus
                for i in stale:
                    bus.emit("probe.refresh", target=targets[i], epoch=epoch)
        krows = np.fromiter(rows, np.int64, k)
        betas = np.fromiter(caps, np.float64, k)
        betas -= np.fromiter(resv, np.float64, k)
        np.minimum(betas, store.snap_up[krows], out=betas)
        orow = row_of(observer)
        if orow >= 0:
            np.minimum(betas, store.avail_down[orow], out=betas)
        np.maximum(betas, 0.0, out=betas)
        return (
            known,
            store.snap_avail[krows],
            betas,
            store.snap_uptime[krows],
            np.fromiter(lats, np.float64, k),
        )

    def observe_many(
        self, observer: int, targets: Sequence[int]
    ) -> List[Optional[PeerInfo]]:
        """Batched :meth:`observe` over one observer's candidate list.

        Produces exactly ``[observe(observer, t) for t in targets]`` --
        selection's per-hop fan-out is the hottest call site, so the
        per-observer work (table lookup, downlink residual, resource
        names) is hoisted out of the loop.  Falls back to the scalar
        path under fault injection, where per-target injector draws must
        happen in the scalar order.
        """
        if self.injector is not None:
            return [self.observe(observer, t) for t in targets]
        if self._store is not None:
            # SoA plane: one observe_block call, re-materialized as
            # PeerInfo objects so the public contract is unchanged.
            known, avail, betas, uptimes, lats = self.observe_block(
                observer, targets
            )
            resource_names = self.directory.resource_names
            out: List[Optional[PeerInfo]] = []
            j = 0
            for i, target in enumerate(targets):
                if not known[i]:
                    out.append(None)
                    continue
                availability = ResourceVector.__new__(ResourceVector)
                availability.names = resource_names
                availability.values = avail[j]
                out.append(PeerInfo(
                    peer_id=target,
                    availability=availability,
                    bandwidth_to_observer=betas[j],
                    uptime=uptimes[j],
                    latency=lats[j],
                ))
                j += 1
            return out
        tbl = self._tables.get(observer)
        if tbl is None:
            return [None] * len(targets)
        now = self.sim.now
        entries = tbl._entries
        observer_peer = self.directory.get(observer)
        observer_down = (
            observer_peer.avail_down if observer_peer is not None else float("inf")
        )
        resource_names = self.directory.resource_names
        network = self.network
        snapshots = self._snapshots
        # Injector-free departures always pass through drop_peer(), which
        # pops the snapshot -- so an epoch-fresh snapshot implies a live
        # peer and the directory re-check can be skipped inline.
        epoch = int(now / self.config.period)
        out: List[Optional[PeerInfo]] = []
        for target in targets:
            entry = entries.get(target)
            if entry is None:
                out.append(None)
                continue
            if entry.expires_at < now:
                del entries[target]
                out.append(None)
                continue
            snap = snapshots.get(target)
            if snap is None or snap.epoch != epoch:
                snap = self._snapshot(target)
                if snap is None:
                    tbl.drop(target)  # probe discovered the departure
                    snapshots.pop(target, None)
                    out.append(None)
                    continue
            capacity, latency = network.pair_static(target, observer)
            beta = capacity - network.pair_reserved(target, observer)
            if snap.avail_up < beta:
                beta = snap.avail_up
            if observer_down < beta:
                beta = observer_down
            if beta < 0.0:
                beta = 0.0
            availability = ResourceVector.__new__(ResourceVector)
            availability.names = resource_names
            availability.values = snap.availability
            out.append(PeerInfo(
                peer_id=target,
                availability=availability,
                bandwidth_to_observer=beta,
                uptime=snap.uptime,
                latency=latency,
            ))
        return out

    # -- overhead metrics ------------------------------------------------------
    def overhead_ratio(self) -> float:
        """Mean neighbors probed per peer / population size.

        The paper controls this to ``M / N`` (= 1% at M=100, N=10^4).
        """
        n = self.directory.n_alive
        if n == 0 or not self._tables:
            return 0.0
        mean_table = sum(len(t) for t in self._tables.values()) / len(self._tables)
        return mean_table / n

    @property
    def n_tables(self) -> int:
        return len(self._tables)
