"""The probing service: stale-by-one-epoch performance views.

Implements the :class:`~repro.core.selection.PerformanceView` protocol on
top of per-peer :class:`~repro.probing.neighbors.NeighborTable`\\ s.

Semantics
---------
* ``observe(observer, target)`` returns information only when ``target``
  is an active neighbor of ``observer`` -- the scalability constraint of
  §2.2 (no peer knows more than ``M`` others).
* The returned state is the target's state **as of the start of the
  current probing epoch** (``epoch = floor(now / period)``): a periodic
  prober refreshes once per period, so every observer within an epoch
  sees the same, possibly stale snapshot.  Snapshots are taken lazily on
  first access per epoch, making the simulation cost proportional to
  queries rather than ``peers x neighbors x epochs``.
* The available bandwidth β combines the snapshot's uplink residual with
  the (current) pair bottleneck and the observer's own downlink -- the
  observer always knows its own side precisely.

Overhead accounting
-------------------
``probe_messages`` counts one message per (target, epoch) snapshot and
``resolution_messages`` counts neighbor-resolution notifications, so the
benches can verify the paper's "probing overhead within M/N = 1%" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.resources import ResourceVector
from repro.core.selection import PeerInfo
from repro.network.peer import PeerDirectory
from repro.network.topology import NetworkModel
from repro.probing.neighbors import NeighborTable
from repro.sim.engine import Simulator

__all__ = ["ProbingConfig", "ProbingService"]


@dataclass(frozen=True)
class ProbingConfig:
    """Probing parameters (defaults mirror §4.1: ``M = 100``)."""

    #: Max neighbors any peer maintains/probes (the paper's ``M``).
    budget: int = 100
    #: Probe period in minutes (information staleness bound).
    period: float = 1.0
    #: Soft-state TTL for neighbor entries, minutes.
    ttl: float = 10.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("probe period must be positive")
        if self.ttl <= 0:
            raise ValueError("neighbor TTL must be positive")


@dataclass
class _Snapshot:
    epoch: int
    availability: np.ndarray
    avail_up: float
    uptime: float


class ProbingService:
    """Bounded-neighborhood, epoch-snapshotted performance information."""

    def __init__(
        self,
        sim: Simulator,
        directory: PeerDirectory,
        network: NetworkModel,
        config: ProbingConfig | None = None,
        telemetry=None,
    ) -> None:
        self.sim = sim
        self.directory = directory
        self.network = network
        self.config = config or ProbingConfig()
        #: Optional :class:`repro.telemetry.Telemetry` (probe fan-out and
        #: budget-usage instrumentation); ``None`` keeps observe() clean.
        self.telemetry = telemetry
        self._tables: Dict[int, NeighborTable] = {}
        self._snapshots: Dict[int, _Snapshot] = {}
        self.probe_messages = 0
        self.resolution_messages = 0

    # -- neighbor resolution (paper §3.3) ------------------------------------
    def table(self, peer_id: int) -> NeighborTable:
        tbl = self._tables.get(peer_id)
        if tbl is None:
            tbl = NeighborTable(self.config.budget)
            self._tables[peer_id] = tbl
        return tbl

    def resolve(
        self,
        observer: int,
        neighbors: Iterable[Tuple[int, int, bool]],
        ) -> int:
        """Resolve ``(peer_id, hop, direct)`` relations at ``observer``."""
        triples = list(neighbors)
        added = self.table(observer).resolve(triples, self.sim.now, self.config.ttl)
        self.resolution_messages += len(triples)
        tel = self.telemetry
        if tel is not None:
            m = tel.metrics
            m.counter("probe.resolution_messages").inc(len(triples))
            m.gauge("probe.tables").set(len(self._tables))
        return added

    def resolve_selection_hops(
        self,
        observer: int,
        hop_candidates: Sequence[Sequence[int]],
        direct: bool,
    ) -> None:
        """Resolve the candidate providers of the next hops at ``observer``.

        ``hop_candidates[i]`` are the peers able to provide the service
        ``i+1`` hops away from the observer (reverse flow direction).
        ``direct=True`` when the observer is the requesting host itself
        (its own application), ``False`` for peers along someone else's
        path (indirect neighbors).
        """
        triples: List[Tuple[int, int, bool]] = []
        for i, cands in enumerate(hop_candidates):
            hop = i + 1
            for pid in cands:
                if pid != observer:
                    triples.append((pid, hop, direct))
        if triples:
            self.resolve(observer, triples)

    def drop_peer(self, peer_id: int) -> None:
        """Forget a departed peer everywhere (lazy tables stay lazy)."""
        self._tables.pop(peer_id, None)
        self._snapshots.pop(peer_id, None)
        # Entries pointing *to* the departed peer are pruned lazily on
        # observe() (the peer is gone; observers discover that on probe).

    # -- the PerformanceView protocol -------------------------------------
    def _snapshot(self, target: int) -> Optional[_Snapshot]:
        peer = self.directory.get(target)
        if peer is None or not peer.alive:
            return None
        epoch = int(self.sim.now / self.config.period)
        snap = self._snapshots.get(target)
        if snap is None or snap.epoch != epoch:
            snap = _Snapshot(
                epoch=epoch,
                availability=peer.available.values.copy(),
                avail_up=peer.avail_up,
                uptime=peer.uptime(self.sim.now),
            )
            self._snapshots[target] = snap
            self.probe_messages += 1
            tel = self.telemetry
            if tel is not None:
                tel.metrics.counter("probe.messages_sent").inc()
                tel.bus.emit("probe.refresh", target=target, epoch=epoch)
        return snap

    def observe(self, observer: int, target: int) -> Optional[PeerInfo]:
        """The observer's (stale, bounded) view of target; None if unknown."""
        tbl = self._tables.get(observer)
        if tbl is None:
            return None
        entry = tbl.get(target, self.sim.now)
        if entry is None:
            return None
        snap = self._snapshot(target)
        if snap is None:
            tbl.drop(target)  # probe discovered the departure
            return None
        observer_peer = self.directory.get(observer)
        observer_down = (
            observer_peer.avail_down if observer_peer is not None else float("inf")
        )
        pair_avail = self.network.pair_capacity(target, observer) - (
            self.network.pair_reserved(target, observer)
        )
        beta = max(0.0, min(pair_avail, snap.avail_up, observer_down))
        # Fast-path ResourceVector construction: observe() runs for every
        # candidate of every hop, and the snapshot array is read-only by
        # contract, so skip the validating constructor and the copy.
        availability = ResourceVector.__new__(ResourceVector)
        availability.names = self.directory.resource_names
        availability.values = snap.availability
        return PeerInfo(
            peer_id=target,
            availability=availability,
            bandwidth_to_observer=beta,
            uptime=snap.uptime,
            latency=self.network.latency_ms(target, observer),
        )

    # -- overhead metrics ------------------------------------------------------
    def overhead_ratio(self) -> float:
        """Mean neighbors probed per peer / population size.

        The paper controls this to ``M / N`` (= 1% at M=100, N=10^4).
        """
        n = self.directory.n_alive
        if n == 0 or not self._tables:
            return 0.0
        mean_table = sum(len(t) for t in self._tables.values()) / len(self._tables)
        return mean_table / n

    @property
    def n_tables(self) -> int:
        return len(self._tables)
