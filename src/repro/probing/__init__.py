"""Controlled, benefit-based probing and the neighbor resolution protocol.

Paper §2.2: each peer proactively probes a bounded set of "peer
neighbors" -- at most ``M`` peers -- prioritized by benefit: 1-hop direct
neighbors first, then 1-hop indirect, then 2-hop direct, and so on.  A
peer ``B`` is a *direct* ``i``-hop neighbor of ``A`` when the service
``B`` provides is the ``i``-th hop (counted from ``A``, in the reverse
direction of the aggregation flow) of an application ``A`` itself needs;
*indirect* when the path belongs to someone else's aggregation that ``B``
participates in.

Paper §3.3 "dynamic neighbor resolution": neighbor lists are not static
-- after the service composer produces a path, the requesting host
resolves the candidate providers into its direct-neighbor list, and every
peer selected along the chain resolves the candidates of the *preceding*
services into its indirect-neighbor list.  Entries are soft state with a
TTL, refreshed while the service path stays in use.

Probed information is **stale by up to one probe period**: the
:class:`~repro.probing.prober.ProbingService` snapshots a target's state
at most once per probing epoch and serves every observer that epoch's
snapshot, which is exactly what a periodic prober would see, at O(queries)
simulation cost (DESIGN.md §4).
"""

from repro.probing.neighbors import NeighborEntry, NeighborTable
from repro.probing.prober import ProbingConfig, ProbingService

__all__ = ["NeighborEntry", "NeighborTable", "ProbingConfig", "ProbingService"]
