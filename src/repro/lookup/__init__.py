"""P2P lookup substrate: Chord DHT, flooding, and the service registry.

The paper treats discovery as a pluggable black box ("the P2P lookup
protocol, such as Chord [20] or CAN [16], is invoked to retrieve the
locations and QoS specifications of all candidate service instances").
We implement the box:

* :mod:`~repro.lookup.chord` -- a Chord ring: hashed identifier space,
  successor responsibility, per-node key storage with handoff on
  join/leave, and greedy finger routing with O(log N) hop counts.
* :mod:`~repro.lookup.can` -- a CAN: d-dimensional torus key space,
  zone splits/takeovers under churn, greedy coordinate routing with
  O(d N^(1/d)) hop counts.
* :mod:`~repro.lookup.flooding` -- a Gnutella-style TTL-bounded flooding
  overlay, the pre-DHT alternative, used by the lookup-cost comparison
  bench.
* :mod:`~repro.lookup.registry` -- the service registry layered on
  Chord: service-name records carrying candidate instance specs and
  instance records carrying hosting peer sets, maintained under churn.
"""

from repro.lookup.chord import ChordRing, ChordNode
from repro.lookup.can import CanNetwork, CanNode, Zone
from repro.lookup.flooding import FloodingOverlay, FloodResult
from repro.lookup.registry import DhtProtocol, ServiceRegistry

__all__ = [
    "CanNetwork",
    "CanNode",
    "ChordNode",
    "ChordRing",
    "DhtProtocol",
    "FloodResult",
    "FloodingOverlay",
    "ServiceRegistry",
    "Zone",
]
