"""Gnutella-style TTL-bounded flooding lookup (the pre-DHT baseline).

The paper motivates structured lookup (Chord/CAN) by the scalability
problems of flooding systems like Gnutella [1].  This module provides the
flooding alternative so the lookup-cost comparison can be *measured*
(``benchmarks/bench_chord_lookup.py``): an unstructured random-regular
overlay where a query spreads breadth-first to all neighbors until the
TTL expires, counting every forwarded message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Set, Tuple

import numpy as np

__all__ = ["FloodingOverlay", "FloodResult"]


@dataclass(frozen=True)
class FloodResult:
    """Outcome of one flood query."""

    found: Tuple[int, ...]   # peers holding the requested record
    messages: int            # total query messages forwarded
    rounds: int              # BFS depth actually explored


class FloodingOverlay:
    """An unstructured overlay with approximately uniform degree.

    Edges are built by giving every peer ``degree`` random links
    (deduplicated, undirected), the standard Gnutella-like topology
    approximation.
    """

    def __init__(
        self,
        peer_ids: Sequence[int],
        degree: int,
        rng: np.random.Generator,
    ) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        ids = list(peer_ids)
        if len(ids) < 2:
            raise ValueError("overlay needs at least two peers")
        self.degree = degree
        self.adj: Dict[int, Set[int]] = {pid: set() for pid in ids}
        n = len(ids)
        for i, pid in enumerate(ids):
            picks = rng.integers(0, n, size=degree)
            for j in picks:
                other = ids[int(j)]
                if other != pid:
                    self.adj[pid].add(other)
                    self.adj[other].add(pid)

    def add_peer(self, peer_id: int, rng: np.random.Generator) -> None:
        """A joining peer wires itself to ``degree`` random members."""
        if peer_id in self.adj:
            raise ValueError(f"peer {peer_id} already in overlay")
        members = list(self.adj)
        self.adj[peer_id] = set()
        picks = rng.choice(len(members), size=min(self.degree, len(members)),
                           replace=False)
        for j in picks:
            other = members[int(j)]
            self.adj[peer_id].add(other)
            self.adj[other].add(peer_id)

    def remove_peer(self, peer_id: int) -> None:
        for other in self.adj.pop(peer_id, set()):
            self.adj[other].discard(peer_id)

    def flood(
        self,
        start: int,
        has_record: Callable[[int], bool],
        ttl: int,
        stop_at: int | None = None,
        drop: Callable[[int, int], bool] | None = None,
    ) -> FloodResult:
        """BFS flood from ``start``; every forwarded edge costs a message.

        ``has_record(peer)`` tells whether a peer can answer the query.
        ``stop_at`` optionally ends the flood once that many providers
        have been found (pure Gnutella floods to full TTL regardless; the
        early-stop variant models response-bounded querying).
        ``drop(src, dst)`` optionally loses individual query copies in
        flight (fault injection): a dropped copy is still a sent message,
        but the receiver never processes it -- it may still be reached
        through another edge.
        """
        if start not in self.adj:
            raise KeyError(f"peer {start} not in overlay")
        found: List[int] = []
        if has_record(start):
            found.append(start)
        visited = {start}
        frontier = [start]
        messages = 0
        rounds = 0
        for _ in range(ttl):
            if not frontier:
                break
            if stop_at is not None and len(found) >= stop_at:
                break
            rounds += 1
            nxt: List[int] = []
            for node in frontier:
                for nb in self.adj[node]:
                    messages += 1  # each forwarded copy is a message
                    if nb in visited:
                        continue
                    if drop is not None and drop(node, nb):
                        continue  # copy lost; nb stays reachable elsewhere
                    visited.add(nb)
                    if has_record(nb):
                        found.append(nb)
                    nxt.append(nb)
            frontier = nxt
        return FloodResult(tuple(found), messages, rounds)
