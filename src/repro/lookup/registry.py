"""The service registry layered on the Chord DHT.

Discovery is the first protocol step of on-demand composition (§3.2):
"the P2P lookup protocol ... is invoked to retrieve the locations (i.e.,
IP addresses) and QoS specifications (Qin, Qout, R) of all candidate
service instances, according to the abstract service path."

Records (all living in Chord node stores, re-homed automatically on
churn by the ring's key handoff):

* ``service:<name>``  -> tuple of candidate :class:`ServiceInstance`
  specs (the co-located QoS specifications of assumption 1, §3.1);
* ``instance:<id>``   -> frozenset of hosting peer ids (the locations).

Host sets change under churn; :meth:`ServiceRegistry.peer_departed` and
:meth:`ServiceRegistry.peer_joined` keep them in sync with the catalog's
ground truth while exercising real DHT update paths.

Fault tolerance
---------------
With a :class:`~repro.faults.injector.FaultInjector` attached
(:meth:`ServiceRegistry.configure_faults`), each routed query may fail
in flight.  The registry retries with capped exponential backoff,
re-routing around the hop that dropped the previous copy (retry with
exclusion -- each copy's fate is an independent draw, and each retry
re-pays the routing hops).  Budget exhaustion degrades to "no record
found", which the composition layer already treats as NO_CANDIDATES.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Protocol, Tuple

from repro.services.catalog import ServiceCatalog
from repro.services.model import ServiceInstance

__all__ = ["DhtProtocol", "ServiceRegistry"]


class DhtProtocol(Protocol):
    """What the registry needs from a lookup substrate.

    Satisfied by both :class:`~repro.lookup.chord.ChordRing` and
    :class:`~repro.lookup.can.CanNetwork` (the paper's "Chord or CAN").
    """

    def put(self, key: str, value: Any) -> None: ...
    def get(self, key: str, from_peer: int) -> Tuple[Any, int]: ...
    def lookup(self, key: str, from_peer: int) -> Tuple[Any, int]: ...
    def update(self, key: str, fn) -> Any: ...
    def join(self, peer_id: int): ...
    def leave(self, peer_id: int) -> None: ...
    def __contains__(self, peer_id: int) -> bool: ...


class ServiceRegistry:
    """Service and instance records on a DHT (Chord or CAN)."""

    SERVICE_PREFIX = "service:"
    INSTANCE_PREFIX = "instance:"

    def __init__(self, ring: DhtProtocol, catalog: ServiceCatalog) -> None:
        self.ring = ring
        self.catalog = catalog
        self.n_discoveries = 0
        self.discovery_hops = 0
        self.injector = None
        self.retry = None
        self._populate()

    def configure_faults(self, injector, retry) -> None:
        """Attach a fault injector + :class:`~repro.faults.RetryPolicy`."""
        self.injector = injector
        self.retry = retry

    def _populate(self) -> None:
        for service, instances in self.catalog.by_service.items():
            self.ring.put(self.SERVICE_PREFIX + service, tuple(instances))
        for iid, hosts in self.catalog.replicas.items():
            self.ring.put(self.INSTANCE_PREFIX + iid, frozenset(hosts))

    # -- discovery (routed; costs hops) -----------------------------------
    def _routed_get(self, key: str, from_peer: int) -> Tuple[Any, int]:
        """One routed read, retrying around in-flight query drops."""
        inj = self.injector
        if inj is None:
            return self.ring.get(key, from_peer)
        retry = self.retry
        total_hops = 0
        attempts = 0
        while True:
            node, hops = self.ring.lookup(key, from_peer)
            total_hops += hops
            if not inj.lookup_fails(key, from_peer, node.peer_id):
                return node.store.get(key), total_hops
            attempts += 1
            if attempts > retry.max_retries:
                inj.retry_exhausted("lookup", attempts=attempts, key=key)
                return None, total_hops
            inj.retry_attempt(
                "lookup", attempts, retry.delay(attempts, inj.rng), key=key
            )

    def discover_service(
        self, service: str, from_peer: int
    ) -> Tuple[Tuple[ServiceInstance, ...], int]:
        """All candidate instances of ``service``: ``(specs, hops)``."""
        value, hops = self._routed_get(self.SERVICE_PREFIX + service, from_peer)
        self.n_discoveries += 1
        self.discovery_hops += hops
        return (value or ()), hops

    def discover_hosts(
        self, instance_id: str, from_peer: int
    ) -> Tuple[FrozenSet[int], int]:
        """Peers hosting ``instance_id``: ``(host set, hops)``."""
        value, hops = self._routed_get(
            self.INSTANCE_PREFIX + instance_id, from_peer
        )
        self.n_discoveries += 1
        self.discovery_hops += hops
        return (value or frozenset()), hops

    def discover_path_candidates(
        self, services: Iterable[str], from_peer: int
    ) -> Tuple[Dict[str, Tuple[ServiceInstance, ...]], int]:
        """One routed lookup per abstract service; total hops returned."""
        out: Dict[str, Tuple[ServiceInstance, ...]] = {}
        total = 0
        for service in services:
            specs, hops = self.discover_service(service, from_peer)
            out[service] = specs
            total += hops
        return out, total

    # -- churn maintenance -----------------------------------------------------
    def peer_departed(self, peer_id: int, hosted: Iterable[str]) -> None:
        """Remove a departed peer from every instance record it hosted.

        Must run *before* the ring drops the peer so record re-homing and
        content updates stay ordered like the real protocol (the
        successor inherits already-cleaned records).
        """
        for iid in hosted:
            key = self.INSTANCE_PREFIX + iid
            self.ring.update(
                key, lambda hosts: frozenset((hosts or frozenset()) - {peer_id})
            )
        if peer_id in self.ring:
            self.ring.leave(peer_id)

    def peer_joined(self, peer_id: int, hosted: Iterable[str]) -> None:
        """Add an arriving peer to the ring and its hosted records."""
        if peer_id not in self.ring:
            self.ring.join(peer_id)
        for iid in hosted:
            key = self.INSTANCE_PREFIX + iid
            self.ring.update(
                key, lambda hosts: frozenset((hosts or frozenset()) | {peer_id})
            )

    @property
    def mean_discovery_hops(self) -> float:
        if self.n_discoveries == 0:
            return 0.0
        return self.discovery_hops / self.n_discoveries
