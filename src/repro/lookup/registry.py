"""The service registry layered on the Chord DHT.

Discovery is the first protocol step of on-demand composition (§3.2):
"the P2P lookup protocol ... is invoked to retrieve the locations (i.e.,
IP addresses) and QoS specifications (Qin, Qout, R) of all candidate
service instances, according to the abstract service path."

Records (all living in Chord node stores, re-homed automatically on
churn by the ring's key handoff):

* ``service:<name>``  -> tuple of candidate :class:`ServiceInstance`
  specs (the co-located QoS specifications of assumption 1, §3.1);
* ``instance:<id>``   -> frozenset of hosting peer ids (the locations).

Host sets change under churn; :meth:`ServiceRegistry.peer_departed` and
:meth:`ServiceRegistry.peer_joined` keep them in sync with the catalog's
ground truth while exercising real DHT update paths.

Fault tolerance
---------------
With a :class:`~repro.faults.injector.FaultInjector` attached
(:meth:`ServiceRegistry.configure_faults`), each routed query may fail
in flight.  The registry retries with capped exponential backoff,
re-routing around the hop that dropped the previous copy (retry with
exclusion -- each copy's fate is an independent draw, and each retry
re-pays the routing hops).  Budget exhaustion degrades to "no record
found", which the composition layer already treats as NO_CANDIDATES.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Optional, Protocol, Tuple

from repro.lookup.cache import BoundedCache
from repro.services.catalog import ServiceCatalog
from repro.services.model import ServiceInstance

__all__ = ["DhtProtocol", "ServiceRegistry"]


class DhtProtocol(Protocol):
    """What the registry needs from a lookup substrate.

    Satisfied by both :class:`~repro.lookup.chord.ChordRing` and
    :class:`~repro.lookup.can.CanNetwork` (the paper's "Chord or CAN").
    ``generation``/``note_cached_lookup`` power the registry's record
    cache; a substrate without them (checked via ``getattr``) simply
    runs with the value-layer cache disabled.
    """

    #: Membership generation, bumped by every join/leave.
    generation: int

    def put(self, key: str, value: Any) -> None: ...
    def get(self, key: str, from_peer: int) -> Tuple[Any, int]: ...
    def lookup(self, key: str, from_peer: int) -> Tuple[Any, int]: ...
    def update(self, key: str, fn) -> Any: ...
    def join(self, peer_id: int): ...
    def leave(self, peer_id: int) -> None: ...
    def note_cached_lookup(self, key: str, from_peer: int, hops: int) -> None: ...
    def cached_route_hops(self, key: str, from_peer: int) -> Optional[int]: ...
    def __contains__(self, peer_id: int) -> bool: ...


class ServiceRegistry:
    """Service and instance records on a DHT (Chord or CAN)."""

    SERVICE_PREFIX = "service:"
    INSTANCE_PREFIX = "instance:"

    #: Value-layer record cache (synced with ``GridConfig.fast_paths`` by
    #: the grid).  An entry ``key -> value`` is valid only while *both*
    #: the ring-membership generation and the record's per-key generation
    #: (bumped by ``peer_joined``/``peer_departed`` content updates) are
    #: unchanged.  A hit additionally needs the substrate's route memo to
    #: answer :meth:`~repro.lookup.chord.ChordRing.cached_route_hops` for
    #: the requesting peer -- that exact hop count (and the matching
    #: ``lookup.done`` telemetry) is replayed, so any peer whose start
    #: node lay on an earlier routed trail is served without a walk.
    #: (Keying the value layer per ``(key, from_peer)`` made the hit rate
    #: collapse to ~0: requesters are drawn at random, so the same pair
    #: almost never recurs.)  Disabled whenever a fault injector is
    #: attached -- every routed attempt must keep drawing its fault RNG.
    fast_paths = True
    #: Optional :class:`repro.telemetry.Telemetry`; set by the grid (cache
    #: and discovery counters are metrics-only, never bus events).
    telemetry = None
    RECORD_CACHE_CAP = 1 << 14

    def __init__(self, ring: DhtProtocol, catalog: ServiceCatalog) -> None:
        self.ring = ring
        self.catalog = catalog
        #: Discovery accounting: totals plus the routed/cached split
        #: (``n_discoveries == n_routed_discoveries + n_cached_discoveries``).
        self.n_discoveries = 0
        self.discovery_hops = 0
        self.n_routed_discoveries = 0
        self.n_cached_discoveries = 0
        self.routed_discovery_hops = 0
        self.cached_discovery_hops = 0
        self.injector = None
        self.retry = None
        self._record_cache = BoundedCache(self.RECORD_CACHE_CAP)
        #: Per-key content generations (missing key = generation 0).
        self._key_gens: Dict[str, int] = {}
        self._populate()

    def configure_faults(self, injector, retry) -> None:
        """Attach a fault injector + :class:`~repro.faults.RetryPolicy`."""
        self.injector = injector
        self.retry = retry

    def _populate(self) -> None:
        for service, instances in self.catalog.by_service.items():
            self.ring.put(self.SERVICE_PREFIX + service, tuple(instances))
        for iid, hosts in self.catalog.replicas.items():
            self.ring.put(self.INSTANCE_PREFIX + iid, frozenset(hosts))

    # -- discovery (routed; costs hops) -----------------------------------
    def _routed_get(self, key: str, from_peer: int) -> Tuple[Any, int]:
        """One routed read, retrying around in-flight query drops."""
        inj = self.injector
        if inj is None:
            return self.ring.get(key, from_peer)
        retry = self.retry
        total_hops = 0
        attempts = 0
        while True:
            node, hops = self.ring.lookup(key, from_peer)
            total_hops += hops
            if not inj.lookup_fails(key, from_peer, node.peer_id):
                return node.store.get(key), total_hops
            attempts += 1
            if attempts > retry.max_retries:
                inj.retry_exhausted("lookup", attempts=attempts, key=key)
                return None, total_hops
            inj.retry_attempt(
                "lookup", attempts, retry.delay(attempts, inj.rng), key=key
            )

    # -- record cache (fast path) ------------------------------------------
    @property
    def cache_active(self) -> bool:
        """True when reads may be served/deduped from cached values.

        Requires ``fast_paths``, a substrate that exposes a membership
        generation, and *no* fault injector -- with faults attached every
        routed attempt draws from the fault RNG stream, which a cached
        answer would skip (diverging the seeded fault schedule).
        """
        return (
            self.fast_paths
            and self.injector is None
            and getattr(self.ring, "generation", None) is not None
        )

    def _cached_get(self, key: str, from_peer: int) -> Tuple[Any, int, bool]:
        """One read, preferring the record cache: ``(value, hops, cached)``."""
        if not self.cache_active:
            value, hops = self._routed_get(key, from_peer)
            return value, hops, False
        cache = self._record_cache
        cache.check_generation(self.ring.generation)
        key_gen = self._key_gens.get(key, 0)
        entry = cache.get(key)
        tel = self.telemetry
        if entry is not None and entry[1] == key_gen:
            hops = self.ring.cached_route_hops(key, from_peer)
            if hops is not None:
                cache.stats.hits += 1
                if tel is not None:
                    tel.metrics.counter("cache.record.hits").inc()
                # Replay the routed walk's accounting exactly (same
                # lookup.done event, same hop count, same ring stats).
                self.ring.note_cached_lookup(key, from_peer, hops)
                return entry[0], hops, True
        cache.stats.misses += 1
        if tel is not None:
            tel.metrics.counter("cache.record.misses").inc()
        value, hops = self._routed_get(key, from_peer)
        cache.put(key, (value, key_gen))
        return value, hops, False

    def _account_discovery(self, hops: int, cached: bool) -> None:
        self.n_discoveries += 1
        self.discovery_hops += hops
        if cached:
            self.n_cached_discoveries += 1
            self.cached_discovery_hops += hops
        else:
            self.n_routed_discoveries += 1
            self.routed_discovery_hops += hops
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter(
                "discovery.cached" if cached else "discovery.routed"
            ).inc()

    def replay_discovery(self, key: str, from_peer: int, hops: int) -> None:
        """Account one discovery served from an upstream dedupe.

        Callers (batched path discovery, the aggregator's duplicate-
        instance dedupe) hold a value fetched moments ago in the same
        operation; this replays the lookup telemetry and discovery
        accounting the repeated read would have produced.  Only legal
        while :attr:`cache_active` (the caller's dedupe must be too).
        """
        self.ring.note_cached_lookup(key, from_peer, hops)
        self._account_discovery(hops, cached=True)

    def discover_service(
        self, service: str, from_peer: int
    ) -> Tuple[Tuple[ServiceInstance, ...], int]:
        """All candidate instances of ``service``: ``(specs, hops)``."""
        value, hops, cached = self._cached_get(
            self.SERVICE_PREFIX + service, from_peer
        )
        self._account_discovery(hops, cached)
        return (value or ()), hops

    def discover_hosts(
        self, instance_id: str, from_peer: int
    ) -> Tuple[FrozenSet[int], int]:
        """Peers hosting ``instance_id``: ``(host set, hops)``."""
        value, hops, cached = self._cached_get(
            self.INSTANCE_PREFIX + instance_id, from_peer
        )
        self._account_discovery(hops, cached)
        return (value or frozenset()), hops

    def discover_path_candidates(
        self, services: Iterable[str], from_peer: int
    ) -> Tuple[Dict[str, Tuple[ServiceInstance, ...]], int]:
        """One routed lookup per abstract service; total hops returned.

        Batched: with the fast paths active, a service repeated in the
        path is resolved by the first lookup and the repeats are served
        from that answer -- the query already routed to the responsible
        node -- with per-occurrence accounting replayed so hop totals
        and telemetry match the unbatched walks.
        """
        out: Dict[str, Tuple[ServiceInstance, ...]] = {}
        total = 0
        dedupe = self.cache_active
        seen: Dict[str, int] = {}
        for service in services:
            prior_hops = seen.get(service) if dedupe else None
            if prior_hops is None:
                specs, hops = self.discover_service(service, from_peer)
                if dedupe:
                    seen[service] = hops
            else:
                specs, hops = out[service], prior_hops
                self.replay_discovery(
                    self.SERVICE_PREFIX + service, from_peer, hops
                )
            out[service] = specs
            total += hops
        return out, total

    # -- churn maintenance -----------------------------------------------------
    def peer_departed(self, peer_id: int, hosted: Iterable[str]) -> None:
        """Remove a departed peer from every instance record it hosted.

        Must run *before* the ring drops the peer so record re-homing and
        content updates stay ordered like the real protocol (the
        successor inherits already-cleaned records).
        """
        for iid in hosted:
            key = self.INSTANCE_PREFIX + iid
            self._key_gens[key] = self._key_gens.get(key, 0) + 1
            self.ring.update(
                key, lambda hosts: frozenset((hosts or frozenset()) - {peer_id})
            )
        if peer_id in self.ring:
            self.ring.leave(peer_id)

    def peer_joined(self, peer_id: int, hosted: Iterable[str]) -> None:
        """Add an arriving peer to the ring and its hosted records."""
        if peer_id not in self.ring:
            self.ring.join(peer_id)
        for iid in hosted:
            key = self.INSTANCE_PREFIX + iid
            self._key_gens[key] = self._key_gens.get(key, 0) + 1
            self.ring.update(
                key, lambda hosts: frozenset((hosts or frozenset()) | {peer_id})
            )

    @property
    def mean_discovery_hops(self) -> float:
        if self.n_discoveries == 0:
            return 0.0
        return self.discovery_hops / self.n_discoveries

    @property
    def record_cache_stats(self):
        return self._record_cache.stats

    @property
    def discovery_cache_hit_rate(self) -> float:
        """Fraction of discoveries served without a routed walk."""
        if self.n_discoveries == 0:
            return 0.0
        return self.n_cached_discoveries / self.n_discoveries
