"""A CAN distributed hash table (Ratnasamy et al., SIGCOMM 2001).

The paper's discovery step invokes "Chord [20] or CAN [16]"; this module
provides the CAN half so the registry can run on either substrate.

Model
-----
* The key space is the ``d``-dimensional unit torus ``[0,1)^d``; keys and
  joining peers hash to points in it.
* Every node owns one or more axis-aligned **zones** (boxes).  A join
  routes to the zone containing the new peer's point; that zone splits in
  half along its longest dimension and the half containing the point —
  with the keys living inside it — moves to the new node.  A leave hands
  each zone (and its keys) to the smallest-volume adjacent neighbor,
  which then temporarily manages multiple zones, exactly as the CAN paper
  allows before background defragmentation.
* **Greedy routing**: a lookup repeatedly forwards to the neighbor whose
  zone is closest (torus distance) to the key's point, counting
  application-level hops; expected path length is O(d · N^(1/d)).

Neighbor sets are recomputed from zone adjacency after each membership
event (O(N) per event).  That is the converged state the real protocol's
update messages maintain; the simplification mirrors the Chord module's
derived fingers and is recorded in DESIGN.md §4.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.lookup.cache import BoundedCache

__all__ = ["Zone", "CanNode", "CanNetwork"]


def _hash_floats(label: str, d: int) -> np.ndarray:
    """Hash a label to a point in [0,1)^d."""
    out = np.empty(d)
    for k in range(d):
        digest = hashlib.blake2b(
            f"{label}/{k}".encode("utf-8"), digest_size=8
        ).digest()
        out[k] = int.from_bytes(digest, "little") / 2**64
    return out


@dataclass
class Zone:
    """An axis-aligned box ``[lo, hi)`` inside the unit torus."""

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        self.lo = np.asarray(self.lo, dtype=np.float64)
        self.hi = np.asarray(self.hi, dtype=np.float64)
        if self.lo.shape != self.hi.shape:
            raise ValueError("lo/hi dimension mismatch")
        if np.any(self.lo >= self.hi):
            raise ValueError(f"empty zone: lo={self.lo}, hi={self.hi}")

    @property
    def dim(self) -> int:
        return len(self.lo)

    @property
    def volume(self) -> float:
        return float(np.prod(self.hi - self.lo))

    @property
    def center(self) -> np.ndarray:
        return (self.lo + self.hi) / 2.0

    def contains(self, point: np.ndarray) -> bool:
        return bool(np.all(point >= self.lo) and np.all(point < self.hi))

    def split(self) -> Tuple["Zone", "Zone"]:
        """Halve along the longest dimension (lowest index on ties)."""
        extents = self.hi - self.lo
        k = int(np.argmax(extents))
        mid = (self.lo[k] + self.hi[k]) / 2.0
        lo2, hi1 = self.lo.copy(), self.hi.copy()
        hi1[k] = mid
        lo2[k] = mid
        return Zone(self.lo.copy(), hi1), Zone(lo2, self.hi.copy())

    def distance_to(self, point: np.ndarray) -> float:
        """Torus L2 distance from the box to a point (0 if inside)."""
        gaps = np.zeros(self.dim)
        for k in range(self.dim):
            x = point[k]
            if self.lo[k] <= x < self.hi[k]:
                continue
            d_lo = min(abs(x - self.lo[k]), 1.0 - abs(x - self.lo[k]))
            d_hi = min(abs(x - self.hi[k]), 1.0 - abs(x - self.hi[k]))
            gaps[k] = min(d_lo, d_hi)
        return float(np.sqrt(np.sum(gaps**2)))

    def adjacent(self, other: "Zone") -> bool:
        """Do the zones abut on the torus (share a (d-1)-face)?"""
        abutting_dims = 0
        for k in range(self.dim):
            a_lo, a_hi = self.lo[k], self.hi[k]
            b_lo, b_hi = other.lo[k], other.hi[k]
            abut = (
                a_hi == b_lo
                or b_hi == a_lo
                or (a_hi == 1.0 and b_lo == 0.0)
                or (b_hi == 1.0 and a_lo == 0.0)
            )
            overlap = max(a_lo, b_lo) < min(a_hi, b_hi)
            if abut and not overlap:
                abutting_dims += 1
            elif not overlap:
                return False  # separated in this dimension
        return abutting_dims == 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        spans = ", ".join(
            f"[{lo:.3g},{hi:.3g})" for lo, hi in zip(self.lo, self.hi)
        )
        return f"Zone({spans})"


class CanNode:
    """One CAN member: its zones, keys and current neighbor set."""

    __slots__ = ("peer_id", "zones", "store", "neighbors")

    def __init__(self, peer_id: int, zones: List[Zone]) -> None:
        self.peer_id = peer_id
        self.zones = zones
        self.store: Dict[str, Any] = {}
        self.neighbors: Set[int] = set()

    def owns(self, point: np.ndarray) -> bool:
        return any(z.contains(point) for z in self.zones)

    def distance_to(self, point: np.ndarray) -> float:
        return min(z.distance_to(point) for z in self.zones)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CanNode peer={self.peer_id} zones={len(self.zones)}>"


class CanNetwork:
    """The CAN overlay: membership, storage and greedy routing."""

    #: Optional :class:`repro.telemetry.Telemetry`; set by the grid when
    #: telemetry is enabled (per-lookup hop events + histograms).
    telemetry = None
    #: Route-cache fast path (synced with ``GridConfig.fast_paths`` by
    #: the grid).  Unlike Chord's per-node suffix memo, CAN's greedy step
    #: depends on the ``visited`` history, so only *whole* routes are
    #: cacheable: ``(key, from_peer) -> (owner peer, hops)``.  Every
    #: ``join``/``leave`` bumps :attr:`generation`, clearing the cache.
    fast_paths = True
    #: Route-cache entry cap ((key, from_peer) pairs; LRU beyond this).
    ROUTE_CACHE_CAP = 1 << 16

    def __init__(self, dimensions: int = 2, seed: int = 0) -> None:
        if not 1 <= dimensions <= 10:
            raise ValueError("CAN dimensionality must be 1..10")
        self.d = dimensions
        self.seed = seed
        self._nodes: Dict[int, CanNode] = {}
        #: Membership generation (see :class:`~repro.lookup.cache.BoundedCache`).
        self.generation = 0
        self._route_cache = BoundedCache(self.ROUTE_CACHE_CAP)
        self.n_lookups = 0
        self.total_hops = 0

    # -- hashing ------------------------------------------------------------
    def point_for_key(self, key: str) -> np.ndarray:
        return _hash_floats(f"{self.seed}/key/{key}", self.d)

    def point_for_peer(self, peer_id: int) -> np.ndarray:
        return _hash_floats(f"{self.seed}/peer/{peer_id}", self.d)

    # -- membership ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._nodes

    def peers(self) -> List[int]:
        return list(self._nodes)

    def _owner(self, point: np.ndarray) -> CanNode:
        for node in self._nodes.values():
            if node.owns(point):
                return node
        raise RuntimeError("point owned by no zone (space fragmented?)")

    def join(self, peer_id: int) -> CanNode:
        """Join at the zone containing the peer's hashed point."""
        if peer_id in self._nodes:
            raise ValueError(f"peer {peer_id} already in the CAN")
        self.generation += 1
        if not self._nodes:
            node = CanNode(
                peer_id, [Zone(np.zeros(self.d), np.ones(self.d))]
            )
            self._nodes[peer_id] = node
            return node
        point = self.point_for_peer(peer_id)
        owner = self._owner(point)
        zone_idx = next(
            i for i, z in enumerate(owner.zones) if z.contains(point)
        )
        keep, give = owner.zones[zone_idx].split()
        if give.contains(point):
            keep, give = keep, give
        else:
            keep, give = give, keep
        owner.zones[zone_idx] = keep
        node = CanNode(peer_id, [give])
        self._nodes[peer_id] = node
        # Key handoff: everything in the new node's half moves.
        moving = [
            k for k in owner.store if give.contains(self.point_for_key(k))
        ]
        for k in moving:
            node.store[k] = owner.store.pop(k)
        self._recompute_neighbors({owner.peer_id, peer_id})
        return node

    def leave(self, peer_id: int) -> None:
        """Hand each zone to its smallest adjacent neighbor."""
        node = self._nodes.pop(peer_id, None)
        if node is None:
            raise KeyError(f"peer {peer_id} is not in the CAN")
        self.generation += 1
        if not self._nodes:
            return  # the space empties with the last node
        touched = set()
        for zone in node.zones:
            candidates = [
                other
                for other in self._nodes.values()
                if any(zone.adjacent(z) or z.adjacent(zone)
                       for z in other.zones)
            ]
            if not candidates:  # disconnected fragment: give to anyone
                candidates = list(self._nodes.values())
            taker = min(
                candidates,
                key=lambda n: (sum(z.volume for z in n.zones), n.peer_id),
            )
            taker.zones.append(zone)
            touched.add(taker.peer_id)
        # Keys follow their zones.
        for k, v in node.store.items():
            self._owner(self.point_for_key(k)).store[k] = v
        self._recompute_neighbors(touched)

    def _recompute_neighbors(self, changed: Set[int]) -> None:
        """Refresh adjacency for changed nodes and everyone near them."""
        affected = set(changed)
        for pid in changed:
            node = self._nodes.get(pid)
            if node is not None:
                affected |= node.neighbors
        for pid in affected:
            node = self._nodes.get(pid)
            if node is None:
                continue
            node.neighbors = set()
            for other in self._nodes.values():
                if other.peer_id == pid:
                    continue
                if any(
                    za.adjacent(zb)
                    for za in node.zones
                    for zb in other.zones
                ):
                    node.neighbors.add(other.peer_id)
        # Symmetrize (adjacency is symmetric, but zones changed hands).
        for pid in affected:
            node = self._nodes.get(pid)
            if node is None:
                continue
            for nb in node.neighbors:
                self._nodes[nb].neighbors.add(pid)
            # Drop stale reverse edges pointing at us from non-neighbors.
        for other in self._nodes.values():
            if other.peer_id in affected:
                continue
            for pid in list(other.neighbors):
                if pid not in self._nodes:
                    other.neighbors.discard(pid)
                elif pid in affected and other.peer_id not in self._nodes[
                    pid
                ].neighbors:
                    other.neighbors.discard(pid)

    # -- storage ----------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self._owner(self.point_for_key(key)).store[key] = value

    def update(self, key: str, fn) -> Any:
        node = self._owner(self.point_for_key(key))
        node.store[key] = value = fn(node.store.get(key))
        return value

    # -- routing ------------------------------------------------------------
    def lookup(self, key: str, from_peer: int) -> Tuple[CanNode, int]:
        """Greedy-route to the key's owner; returns ``(node, hops)``."""
        if not self._nodes:
            raise RuntimeError("CAN is empty")
        cache = self._route_cache if self.fast_paths else None
        if cache is not None:
            cache.check_generation(self.generation)
            entry = cache.get((key, from_peer))
            if entry is not None:
                owner, hops = entry
                cache.stats.hits += 1
                tel = self.telemetry
                if tel is not None:
                    tel.metrics.counter("cache.route.hits").inc()
                self._account_lookup(key, from_peer, hops)
                return self._nodes[owner], hops
            cache.stats.misses += 1
            tel = self.telemetry
            if tel is not None:
                tel.metrics.counter("cache.route.misses").inc()
        current, hops = self._route(key, from_peer, cache)
        self._account_lookup(key, from_peer, hops)
        return current, hops

    def _route(self, key: str, from_peer: int, cache) -> Tuple[CanNode, int]:
        """The greedy zone walk; pure w.r.t. simulated state.

        Only the route memo (metrics-invisible) is written, so this is
        shared by :meth:`lookup` and the dry probe
        :meth:`cached_route_hops`.
        """
        point = self.point_for_key(key)
        start = self._nodes.get(from_peer)
        hops = 0
        if start is None:
            # Bootstrap through the owner of the requester's hashed point.
            start = self._owner(self.point_for_peer(from_peer))
            hops += 1
        current = start
        visited = {current.peer_id}
        while not current.owns(point):
            best: Optional[CanNode] = None
            best_d = current.distance_to(point)
            for nb in current.neighbors:
                node = self._nodes.get(nb)
                if node is None or node.peer_id in visited:
                    continue
                d = node.distance_to(point)
                if best is None or d < best_d:
                    best, best_d = node, d
            if best is None:
                # Perimeter fallback: any unvisited neighbor keeps the
                # query alive (CAN's stateless routing does the same).
                fallback = [
                    self._nodes[nb]
                    for nb in current.neighbors
                    if nb in self._nodes and nb not in visited
                ]
                if not fallback:
                    raise RuntimeError(
                        f"routing stuck at peer {current.peer_id} for {key!r}"
                    )
                best = min(fallback, key=lambda n: n.distance_to(point))
            current = best
            visited.add(current.peer_id)
            hops += 1
        if cache is not None:
            cache.put((key, from_peer), (current.peer_id, hops))
        return current, hops

    def _account_lookup(self, key: str, from_peer: int, hops: int) -> None:
        """Per-lookup statistics + telemetry, identical cached/uncached."""
        self.n_lookups += 1
        self.total_hops += hops
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("lookup.count").inc()
            tel.metrics.histogram("lookup.hops").observe(hops)
            tel.bus.emit(
                "lookup.done",
                key=key, from_peer=from_peer, hops=hops, protocol="can",
            )

    def note_cached_lookup(self, key: str, from_peer: int, hops: int) -> None:
        """Replay lookup accounting for a read served from a value cache
        (see :meth:`repro.lookup.chord.ChordRing.note_cached_lookup`)."""
        self._account_lookup(key, from_peer, hops)

    def cached_route_hops(self, key: str, from_peer: int) -> Optional[int]:
        """The exact hop count a routed lookup would report, if memoized.

        Greedy zone routing is a pure function of (key, start peer) for
        a fixed membership, so the answer is exact: served from the
        route memo, or computed by a dry :meth:`_route` (no statistics,
        no telemetry, no store access; see
        :meth:`repro.lookup.chord.ChordRing.cached_route_hops`).
        """
        if not self.fast_paths or not self._nodes:
            return None
        cache = self._route_cache
        cache.check_generation(self.generation)
        entry = cache.get((key, from_peer))
        if entry is not None:
            return entry[1]
        _, hops = self._route(key, from_peer, cache)
        return hops

    @property
    def route_cache_stats(self):
        return self._route_cache.stats

    def get(self, key: str, from_peer: int) -> Tuple[Any, int]:
        node, hops = self.lookup(key, from_peer)
        return node.store.get(key), hops

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.n_lookups if self.n_lookups else 0.0

    # -- invariants (used by tests) ------------------------------------------
    def total_volume(self) -> float:
        return sum(
            z.volume for node in self._nodes.values() for z in node.zones
        )
