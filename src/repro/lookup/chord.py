"""A Chord distributed hash table (Stoica et al., SIGCOMM 2001).

This is the discovery substrate the paper plugs in by reference.  The
implementation covers the pieces the aggregation model exercises:

* an ``m``-bit circular identifier space; peers and keys are hashed onto
  it with BLAKE2b;
* **successor responsibility**: key ``k`` lives on the first node whose
  id is >= ``k`` (mod 2^m);
* **per-node storage with handoff**: a joining node takes over the keys
  it becomes responsible for from its successor; a leaving node hands its
  keys to its successor (so records survive churn, as Chord prescribes);
* **greedy finger routing**: node ``n``'s ``i``-th finger is
  ``successor(n + 2^i)``; a lookup repeatedly forwards to the closest
  preceding finger and counts application-level hops, giving the
  classic O(log N) hop behaviour (verified by the ``bench_chord_lookup``
  bench and unit tests).

Fingers are *derived* from the current ring membership (equivalent to a
fully converged stabilization protocol) rather than incrementally
maintained -- the simplification and its rationale are recorded in
DESIGN.md §4.  Ring membership itself is explicit: ``join``/``leave``
mutate a sorted id list (bisect-based, O(log N) search, O(N) splice --
cheap at the churn rates simulated).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ChordNode", "ChordRing"]


def _hash_to_id(label: str, bits: int) -> int:
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % (1 << bits)


class ChordNode:
    """One ring member: identifier plus locally stored records."""

    __slots__ = ("node_id", "peer_id", "store")

    def __init__(self, node_id: int, peer_id: int) -> None:
        self.node_id = node_id
        self.peer_id = peer_id
        self.store: Dict[str, Any] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ChordNode peer={self.peer_id} id={self.node_id:#x}>"


class ChordRing:
    """The ring: membership, responsibility, storage and routing."""

    #: Optional :class:`repro.telemetry.Telemetry`; set by the grid when
    #: telemetry is enabled (per-lookup hop events + histograms).
    telemetry = None

    def __init__(self, bits: int = 32, seed: int = 0) -> None:
        if not 8 <= bits <= 64:
            raise ValueError("identifier space must be 8..64 bits")
        self.bits = bits
        self.seed = seed
        self._ids: List[int] = []            # sorted node ids
        self._nodes: Dict[int, ChordNode] = {}  # node id -> node
        self._peer_to_id: Dict[int, int] = {}   # peer id -> node id
        #: Routing statistics.
        self.n_lookups = 0
        self.total_hops = 0

    # -- hashing ------------------------------------------------------------
    def node_id_for(self, peer_id: int) -> int:
        return _hash_to_id(f"{self.seed}/peer/{peer_id}", self.bits)

    def key_id(self, key: str) -> int:
        return _hash_to_id(f"{self.seed}/key/{key}", self.bits)

    # -- membership ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._peer_to_id

    def join(self, peer_id: int) -> ChordNode:
        """Add a peer; it takes over its share of keys from its successor."""
        if peer_id in self._peer_to_id:
            raise ValueError(f"peer {peer_id} already in the ring")
        node_id = self.node_id_for(peer_id)
        while node_id in self._nodes:  # vanishingly rare id collision
            node_id = (node_id + 1) % (1 << self.bits)
        node = ChordNode(node_id, peer_id)
        if self._ids:
            successor = self._successor_node(node_id)
            # Keys in (pred(node), node] move from the successor to the
            # new node: exactly the keys whose responsible node is now us.
            moving = [
                k
                for k in successor.store
                if self._responsible_id(self.key_id(k), extra=node_id) == node_id
            ]
            for k in moving:
                node.store[k] = successor.store.pop(k)
        bisect.insort(self._ids, node_id)
        self._nodes[node_id] = node
        self._peer_to_id[peer_id] = node_id
        return node

    def leave(self, peer_id: int) -> None:
        """Remove a peer; its keys hand off to its successor."""
        node_id = self._peer_to_id.pop(peer_id, None)
        if node_id is None:
            raise KeyError(f"peer {peer_id} is not in the ring")
        node = self._nodes.pop(node_id)
        idx = bisect.bisect_left(self._ids, node_id)
        self._ids.pop(idx)
        if self._ids and node.store:
            successor = self._successor_node(node_id)
            successor.store.update(node.store)

    def peers(self) -> List[int]:
        return list(self._peer_to_id)

    # -- responsibility ------------------------------------------------------
    def _successor_node(self, ident: int) -> ChordNode:
        """First live node at or clockwise-after ``ident``."""
        idx = bisect.bisect_left(self._ids, ident)
        if idx == len(self._ids):
            idx = 0
        return self._nodes[self._ids[idx]]

    def _responsible_id(self, key_id: int, extra: Optional[int] = None) -> int:
        """Node id responsible for ``key_id``; ``extra`` simulates a
        candidate member not yet inserted (used during join handoff)."""
        ids = self._ids
        if extra is not None:
            pos = bisect.bisect_left(ids, extra)
            ids = ids[:pos] + [extra] + ids[pos:]
        idx = bisect.bisect_left(ids, key_id)
        if idx == len(ids):
            idx = 0
        return ids[idx]

    def responsible_node(self, key: str) -> ChordNode:
        if not self._ids:
            raise RuntimeError("ring is empty")
        return self._successor_node(self.key_id(key))

    # -- storage ---------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self.responsible_node(key).store[key] = value

    def get_local(self, key: str) -> Any:
        """Read without routing (used by maintenance code, not lookups)."""
        return self.responsible_node(key).store.get(key)

    def update(self, key: str, fn) -> Any:
        """Read-modify-write at the responsible node."""
        node = self.responsible_node(key)
        node.store[key] = value = fn(node.store.get(key))
        return value

    # -- routing ------------------------------------------------------------
    @staticmethod
    def _in_open_interval(x: int, a: int, b: int, space: int) -> bool:
        """``x in (a, b)`` on the circle (empty when a == b)."""
        if a < b:
            return a < x < b
        return x > a or x < b

    def _closest_preceding(self, node_id: int, key_id: int) -> int:
        """Greedy step: the farthest finger of ``node_id`` preceding key."""
        space = 1 << self.bits
        for i in range(self.bits - 1, -1, -1):
            finger = self._successor_node((node_id + (1 << i)) % space).node_id
            if self._in_open_interval(finger, node_id, key_id, space):
                return finger
        return node_id

    def lookup(self, key: str, from_peer: int) -> Tuple[ChordNode, int]:
        """Route from ``from_peer`` to the node holding ``key``.

        Returns ``(responsible node, hop count)``; hop count is the
        number of application-level forwardings (0 when the start node is
        itself responsible).
        """
        if not self._ids:
            raise RuntimeError("ring is empty")
        start_id = self._peer_to_id.get(from_peer)
        if start_id is None:
            # A peer outside the ring bootstraps through its hashed
            # position: one extra hop to whoever is responsible there.
            start_id = self._successor_node(self.node_id_for(from_peer)).node_id
        key_id = self.key_id(key)
        space = 1 << self.bits
        hops = 0
        current = start_id
        target = self._responsible_id(key_id)
        # Greedy finger walk until the key falls between us and our
        # successor (then one final hop to the successor).
        while current != target:
            succ = self._successor_node((current + 1) % space).node_id
            if succ == target and (
                self._in_open_interval(key_id, current, succ, space)
                or key_id == succ
            ):
                current = succ
                hops += 1
                break
            nxt = self._closest_preceding(current, key_id)
            if nxt == current:
                current = succ
            else:
                current = nxt
            hops += 1
        self.n_lookups += 1
        self.total_hops += hops
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("lookup.count").inc()
            tel.metrics.histogram("lookup.hops").observe(hops)
            tel.bus.emit(
                "lookup.done",
                key=key, from_peer=from_peer, hops=hops, protocol="chord",
            )
        return self._nodes[current], hops

    def get(self, key: str, from_peer: int) -> Tuple[Any, int]:
        """Routed read: ``(value or None, hops)``."""
        node, hops = self.lookup(key, from_peer)
        return node.store.get(key), hops

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.n_lookups if self.n_lookups else 0.0
