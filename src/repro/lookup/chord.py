"""A Chord distributed hash table (Stoica et al., SIGCOMM 2001).

This is the discovery substrate the paper plugs in by reference.  The
implementation covers the pieces the aggregation model exercises:

* an ``m``-bit circular identifier space; peers and keys are hashed onto
  it with BLAKE2b;
* **successor responsibility**: key ``k`` lives on the first node whose
  id is >= ``k`` (mod 2^m);
* **per-node storage with handoff**: a joining node takes over the keys
  it becomes responsible for from its successor; a leaving node hands its
  keys to its successor (so records survive churn, as Chord prescribes);
* **greedy finger routing**: node ``n``'s ``i``-th finger is
  ``successor(n + 2^i)``; a lookup repeatedly forwards to the closest
  preceding finger and counts application-level hops, giving the
  classic O(log N) hop behaviour (verified by the ``bench_chord_lookup``
  bench and unit tests).

Fingers are *derived* from the current ring membership (equivalent to a
fully converged stabilization protocol) rather than incrementally
maintained -- the simplification and its rationale are recorded in
DESIGN.md §4.  Ring membership itself is explicit: ``join``/``leave``
mutate a sorted id list (bisect-based, O(log N) search, O(N) splice --
cheap at the churn rates simulated).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.lookup.cache import BoundedCache

__all__ = ["ChordNode", "ChordRing"]


def _hash_to_id(label: str, bits: int) -> int:
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") % (1 << bits)


class ChordNode:
    """One ring member: identifier plus locally stored records."""

    __slots__ = ("node_id", "peer_id", "store")

    def __init__(self, node_id: int, peer_id: int) -> None:
        self.node_id = node_id
        self.peer_id = peer_id
        self.store: Dict[str, Any] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ChordNode peer={self.peer_id} id={self.node_id:#x}>"


class ChordRing:
    """The ring: membership, responsibility, storage and routing."""

    #: Optional :class:`repro.telemetry.Telemetry`; set by the grid when
    #: telemetry is enabled (per-lookup hop events + histograms).
    telemetry = None
    #: Route-memo fast path (synced with ``GridConfig.fast_paths`` by the
    #: grid).  The memo is *exact*: with a fixed membership, the greedy
    #: finger walk's next hop is a pure function of (current node, key),
    #: so ``(key, node) -> (remaining hops, target)`` entries reproduce
    #: the uncached walk's hop count to the digit.  Every ``join``/
    #: ``leave`` bumps :attr:`generation`, which clears the memo.
    fast_paths = True
    #: Route-memo entry cap ((key, node) pairs; LRU beyond this).
    ROUTE_CACHE_CAP = 1 << 16
    #: Finger-table memo cap (nodes; cleared wholesale on churn).
    FINGER_CACHE_CAP = 1 << 14

    def __init__(self, bits: int = 32, seed: int = 0) -> None:
        if not 8 <= bits <= 64:
            raise ValueError("identifier space must be 8..64 bits")
        self.bits = bits
        self.seed = seed
        self._ids: List[int] = []            # sorted node ids
        self._nodes: Dict[int, ChordNode] = {}  # node id -> node
        self._peer_to_id: Dict[int, int] = {}   # peer id -> node id
        #: Ring-membership generation: bumped by every join/leave; cache
        #: consumers (the route memo here, the registry's record cache)
        #: treat a generation mismatch as wholesale invalidation.
        self.generation = 0
        self._route_cache = BoundedCache(self.ROUTE_CACHE_CAP)
        #: Memoized finger tables (node id -> fingers, farthest first).
        #: Fingers are derived from the current membership, so they are a
        #: pure function of (node, generation) -- same invalidation rule
        #: as the route memo.
        self._finger_cache: Dict[int, List[int]] = {}
        self._finger_gen = -1
        #: Sorted ids as a numpy array (rebuilt lazily per generation)
        #: for the vectorized finger build.
        self._ids_arr: Optional[np.ndarray] = None
        #: Finger offsets 2^(bits-1) .. 2^0, matching the probe order.
        self._pow2 = np.array(
            [1 << i for i in range(bits - 1, -1, -1)], dtype=np.uint64
        )
        #: key -> key_id memo (pure function of the key for a fixed seed).
        self._key_ids: Dict[str, int] = {}
        #: Routing statistics.
        self.n_lookups = 0
        self.total_hops = 0

    # -- hashing ------------------------------------------------------------
    def node_id_for(self, peer_id: int) -> int:
        return _hash_to_id(f"{self.seed}/peer/{peer_id}", self.bits)

    def key_id(self, key: str) -> int:
        kid = self._key_ids.get(key)
        if kid is None:
            kid = _hash_to_id(f"{self.seed}/key/{key}", self.bits)
            if len(self._key_ids) < self.ROUTE_CACHE_CAP:
                self._key_ids[key] = kid
        return kid

    # -- membership ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._peer_to_id

    def join(self, peer_id: int) -> ChordNode:
        """Add a peer; it takes over its share of keys from its successor."""
        if peer_id in self._peer_to_id:
            raise ValueError(f"peer {peer_id} already in the ring")
        node_id = self.node_id_for(peer_id)
        while node_id in self._nodes:  # vanishingly rare id collision
            node_id = (node_id + 1) % (1 << self.bits)
        node = ChordNode(node_id, peer_id)
        if self._ids:
            successor = self._successor_node(node_id)
            # Keys in (pred(node), node] move from the successor to the
            # new node: exactly the keys whose responsible node is now
            # us.  The circular-interval test is equivalent to (and much
            # cheaper than) re-running responsibility with the candidate
            # id spliced in per key.
            pred = self._ids[bisect.bisect_left(self._ids, node_id) - 1]
            kid = self.key_id
            if pred < node_id:
                moving = [
                    k for k in successor.store if pred < kid(k) <= node_id
                ]
            else:
                moving = [
                    k
                    for k in successor.store
                    if kid(k) > pred or kid(k) <= node_id
                ]
            for k in moving:
                node.store[k] = successor.store.pop(k)
        bisect.insort(self._ids, node_id)
        self._nodes[node_id] = node
        self._peer_to_id[peer_id] = node_id
        self.generation += 1
        return node

    def leave(self, peer_id: int) -> None:
        """Remove a peer; its keys hand off to its successor."""
        node_id = self._peer_to_id.pop(peer_id, None)
        if node_id is None:
            raise KeyError(f"peer {peer_id} is not in the ring")
        node = self._nodes.pop(node_id)
        idx = bisect.bisect_left(self._ids, node_id)
        self._ids.pop(idx)
        self.generation += 1
        if self._ids and node.store:
            successor = self._successor_node(node_id)
            successor.store.update(node.store)

    def peers(self) -> List[int]:
        return list(self._peer_to_id)

    # -- responsibility ------------------------------------------------------
    def _successor_node(self, ident: int) -> ChordNode:
        """First live node at or clockwise-after ``ident``."""
        idx = bisect.bisect_left(self._ids, ident)
        if idx == len(self._ids):
            idx = 0
        return self._nodes[self._ids[idx]]

    def _responsible_id(self, key_id: int, extra: Optional[int] = None) -> int:
        """Node id responsible for ``key_id``; ``extra`` simulates a
        candidate member not yet inserted (used during join handoff)."""
        ids = self._ids
        if extra is not None:
            pos = bisect.bisect_left(ids, extra)
            ids = ids[:pos] + [extra] + ids[pos:]
        idx = bisect.bisect_left(ids, key_id)
        if idx == len(ids):
            idx = 0
        return ids[idx]

    def responsible_node(self, key: str) -> ChordNode:
        if not self._ids:
            raise RuntimeError("ring is empty")
        return self._successor_node(self.key_id(key))

    # -- storage ---------------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        self.responsible_node(key).store[key] = value

    def get_local(self, key: str) -> Any:
        """Read without routing (used by maintenance code, not lookups)."""
        return self.responsible_node(key).store.get(key)

    def update(self, key: str, fn) -> Any:
        """Read-modify-write at the responsible node."""
        node = self.responsible_node(key)
        node.store[key] = value = fn(node.store.get(key))
        return value

    # -- routing ------------------------------------------------------------
    @staticmethod
    def _in_open_interval(x: int, a: int, b: int, space: int) -> bool:
        """``x in (a, b)`` on the circle (empty when a == b)."""
        if a < b:
            return a < x < b
        return x > a or x < b

    def _fingers(self, node_id: int) -> List[int]:
        """``node_id``'s finger targets, farthest (2^(bits-1)) first."""
        if self._finger_gen != self.generation:
            self._finger_cache.clear()
            self._finger_gen = self.generation
            self._ids_arr = None
        fingers = self._finger_cache.get(node_id)
        if fingers is None:
            # Vectorized successor resolution: one searchsorted over the
            # sorted id array replaces ``bits`` bisect+dict probes.  The
            # values are exactly ``successor(node_id + 2^i)`` -- wrap
            # handled by sending end-of-array hits back to index 0.
            ids = self._ids_arr
            if ids is None:
                ids = self._ids_arr = np.array(self._ids, dtype=np.uint64)
            targets = self._pow2 + np.uint64(node_id)
            if self.bits < 64:
                targets &= np.uint64((1 << self.bits) - 1)
            idx = np.searchsorted(ids, targets, side="left")
            idx[idx == len(ids)] = 0
            fingers = ids[idx].tolist()
            if len(self._finger_cache) < self.FINGER_CACHE_CAP:
                self._finger_cache[node_id] = fingers
        return fingers

    def _closest_preceding(self, node_id: int, key_id: int) -> int:
        """Greedy step: the farthest finger of ``node_id`` preceding key."""
        if self.fast_paths:
            # Memoized fingers + the interval test inlined: this probes
            # up to ``bits`` fingers per routing step, making it the
            # walk's innermost loop.
            if node_id < key_id:
                for finger in self._fingers(node_id):
                    if node_id < finger < key_id:
                        return finger
            else:
                for finger in self._fingers(node_id):
                    if finger > node_id or finger < key_id:
                        return finger
            return node_id
        space = 1 << self.bits
        for i in range(self.bits - 1, -1, -1):
            finger = self._successor_node((node_id + (1 << i)) % space).node_id
            if self._in_open_interval(finger, node_id, key_id, space):
                return finger
        return node_id

    def lookup(self, key: str, from_peer: int) -> Tuple[ChordNode, int]:
        """Route from ``from_peer`` to the node holding ``key``.

        Returns ``(responsible node, hop count)``; hop count is the
        number of application-level forwardings (0 when the start node is
        itself responsible).
        """
        if not self._ids:
            raise RuntimeError("ring is empty")
        start_id = self._peer_to_id.get(from_peer)
        if start_id is None:
            # A peer outside the ring bootstraps through its hashed
            # position: one extra hop to whoever is responsible there.
            start_id = self._successor_node(self.node_id_for(from_peer)).node_id
        cache = self._route_cache if self.fast_paths else None
        if cache is not None:
            cache.check_generation(self.generation)
            entry = cache.get((key, start_id))
            if entry is not None:
                hops, target = entry
                cache.stats.hits += 1
                tel = self.telemetry
                if tel is not None:
                    tel.metrics.counter("cache.route.hits").inc()
                self._account_lookup(key, from_peer, hops)
                return self._nodes[target], hops
            cache.stats.misses += 1
            tel = self.telemetry
            if tel is not None:
                tel.metrics.counter("cache.route.misses").inc()
        target, hops = self._walk(key, start_id, cache)
        self._account_lookup(key, from_peer, hops)
        return self._nodes[target], hops

    def _walk(self, key: str, start_id: int, cache) -> Tuple[int, int]:
        """The greedy finger walk from ``start_id``; ``(target, hops)``.

        With a route memo the walk short-circuits at the first node whose
        remaining distance is cached, and afterwards every node it
        visited is memoized (the greedy next hop depends only on the
        current node and the key, so the suffix distances are exact).
        """
        key_id = self.key_id(key)
        space = 1 << self.bits
        hops = 0
        current = start_id
        target = self._responsible_id(key_id)
        trail: List[int] = []
        # Greedy finger walk until the key falls between us and our
        # successor (then one final hop to the successor).
        while current != target:
            if cache is not None:
                if hops:  # the caller already probed the start node
                    entry = cache.get((key, current))
                    if entry is not None:
                        hops += entry[0]
                        current = target
                        break
                trail.append(current)
            succ = self._successor_node((current + 1) % space).node_id
            if succ == target and (
                self._in_open_interval(key_id, current, succ, space)
                or key_id == succ
            ):
                current = succ
                hops += 1
                break
            nxt = self._closest_preceding(current, key_id)
            if nxt == current:
                current = succ
            else:
                current = nxt
            hops += 1
        if cache is not None:
            cache.put((key, target), (0, target))
            for i, node_id in enumerate(trail):
                cache.put((key, node_id), (hops - i, target))
        return current, hops

    def _account_lookup(self, key: str, from_peer: int, hops: int) -> None:
        """Per-lookup statistics + telemetry, identical cached/uncached."""
        self.n_lookups += 1
        self.total_hops += hops
        tel = self.telemetry
        if tel is not None:
            tel.metrics.counter("lookup.count").inc()
            tel.metrics.histogram("lookup.hops").observe(hops)
            tel.bus.emit(
                "lookup.done",
                key=key, from_peer=from_peer, hops=hops, protocol="chord",
            )

    def note_cached_lookup(self, key: str, from_peer: int, hops: int) -> None:
        """Account a lookup served from a value-layer cache upstream.

        The registry's record cache answers a read without touching the
        ring; this replays exactly the statistics and telemetry the
        routed walk would have produced (same ``lookup.done`` event, same
        hop count), keeping seeded exports byte-identical.
        """
        self._account_lookup(key, from_peer, hops)

    def cached_route_hops(self, key: str, from_peer: int) -> Optional[int]:
        """The exact hop count a routed lookup would report, if memoized.

        With a fixed membership the greedy walk is a pure function of
        (key, start node), so the answer is *exact* by construction:
        either the route memo already holds the start node's remaining
        distance, or a dry walk (no statistics, no telemetry, no store
        access -- it only extends the memo, which is metrics-invisible)
        computes it, short-circuiting at the first memoized trail node.
        The registry's value-layer cache uses this to serve repeated
        reads of an unchanged record from *any* requester while
        replaying byte-identical ``lookup.done`` telemetry.
        """
        if not self.fast_paths or not self._ids:
            return None
        start_id = self._peer_to_id.get(from_peer)
        if start_id is None:
            start_id = self._successor_node(self.node_id_for(from_peer)).node_id
        cache = self._route_cache
        cache.check_generation(self.generation)
        entry = cache.get((key, start_id))
        if entry is not None:
            return entry[0]
        _, hops = self._walk(key, start_id, cache)
        return hops

    @property
    def route_cache_stats(self):
        return self._route_cache.stats

    def get(self, key: str, from_peer: int) -> Tuple[Any, int]:
        """Routed read: ``(value or None, hops)``."""
        node, hops = self.lookup(key, from_peer)
        return node.store.get(key), hops

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.n_lookups if self.n_lookups else 0.0
