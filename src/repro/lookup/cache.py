"""Bounded, generation-invalidated caches for the discovery fast paths.

The discovery plane re-walks the DHT for records that only change on
churn.  These helpers make repeated lookups O(1) wall-clock while
keeping the *simulated* semantics byte-identical:

* :class:`BoundedCache` -- an LRU-evicting mapping with a hard size cap
  and hit/miss accounting, plus a **generation** tag.  Membership events
  (ring ``join``/``leave``) bump the owner's generation counter; a cache
  whose generation does not match the ring's is cleared wholesale before
  use, so no entry can survive a membership change.
* :class:`CacheStats` -- plain hit/miss counters shared by every cache
  site (route memo, record cache, QCS edge cache).
* :func:`trim_mapping` -- cap an ordinary dict used as an insertion-
  ordered memo (the QCS edge/cost caches keep their zero-overhead plain
  dict hot loops; the cap is enforced between compositions).

None of these draw RNG, advance the simulator or emit bus events --
instrumentation is metrics-counters only, so a cached run's telemetry
JSONL export stays byte-identical to an uncached one (the differential
test in ``tests/perf/test_fast_paths.py`` proves it).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional

__all__ = ["CacheStats", "BoundedCache", "trim_mapping"]


class CacheStats:
    """Hit/miss tallies for one cache site."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.total
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CacheStats hits={self.hits} misses={self.misses} "
                f"rate={self.hit_rate:.1%}>")


class BoundedCache:
    """An LRU mapping with a size cap and a generation tag.

    The owner decides what a generation means (for the DHT route memos
    it is the ring-membership counter).  :meth:`check_generation` clears
    the cache when the tag moved, which is the *only* invalidation the
    route memos need: every entry is a pure function of (key, membership).

    Hit/miss accounting is explicit (``stats``) rather than implicit in
    :meth:`get`, because call sites count at different granularities --
    the Chord walk probes the memo once per visited node but records one
    hit/miss per *lookup*.
    """

    __slots__ = ("cap", "generation", "stats", "_data")

    def __init__(self, cap: int) -> None:
        if cap < 1:
            raise ValueError("cache cap must be positive")
        self.cap = cap
        self.generation: Optional[int] = None
        self.stats = CacheStats()
        self._data: Dict[Hashable, Any] = {}

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def check_generation(self, generation: int) -> None:
        """Clear everything if the owner's generation moved."""
        if generation != self.generation:
            self._data.clear()
            self.generation = generation

    def get(self, key: Hashable) -> Optional[Any]:
        """The cached value (refreshed to most-recently-used) or None."""
        data = self._data
        value = data.get(key)
        if value is not None:
            # Move-to-end keeps eviction LRU (dicts preserve insertion
            # order, so re-inserting refreshes the entry's position).
            del data[key]
            data[key] = value
        return value

    def put(self, key: Hashable, value: Any) -> None:
        data = self._data
        if key in data:
            del data[key]
        elif len(data) >= self.cap:
            data.pop(next(iter(data)))
        data[key] = value

    def clear(self) -> None:
        self._data.clear()


def trim_mapping(mapping: Dict, cap: int) -> int:
    """Evict oldest-inserted entries of a plain-dict memo down to ``cap``.

    Returns the number of evictions.  Used for the QCS edge/cost caches,
    whose hot loops stay plain ``dict.get``/``[]=`` -- the cap is
    enforced once per composition instead of per access.
    """
    overflow = len(mapping) - cap
    if overflow <= 0:
        return 0
    victims = []
    for key in mapping:
        victims.append(key)
        if len(victims) == overflow:
            break
    for key in victims:
        del mapping[key]
    return overflow
