"""The P2P computing grid facade: every subsystem wired together.

:class:`P2PGrid` assembles the simulation kernel, the peer population,
the network model, the service catalog, the Chord-backed registry, the
probing service, the session ledger and the churn machinery into one
object, and manufactures the three §4.1 aggregation algorithms
(``qsa`` / ``random`` / ``fixed``) against it.

This is the main entry point of the library::

    from repro import GridConfig, P2PGrid

    grid = P2PGrid(GridConfig(n_peers=500, seed=1))
    qsa = grid.make_aggregator("qsa")
    request = grid.make_request(application="video-on-demand",
                                qos_level="high", duration=10.0)
    result = qsa.aggregate(request)
    grid.sim.run(until=60.0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.sim.sanitizer import Sanitizer

import numpy as np

from repro.core.aggregation import BaseAggregator, QSAAggregator
from repro.core.baselines import FixedAggregator, RandomAggregator
from repro.core.resources import ResourceVector, WeightProfile
from repro.core.selection import PhiWeights
from repro.faults.backoff import RetryPolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.lookup.can import CanNetwork
from repro.lookup.chord import ChordRing
from repro.lookup.registry import ServiceRegistry
from repro.network.churn import ChurnConfig, ChurnProcess
from repro.network.peer import Peer, PeerDirectory
from repro.network.soa import SoAPeerDirectory
from repro.network.topology import NetworkModel
from repro.probing.prober import ProbingConfig, ProbingService
from repro.services.applications import (
    ApplicationTemplate,
    default_applications,
)
from repro.services.catalog import CatalogConfig, ServiceCatalog, generate_catalog
from repro.services.qoscompiler import QoSCompiler, UserRequest
from repro.services.translator import AnalyticTranslator
from repro.core.selection import PeerSelector
from repro.sessions.recovery import RecoveryConfig, RecoveryManager
from repro.sessions.session import Session, SessionLedger
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer
from repro.telemetry import Telemetry

__all__ = ["GridConfig", "P2PGrid"]


@dataclass(frozen=True)
class GridConfig:
    """Grid-wide parameters; defaults are a laptop-scale version of §4.1.

    Set ``n_peers=10_000`` (and the experiment horizons accordingly) for
    the paper's full scale.
    """

    #: Number of peers at start (paper: 10^4).
    n_peers: int = 2000
    #: End-system resource dimensions (paper: [cpu, memory]).
    resource_names: Tuple[str, ...] = ("cpu", "memory")
    #: A peer's capacity scale is uniform in this range; both dimensions
    #: share the scale (laptop [100,100] ... cluster server [1000,1000]).
    capacity_range: Tuple[float, float] = (100.0, 1000.0)
    #: Aggregate first-hop capacity per peer (bps).  The paper's pairwise
    #: bottleneck classes carry the bandwidth heterogeneity; this uniform
    #: per-peer cap only bounds how many concurrent flows one peer can
    #: terminate (DESIGN.md §4).
    access_capacity: float = 10e6
    #: Peers start with a random prior uptime in [0, this] minutes so the
    #: uptime signal is informative from t = 0.
    initial_uptime_max: float = 120.0
    #: Probing/neighborhood parameters (paper: M = 100, 1-minute period).
    probing: ProbingConfig = field(default_factory=ProbingConfig)
    #: Catalog generation parameters (instances/replicas per §4.1).
    catalog: CatalogConfig = field(default_factory=CatalogConfig)
    #: Churn parameters; ``None`` or rate 0 disables topological variation.
    churn: Optional[ChurnConfig] = None
    #: Runtime failure recovery (the paper's future work, implemented);
    #: ``None`` gives the paper's baseline behaviour -- any provisioning
    #: peer departing fails the whole session.
    recovery: Optional[RecoveryConfig] = None
    #: Discovery substrate: ``"chord"`` or ``"can"`` (§3.2: "Chord [20]
    #: or CAN [16]").
    lookup_protocol: str = "chord"
    #: Chord identifier-space width.
    chord_bits: int = 32
    #: CAN torus dimensionality.
    can_dimensions: int = 3
    #: Application templates for the catalog; ``None`` = the paper's ten
    #: (:func:`repro.services.applications.default_applications`).  An
    #: explicit ``applications=`` argument to :class:`P2PGrid` overrides
    #: both.
    applications: Optional[Tuple[ApplicationTemplate, ...]] = None
    #: Structured event tracing (``grid.tracer``); off by default so the
    #: hot path of large experiments stays allocation-free.
    tracing: bool = False
    #: Retain at most this many trace events (None = unbounded).
    trace_capacity: Optional[int] = 100_000
    #: Full telemetry (``grid.telemetry``): event-bus recording, the
    #: metrics registry and span tracing across every subsystem.  Off by
    #: default -- the bus then runs dispatch-only (request/session events
    #: still reach the metrics layer) and hot paths pay one ``None``
    #: check, nothing more.
    telemetry: bool = False
    #: Retain at most this many bus events (None = unbounded).
    telemetry_capacity: Optional[int] = None
    #: Discovery-plane fast paths: generation-invalidated route memos in
    #: the DHTs, the registry's record cache + batched discovery, and the
    #: prober's fresh-entry resolution skip.  Semantics are byte-identical
    #: on or off (seeded telemetry exports, ψ, hop counts -- proven by the
    #: differential test); off trades wall-clock speed for simpler
    #: debugging.  See docs/performance.md.
    fast_paths: bool = True
    #: QCS composition kernel for the ``qsa`` aggregator:
    #: ``"vectorized"`` (numpy candidate matrices + incremental
    #: consistency index, see repro.core.composition_vec), ``"dp"``
    #: (reference layered-DAG sweep) or ``"dijkstra"`` (the paper's
    #: formulation).  All three are exact-equivalent (bit-identical
    #: paths, scores and telemetry -- proven by
    #: tests/core/test_composition_equivalence.py); the vectorized
    #: kernel additionally requires ``fast_paths`` and degrades to the
    #: reference DP when the gate is off.
    composition_kernel: str = "vectorized"
    #: Peer-state representation: ``"soa"`` (struct-of-arrays
    #: :class:`repro.network.soa.PeerStore` -- contiguous numpy state
    #: matrices driving vectorized selection/probing/admission planes)
    #: or ``"object"`` (one Python ``Peer`` per host -- the differential
    #: oracle).  Both produce byte-identical telemetry per seed (proven
    #: by tests/perf/test_soa_differential.py); ``"soa"`` is the scale
    #: backend the 10^4..10^5-peer scenarios require.
    peer_state_backend: str = "soa"
    #: Fault injection plan; ``None`` (or an empty plan) keeps every
    #: substrate operation reliable and the fast paths fault-check-free.
    faults: Optional[FaultPlan] = None
    #: Retry budget + backoff for faulted DHT lookups.
    lookup_retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Retry budget + backoff for transient admission failures.
    admission_retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Determinism sanitizer (``grid.sanitizer``): per-stream RNG draw
    #: ledger with epoch state hashes, plus a write barrier around peer
    #: and session mutations.  Off by default -- when off, streams are
    #: raw generators and no hook is ever consulted, so telemetry stays
    #: byte-identical.  See docs/static-analysis.md ("The determinism
    #: contract") and ``repro sanitize``.
    sanitize: bool = False
    #: Sim-time width of one sanitizer checkpoint epoch (minutes).
    sanitize_epoch: float = 5.0
    #: Root seed for every RNG stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_peers < 2:
            raise ValueError("need at least two peers")
        lo, hi = self.capacity_range
        if not 0 < lo <= hi:
            raise ValueError(f"bad capacity range ({lo}, {hi})")
        if self.composition_kernel not in ("vectorized", "dp", "dijkstra"):
            raise ValueError(
                f"unknown composition kernel {self.composition_kernel!r} "
                "(vectorized/dp/dijkstra)"
            )
        if self.peer_state_backend not in ("soa", "object"):
            raise ValueError(
                f"unknown peer state backend {self.peer_state_backend!r} "
                "(soa/object)"
            )


class P2PGrid:
    """A fully wired peer-to-peer computing grid simulation."""

    def __init__(
        self,
        config: GridConfig | None = None,
        applications: Optional[Sequence[ApplicationTemplate]] = None,
    ) -> None:
        self.config = config = config or GridConfig()
        self.sim = Simulator()
        #: Optional determinism sanitizer; must exist before the RNG
        #: factory (streams are wrapped at creation) and before the
        #: first peer spawn (the write barrier sees every mutation).
        self.sanitizer: Optional[Sanitizer] = None
        if config.sanitize:
            from repro.sim.sanitizer import Sanitizer as _Sanitizer

            self.sanitizer = _Sanitizer(
                clock=lambda: self.sim.now, epoch=config.sanitize_epoch
            )
            self.sanitizer.begin(config.seed)
        self.rngs = RngStreams(config.seed, sanitizer=self.sanitizer)
        self.applications = list(
            applications or config.applications or default_applications()
        )
        self.translator = AnalyticTranslator(config.resource_names)

        # -- peers -------------------------------------------------------
        if config.peer_state_backend == "soa":
            self.directory = SoAPeerDirectory(
                config.resource_names, initial_rows=config.n_peers
            )
        else:
            self.directory = PeerDirectory(config.resource_names)
        self.directory.sanitizer = self.sanitizer
        peer_rng = self.rngs.stream("peers")
        for _ in range(config.n_peers):
            self._spawn_peer_inner(
                joined_at=-float(peer_rng.uniform(0, config.initial_uptime_max)),
                rng=peer_rng,
            )

        # -- network ---------------------------------------------------------
        self.network = NetworkModel(self.directory, seed=config.seed)

        # -- services ----------------------------------------------------------
        self.catalog: ServiceCatalog = generate_catalog(
            self.applications,
            self.directory.alive_ids,
            self.rngs.stream("catalog"),
            config.catalog,
            self.translator,
        )
        self.compiler = QoSCompiler.from_templates(self.applications)

        # -- lookup -------------------------------------------------------------
        if config.lookup_protocol == "chord":
            self.ring = ChordRing(bits=config.chord_bits, seed=config.seed)
        elif config.lookup_protocol == "can":
            self.ring = CanNetwork(
                dimensions=config.can_dimensions, seed=config.seed
            )
        else:
            raise ValueError(
                f"unknown lookup protocol {config.lookup_protocol!r} "
                "(chord/can)"
            )
        self.ring.fast_paths = config.fast_paths
        for pid in self.directory.alive_ids:
            self.ring.join(pid)
        self.registry = ServiceRegistry(self.ring, self.catalog)
        self.registry.fast_paths = config.fast_paths

        # -- tracing -----------------------------------------------------------
        self.tracer = (
            Tracer.for_simulator(self.sim, config.trace_capacity)
            if config.tracing
            else None
        )

        # -- telemetry ---------------------------------------------------------
        #: Always present: the bus carries the request/session events the
        #: metrics layer subscribes to.  Hot-path instrumentation sites
        #: receive the handle only when enabled (``_tel`` is None
        #: otherwise), so disabled runs record and measure nothing.
        self.telemetry = Telemetry.for_simulator(
            self.sim,
            enabled=config.telemetry,
            capacity=config.telemetry_capacity,
        )
        _tel = self.telemetry if config.telemetry else None
        self.ring.telemetry = _tel
        self.registry.telemetry = _tel

        # -- fault injection ---------------------------------------------------
        #: One injector per run when a non-empty plan is configured; every
        #: hardened subsystem shares it (and its dedicated RNG stream), so
        #: the same (seed, plan) pair replays the same faults.
        self.injector: Optional[FaultInjector] = None
        if config.faults is not None and config.faults.active:
            self.injector = FaultInjector(
                self.sim,
                config.faults,
                self.rngs.stream("faults"),
                telemetry=_tel,
            )
            self.registry.configure_faults(self.injector, config.lookup_retry)

        # -- probing & sessions ----------------------------------------------
        self.probing = ProbingService(
            self.sim, self.directory, self.network, config.probing,
            telemetry=_tel,
            injector=self.injector,
        )
        self.probing.fast_paths = config.fast_paths
        self.session_observers: List[Callable[[Session], None]] = []
        self.ledger = SessionLedger(
            self.sim,
            self.directory,
            self.network,
            self._on_session_outcome,
            tracer=self.tracer,
            telemetry=_tel,
            injector=self.injector,
            admission_retry=config.admission_retry,
        )
        self.ledger.sanitizer = self.sanitizer

        # -- weights (Def. 3.1 normalizers from the translator's envelope) --
        self.composition_weights = WeightProfile.uniform(
            config.resource_names,
            resource_maxima=[self.translator.max_resource_demand()]
            * len(config.resource_names),
            bandwidth_max=self.translator.max_bandwidth_demand(),
        )
        self.phi_weights = PhiWeights.uniform(config.resource_names)

        # -- runtime failure recovery (optional extension) -------------------
        self.recovery: Optional[RecoveryManager] = None
        if config.recovery is not None and config.recovery.enabled:
            self.recovery = RecoveryManager(
                self.sim,
                self.directory,
                self.network,
                self.ledger,
                PeerSelector(self.probing, self.phi_weights, telemetry=_tel),
                hosts_of=lambda iid: sorted(self.catalog.hosts(iid)),
                resolve_neighbors=self.probing.resolve_selection_hops,
                rng=self.rngs.stream("recovery"),
                config=config.recovery,
                telemetry=_tel,
                injector=self.injector,
            )

        # -- churn ----------------------------------------------------------------
        self.churn: Optional[ChurnProcess] = None
        if config.churn is not None and config.churn.rate_per_min > 0:
            self.churn = ChurnProcess(
                self.sim,
                self.directory,
                config.churn,
                spawn_peer=self._spawn_peer_churn,
                on_departure=self._on_peer_departure,
                rng=self.rngs.stream("churn"),
                telemetry=_tel,
            )
            self.churn.start()

        self._next_request_id = 0

    # -- peer lifecycle ----------------------------------------------------------
    def _spawn_peer_inner(self, joined_at: float, rng: np.random.Generator) -> Peer:
        lo, hi = self.config.capacity_range
        scale = float(rng.uniform(lo, hi))
        capacity = ResourceVector(
            self.config.resource_names,
            np.full(len(self.config.resource_names), scale),
        )
        return self.directory.create_peer(
            capacity, self.config.access_capacity, joined_at
        )

    def _spawn_peer_churn(self, now: float) -> Peer:
        """Arrival under churn: resources + replicas + ring membership."""
        rng = self.rngs.stream("churn-arrivals")
        peer = self._spawn_peer_inner(joined_at=now, rng=rng)
        self.catalog.assign_new_peer(peer.peer_id, rng)
        self.registry.peer_joined(
            peer.peer_id, self.catalog.hosted_instances(peer.peer_id)
        )
        if self.tracer is not None:
            self.tracer.emit("peer-arrived", peer=peer.peer_id)
        return peer

    def _on_peer_departure(self, peer_id: int) -> None:
        """Departure: fail/repair sessions, clean replicas/registry/probing."""
        if self.tracer is not None:
            self.tracer.emit("peer-departed", peer=peer_id)
        if self.injector is not None:
            # stale_state faults: the departed peer's soft state may
            # linger in observers' tables (decided before cleanup runs).
            self.injector.note_departure(peer_id)
        if self.recovery is not None:
            self.recovery.on_peer_departure(peer_id)
        else:
            self.ledger.fail_peer(peer_id)
        hosted = set(self.catalog.hosted_instances(peer_id))
        self.catalog.remove_peer(peer_id)
        self.registry.peer_departed(peer_id, hosted)
        self.probing.drop_peer(peer_id)

    # -- sessions ---------------------------------------------------------------
    def _on_session_outcome(self, session: Session) -> None:
        self.telemetry.bus.emit(
            "session.resolved",
            session_id=session.session_id,
            request_id=session.request_id,
            state=session.state.value,
            reason=session.failure_reason,
        )
        for observer in self.session_observers:
            observer(session)

    def on_session_outcome(self, observer: Callable[[Session], None]) -> None:
        """Register a callback fired at every session completion/failure."""
        self.session_observers.append(observer)

    # -- requests ---------------------------------------------------------------
    def make_request(
        self,
        application: str,
        qos_level: str = "average",
        duration: float = 10.0,
        peer_id: Optional[int] = None,
        out_format: Optional[str] = None,
    ) -> UserRequest:
        """Build a request at the current simulated time."""
        rng = self.rngs.stream("requests")
        if peer_id is None:
            ids = self.directory.alive_ids
            peer_id = ids[int(rng.integers(len(ids)))]
        req = UserRequest(
            request_id=self._next_request_id,
            peer_id=peer_id,
            application=application,
            qos_level=qos_level,
            session_duration=duration,
            arrival_time=self.sim.now,
            out_format=out_format,
        )
        self._next_request_id += 1
        return req

    # -- aggregators ---------------------------------------------------------------
    def make_aggregator(self, name: str, **options) -> BaseAggregator:
        """Build one of the §4.1 algorithms: ``qsa``, ``random``, ``fixed``.

        ``qsa`` accepts ``uptime_filter`` (bool) and ``composition_method``
        (``"dp"``/``"dijkstra"``) keyword options for the ablations.
        """
        rng = self.rngs.stream(f"aggregator-{name}")
        aggregator = self._build_aggregator(name, rng, options)
        aggregator.fast_paths = self.config.fast_paths
        aggregator.tracer = self.tracer
        aggregator.bus = self.telemetry.bus
        _tel = self.telemetry if self.config.telemetry else None
        aggregator.telemetry = _tel
        selector = getattr(aggregator, "selector", None)
        if selector is not None and _tel is not None:
            selector.telemetry = _tel
        return aggregator

    def _build_aggregator(self, name, rng, options) -> BaseAggregator:
        if name == "qsa":
            return QSAAggregator(
                self.compiler,
                self.registry,
                self.directory,
                self.ledger,
                self.probing,
                self.composition_weights,
                options.pop("phi_weights", self.phi_weights),
                rng,
                uptime_filter=options.pop("uptime_filter", True),
                composition_method=options.pop(
                    "composition_method", self.config.composition_kernel
                ),
            )
        if name == "random":
            return RandomAggregator(
                self.compiler, self.registry, self.directory, self.ledger,
                self.composition_weights, rng,
            )
        if name == "fixed":
            return FixedAggregator(
                self.compiler, self.registry, self.directory, self.ledger,
                self.composition_weights, rng,
            )
        raise ValueError(f"unknown aggregator {name!r} (qsa/random/fixed)")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<P2PGrid {self.directory.n_alive} peers, "
            f"{self.catalog.n_instances} instances, t={self.sim.now:.1f}min>"
        )
