"""The rule registry: how invariant checks plug into the lint engine.

A *rule* encodes one repo-specific invariant as a class with a stable
id (``DET001``, ``TEL001``, ...).  Registration is one decorator::

    from repro.analysis.registry import Rule, register

    @register
    class NoSleep(Rule):
        id = "DET004"
        name = "no-thread-sleep"
        invariant = "sim code never blocks the OS thread"

        def check(self, ctx):
            for node in ctx.walk(ast.Call):
                if ctx.call_chain(node) == ("time", "sleep"):
                    yield ctx.finding(self, node, "time.sleep() blocks ...")

and a future PR's new check is ~30 lines: subclass, decorate, drop the
module next to the others in :mod:`repro.analysis.rules` (imported by
that package's ``__init__``), write one fixture test.

Two hooks:

``check(ctx)``
    Per-file pass over one parsed module (see
    :class:`repro.analysis.engine.FileContext`).  Runs in a worker
    process when the scan is parallel, so findings must come from
    ``ctx``/the AST alone.
``finalize(project)``
    Optional whole-scan pass in the parent process, after every file
    was checked.  ``project`` carries the merged ``ctx.contribute``
    payloads -- this is how TEL001 does its cross-file dead-event check.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Type

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import FileContext, Finding, ProjectState

__all__ = ["Rule", "register", "all_rules", "get_rule", "load_rules"]


class Rule:
    """Base class: one invariant, one stable id."""

    #: Stable identifier used in output, ``--select``/``--disable`` and
    #: ``# lint: disable=`` pragmas.
    id: str = ""
    #: Short kebab-case label for ``--list-rules``.
    name: str = ""
    #: One-line statement of the invariant the rule protects.
    invariant: str = ""

    def applies(self, ctx: "FileContext") -> bool:
        """Whether this file is in the rule's scope (default: yes)."""
        return True

    def check(self, ctx: "FileContext") -> Iterable["Finding"]:
        """Yield findings for one parsed file."""
        return ()

    def finalize(self, project: "ProjectState") -> Iterable["Finding"]:
        """Yield whole-scan findings after all files were checked."""
        return ()


_RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and index the rule by its id."""
    rule = cls()
    if not rule.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if rule.id in _RULES and type(_RULES[rule.id]) is not cls:
        raise ValueError(f"duplicate rule id {rule.id}")
    _RULES[rule.id] = rule
    return cls


def load_rules() -> None:
    """Import the built-in rule modules (idempotent)."""
    import repro.analysis.rules  # noqa: F401  (import-for-registration)


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id (stable output order)."""
    load_rules()
    return [_RULES[rid] for rid in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    load_rules()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_RULES))}"
        ) from None
