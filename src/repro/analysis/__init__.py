"""Static analysis for the QSA stack: the ``repro lint`` subsystem.

The paper's results only reproduce when every seeded run is
bit-deterministic, the telemetry stream is byte-stable, and the
discovery fast paths stay exact.  Those invariants were previously
enforced by convention plus differential tests; this package makes them
machine-checked:

* :mod:`repro.analysis.engine` -- AST scan engine: discovery, pragmas,
  process-parallel file checks, text/JSON reports.
* :mod:`repro.analysis.registry` -- the plugin registry rules hook into.
* :mod:`repro.analysis.rules` -- the built-in rules (DET001/2/3,
  TEL001, CACHE001).

CLI: ``repro lint [paths ...] [--format json] [--select/--disable RULE]``.
Docs: docs/static-analysis.md (rule ids, pragma syntax, adding rules).
"""

from __future__ import annotations

from repro.analysis.engine import (
    Finding,
    LintReport,
    iter_python_files,
    lint_paths,
)
from repro.analysis.registry import Rule, all_rules, get_rule, register

__all__ = [
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "register",
]
