"""Per-file dataflow facts for the whole-program determinism pass.

One extraction (:func:`extract_facts`) walks the parsed file once and
produces everything the cross-module rules consume:

* **Stream uses** -- where seeded-RNG streams (``RngStreams.stream``
  calls from :mod:`repro.sim.rng`) are *drawn from* or *handed off* to
  another subsystem.  A handoff is a stream expression (or a local
  variable bound to one) passed as an argument to a call whose callee
  resolves through the import table to another ``repro`` module; the
  use is then attributed to the *receiving* module's plane.  Calls on
  ``self``/locally-defined helpers stay attributed to the current
  module.  This is deliberately one-hop and syntactic: it is exact for
  the repo's wiring style (streams created at composition roots and
  handed to exactly one subsystem constructor) and it degrades to the
  conservative "held here" answer otherwise.
* **Module-level mutable state** -- names bound at module scope to
  mutable containers or constructed singletons, mutation sites inside
  function bodies (method mutators, subscript stores, ``global``
  rebinding), and cross-module references to such names.
* **Set-typed returns** -- public functions/methods whose return value
  is statically set-typed (annotation or returned expression), the raw
  material for TEL002's escape check.

Known approximations (also documented in docs/static-analysis.md):
streams created on a *call result* (``RngStreams(seed).stream(...)``)
have no receiver chain and are not tracked; f-string stream names are
tracked as ``prefix-*`` wildcards and never aliased against concrete
names; variables are tracked one assignment deep within one function
scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    ModuleFacts,
    module_name_of_pkg,
    plane_of_module,
)
from repro.analysis.engine import FileContext

__all__ = [
    "STREAM_FACTS_KEY",
    "STATE_FACTS_KEY",
    "SET_RETURN_FACTS_KEY",
    "StreamUse",
    "StateDef",
    "StateFacts",
    "SetReturn",
    "FileFacts",
    "extract_facts",
]

STREAM_FACTS_KEY = "wp:stream-uses"
STATE_FACTS_KEY = "wp:state-facts"
SET_RETURN_FACTS_KEY = "wp:set-returns"

#: Receiver-chain components that mark a ``.stream(...)`` call as a
#: seeded-RNG stream access (vs an unrelated ``stream`` method).
_RNG_HINTS = ("rng", "rngs", "streams")

#: Mutating container methods; calling one on module-level state from a
#: function body is a runtime mutation.
_MUTATORS = frozenset({
    "append", "appendleft", "add", "update", "pop", "popitem", "clear",
    "extend", "insert", "remove", "discard", "setdefault", "popleft",
})

#: Constructor names whose module-level call result is mutable state.
_MUTABLE_CONSTRUCTORS = frozenset({
    "dict", "list", "set", "bytearray", "deque", "defaultdict",
    "Counter", "OrderedDict", "ChainMap",
})

#: CamelCase module-level constructor calls that are NOT shared mutable
#: state (typing/dataclass machinery, immutable values).
_SINGLETON_EXEMPT = frozenset({
    "TypeVar", "ParamSpec", "TypeVarTuple", "NamedTuple", "NewType",
    "Path", "Decimal", "Fraction", "Enum", "IntEnum", "Flag",
})

_SET_ANNOTATIONS = frozenset({"set", "Set", "frozenset", "FrozenSet",
                              "AbstractSet", "MutableSet", "KeysView"})


@dataclass(frozen=True)
class StreamUse:
    """One place a named RNG stream is drawn from or handed to."""

    stream: str
    module: str
    plane: str
    rel: str
    lineno: int
    via: str  # "draw" | "handoff"


@dataclass(frozen=True)
class StateDef:
    """One module-level mutable binding."""

    module: str
    name: str
    rel: str
    lineno: int
    kind: str  # "container" | "singleton"


@dataclass(frozen=True)
class StateFacts:
    """One file's shared-state picture for SHARD001."""

    defs: Tuple[StateDef, ...]
    #: (owning module, name) pairs mutated from function bodies here.
    mutations: Tuple[Tuple[str, str], ...]
    #: (owning module, name, referrer module) triples: names this module
    #: binds or reads from other repro modules.
    refs: Tuple[Tuple[str, str, str], ...]


@dataclass(frozen=True)
class SetReturn:
    """A public function returning a statically set-typed value."""

    module: str
    plane: str
    qualname: str
    rel: str
    lineno: int


@dataclass(frozen=True)
class FileFacts:
    module: str
    plane: str
    module_facts: ModuleFacts
    stream_uses: Tuple[StreamUse, ...]
    state: StateFacts
    set_returns: Tuple[SetReturn, ...]


# -- extraction ------------------------------------------------------------

def extract_facts(ctx: FileContext) -> Optional[FileFacts]:
    """Extract (and memoize on ``ctx``) the whole-program facts.

    Returns None for files outside the repro package -- tests and
    benchmarks carry no shard-boundary obligations.
    """
    cached = getattr(ctx, "_wp_facts", None)
    if cached is not None:
        return cached  # type: ignore[no-any-return]
    if ctx.pkg is None or ctx.is_tests or ctx.is_benchmarks:
        return None
    module = module_name_of_pkg(ctx.pkg)
    if module is None:
        return None
    plane = plane_of_module(module) or "top"

    parents = _parent_map(ctx.tree)
    imports = _repro_imports(ctx)
    mfacts = ModuleFacts(module=module, plane=plane, rel=ctx.rel,
                         imports=tuple(sorted(imports)))
    facts = FileFacts(
        module=module,
        plane=plane,
        module_facts=mfacts,
        stream_uses=tuple(_stream_uses(ctx, module, plane, parents)),
        state=_state_facts(ctx, module, parents),
        set_returns=tuple(_set_returns(ctx, module, plane, parents)),
    )
    setattr(ctx, "_wp_facts", facts)
    return facts


def contribute_facts(ctx: FileContext) -> Optional[FileFacts]:
    """Contribute the file's facts to the project state exactly once."""
    facts = extract_facts(ctx)
    if facts is None or getattr(ctx, "_wp_contributed", False):
        return facts
    setattr(ctx, "_wp_contributed", True)
    from repro.analysis.callgraph import MODULE_FACTS_KEY

    ctx.contribute(MODULE_FACTS_KEY, facts.module_facts)
    for use in facts.stream_uses:
        ctx.contribute(STREAM_FACTS_KEY, use)
    ctx.contribute(STATE_FACTS_KEY, facts.state)
    for ret in facts.set_returns:
        ctx.contribute(SET_RETURN_FACTS_KEY, ret)
    return facts


def _parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    return {
        child: parent
        for parent in ast.walk(tree)
        for child in ast.iter_child_nodes(parent)
    }


def _repro_imports(ctx: FileContext) -> Set[str]:
    """Dotted repro modules this file imports (either import form)."""
    out: Set[str] = set()
    for node in ctx.walk(ast.Import, ast.ImportFrom):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    out.add(alias.name)
        else:
            mod = node.module or ""
            if mod == "repro" or mod.startswith("repro."):
                out.add(mod)
    return out


def _scope_of(node: ast.AST,
              parents: Dict[ast.AST, ast.AST]) -> Optional[ast.AST]:
    """Nearest enclosing function node (None at module/class level)."""
    current = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = parents.get(current)
    return None


def _in_function(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    return _scope_of(node, parents) is not None


# -- stream tracking -------------------------------------------------------

def _stream_key(call: ast.Call) -> Optional[str]:
    """The stream name of an ``<rng>.stream(...)`` call, or None."""
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        literal = "".join(
            part.value for part in arg.values
            if isinstance(part, ast.Constant) and isinstance(part.value, str)
        )
        return f"{literal}*"
    return None


def _is_stream_call(ctx: FileContext, call: ast.Call) -> bool:
    chain = ctx.call_chain(call)
    if len(chain) < 2 or chain[-1] != "stream":
        return False
    return any(
        hint in part.lower() for part in chain[:-1] for hint in _RNG_HINTS
    )


def _resolve_callee_module(ctx: FileContext, call: ast.Call,
                           current: str) -> str:
    """Module receiving a handoff (conservative: the current module)."""
    chain = ctx.call_chain(call)
    if not chain:
        return current
    head = chain[0]
    if head in ("self", "cls"):
        return current
    if len(chain) == 1:
        target = ctx.imported_names.get(head, "")
        if target.startswith("repro"):
            return target.rsplit(".", 1)[0]
        return current
    mod = ctx.imports.get(head, "")
    if mod.startswith("repro"):
        return mod
    target = ctx.imported_names.get(head, "")
    if target.startswith("repro"):
        return target
    return current


def _use(stream: str, module: str, rel: str, lineno: int,
         via: str) -> StreamUse:
    return StreamUse(stream=stream, module=module,
                     plane=plane_of_module(module) or "top",
                     rel=rel, lineno=lineno, via=via)


def _call_args(call: ast.Call) -> Iterator[ast.expr]:
    yield from call.args
    for kw in call.keywords:
        yield kw.value


def _stream_uses(ctx: FileContext, module: str, plane: str,
                 parents: Dict[ast.AST, ast.AST]) -> Iterator[StreamUse]:
    # (scope, var name) -> stream keys bound to it in that scope.
    bound: Dict[Tuple[Optional[ast.AST], str], Set[str]] = {}
    consumed: Set[Tuple[Optional[ast.AST], str]] = set()

    stream_calls: List[Tuple[ast.Call, str]] = []
    for node in ctx.walk(ast.Call):
        assert isinstance(node, ast.Call)
        if _is_stream_call(ctx, node):
            key = _stream_key(node)
            if key is not None:
                stream_calls.append((node, key))

    for call, key in stream_calls:
        parent = parents.get(call)
        lineno = call.lineno
        if isinstance(parent, ast.keyword):
            parent = parents.get(parent)
        if isinstance(parent, ast.Call) and call is not parent.func:
            receiver = _resolve_callee_module(ctx, parent, module)
            yield _use(key, receiver, ctx.rel, lineno, "handoff")
        elif isinstance(parent, ast.Assign) and len(parent.targets) == 1 \
                and isinstance(parent.targets[0], ast.Name):
            scope = _scope_of(call, parents)
            bound.setdefault(
                (scope, parent.targets[0].id), set()
            ).add(key)
        else:
            # Attribute storage, direct method call on the result,
            # return statements, ... -- the stream is held/drawn here.
            yield _use(key, module, ctx.rel, lineno, "draw")

    if not bound:
        return
    for node in ctx.walk(ast.Call):
        assert isinstance(node, ast.Call)
        scope = _scope_of(node, parents)
        chain = ctx.call_chain(node)
        if len(chain) >= 2:
            slot = (scope, chain[0])
            keys = bound.get(slot)
            if keys:
                consumed.add(slot)
                for key in sorted(keys):
                    yield _use(key, module, ctx.rel, node.lineno, "draw")
        for arg in _call_args(node):
            if isinstance(arg, ast.Name):
                slot = (scope, arg.id)
                keys = bound.get(slot)
                if keys and not _is_stream_call(ctx, node):
                    consumed.add(slot)
                    receiver = _resolve_callee_module(ctx, node, module)
                    for key in sorted(keys):
                        yield _use(key, receiver, ctx.rel, node.lineno,
                                   "handoff")
    # A bound stream that is never drawn or handed off is still held by
    # this module (e.g. stored for later): attribute it here.
    for (scope, name), keys in sorted(
        bound.items(),
        key=lambda item: (getattr(item[0][0], "lineno", 0), item[0][1]),
    ):
        if (scope, name) not in consumed:
            for key in sorted(keys):
                yield _use(key, module, ctx.rel,
                           getattr(scope, "lineno", 1), "draw")


# -- module-level mutable state --------------------------------------------

def _mutable_kind(node: ast.expr) -> Optional[str]:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.SetComp, ast.DictComp)):
        return "container"
    if isinstance(node, ast.Call):
        func = node.func
        name = ""
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name in _MUTABLE_CONSTRUCTORS:
            return "container"
        if name[:1].isupper() and name not in _SINGLETON_EXEMPT:
            return "singleton"
    return None


def _state_facts(ctx: FileContext, module: str,
                 parents: Dict[ast.AST, ast.AST]) -> StateFacts:
    defs: List[StateDef] = []
    local_names: Set[str] = set()
    for stmt in ctx.tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        kind = _mutable_kind(value)
        if kind is not None:
            defs.append(StateDef(module=module, name=target.id,
                                 rel=ctx.rel, lineno=stmt.lineno, kind=kind))
            local_names.add(target.id)

    mutations: Set[Tuple[str, str]] = set()

    def _owner_of(chain: Tuple[str, ...]) -> Optional[Tuple[str, str]]:
        """Resolve a receiver chain to (owning module, state name)."""
        if len(chain) == 1:
            name = chain[0]
            if name in local_names:
                return (module, name)
            target = ctx.imported_names.get(name, "")
            if target.startswith("repro") and "." in target:
                return tuple(target.rsplit(".", 1))  # type: ignore[return-value]
        elif len(chain) == 2:
            mod = ctx.imports.get(chain[0], "")
            if mod.startswith("repro"):
                return (mod, chain[1])
        return None

    for node in ctx.walk(ast.Call):
        assert isinstance(node, ast.Call)
        chain = ctx.call_chain(node)
        if len(chain) >= 2 and chain[-1] in _MUTATORS \
                and _in_function(node, parents):
            owner = _owner_of(chain[:-1])
            if owner is not None:
                mutations.add(owner)
    for node in ctx.walk(ast.Assign, ast.AugAssign, ast.Delete):
        if not _in_function(node, parents):
            continue
        targets: List[ast.expr]
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        else:
            targets = list(node.targets)
        for tgt in targets:
            if isinstance(tgt, ast.Subscript):
                owner = _owner_of(FileContext.attr_chain(tgt.value))
                if owner is not None:
                    mutations.add(owner)
    for node in ctx.walk(ast.Global):
        assert isinstance(node, ast.Global)
        for name in node.names:
            if name in local_names:
                mutations.add((module, name))

    refs: Set[Tuple[str, str, str]] = set()
    for node in ctx.walk(ast.ImportFrom):
        assert isinstance(node, ast.ImportFrom)
        mod = node.module or ""
        if mod == "repro" or mod.startswith("repro."):
            for alias in node.names:
                refs.add((mod, alias.name, module))
    for node in ctx.walk(ast.Attribute):
        assert isinstance(node, ast.Attribute)
        chain = FileContext.attr_chain(node)
        if len(chain) == 2:
            mod = ctx.imports.get(chain[0], "")
            if mod.startswith("repro"):
                refs.add((mod, chain[1], module))

    return StateFacts(defs=tuple(sorted(defs, key=lambda d: d.lineno)),
                      mutations=tuple(sorted(mutations)),
                      refs=tuple(sorted(refs)))


# -- set-typed returns -----------------------------------------------------

def _is_set_annotation(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        head = node.value.split("[", 1)[0].strip()
        return head.split(".")[-1] in _SET_ANNOTATIONS
    return False


def _is_set_expr(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
    return False


def _set_returns(ctx: FileContext, module: str, plane: str,
                 parents: Dict[ast.AST, ast.AST]) -> Iterator[SetReturn]:
    for node in ctx.walk(ast.FunctionDef, ast.AsyncFunctionDef):
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if node.name.startswith("_"):
            continue
        returns_set = _is_set_annotation(node.returns)
        if not returns_set:
            for ret in ast.walk(node):
                if isinstance(ret, ast.Return) \
                        and _scope_of(ret, parents) is node \
                        and _is_set_expr(ret.value):
                    returns_set = True
                    break
        if not returns_set:
            continue
        qual = node.name
        owner = parents.get(node)
        if isinstance(owner, ast.ClassDef):
            qual = f"{owner.name}.{node.name}"
        yield SetReturn(module=module, plane=plane, qualname=qual,
                        rel=ctx.rel, lineno=node.lineno)
