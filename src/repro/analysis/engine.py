"""The lint engine: file discovery, pragmas, parallel scan, reporting.

The engine is deliberately small -- all invariant knowledge lives in
the rules (:mod:`repro.analysis.rules`); the engine only

* discovers ``*.py`` files under the requested paths,
* parses each file once and hands the AST to every applicable rule,
* honours ``# lint: disable=RULE`` pragmas (line) and
  ``# lint: disable-file=RULE`` pragmas (whole file),
* fans the per-file scans out over a process pool (parsing dominates,
  and the workers share nothing), and
* merges per-file *contributions* for the cross-file ``finalize`` pass
  (TEL001's two-way dead-event check needs every emit site at once).

Exit-code contract (the CLI's and CI's interface): 0 clean, 1 findings,
2 bad invocation.  Output is deterministic -- findings sort by
``(path, line, col, rule)`` regardless of worker scheduling.

Pragma syntax::

    x = time.time()  # lint: disable=DET001 -- wall time is display-only
    # lint: disable-file=DET003 -- this whole module is offline tooling

Everything after ``--`` is the (strongly encouraged) justification.
``disable=all`` suppresses every rule on the line.
"""

from __future__ import annotations

import ast
import json
import os
import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
)

__all__ = [
    "Finding",
    "FileContext",
    "ProjectState",
    "LintReport",
    "iter_python_files",
    "lint_paths",
    "PARSE_RULE_ID",
    "PRAGMA_RULE_ID",
]

#: Rule id attached to files the engine cannot parse.
PARSE_RULE_ID = "E000"

#: Rule id attached to pragmas that lack a ``-- why`` justification.
#: Only enforced under ``--whole-program`` (the strict CI lane) so ad-hoc
#: scratch scans stay quiet.
PRAGMA_RULE_ID = "E001"

_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class FileContext:
    """One parsed file plus the helpers every rule needs."""

    def __init__(self, path: Path, rel: str, source: str,
                 tree: ast.Module, whole_program: bool = False) -> None:
        self.path = path
        #: Path as reported in findings (relative to the CWD when under it).
        self.rel = rel
        self.source = source
        self.tree = tree
        #: True when this scan is a whole-program pass over the package
        #: (``repro lint --whole-program``); cross-module rules gate on it.
        self.whole_program = whole_program
        self.lines = source.splitlines()
        parts = path.resolve().parts
        self.parts = parts
        #: Posix path *inside* the repro package ("sim/rng.py",
        #: "telemetry/catalog.py", ...) or None outside it.  Uses the
        #: last "repro" path component so a checkout directory named
        #: "repro" does not confuse the scoping.
        self.pkg: Optional[str] = None
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == "repro":
                if i + 1 < len(parts):
                    self.pkg = "/".join(parts[i + 1:])
                break
        self.is_tests = "tests" in parts
        self.is_benchmarks = "benchmarks" in parts
        #: key -> list payloads merged across files for Rule.finalize.
        self.contributions: Dict[str, List[Any]] = {}
        self._import_maps: Optional[Tuple[Dict[str, str], Dict[str, str]]] = None
        self._all_nodes: Optional[List[ast.AST]] = None

    # -- rule conveniences -------------------------------------------------
    def walk(self, *types: Type[ast.AST]) -> Iterator[ast.AST]:
        # The node list is materialised once and shared by every rule:
        # with ~10 rules each walking a file several times, re-walking
        # the tree dominated scan time on large modules.
        if self._all_nodes is None:
            self._all_nodes = list(ast.walk(self.tree))
        if not types:
            return iter(self._all_nodes)
        return (n for n in self._all_nodes if isinstance(n, types))

    def finding(self, rule: Any, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule.id,
            message=message,
        )

    def contribute(self, key: str, payload: Any) -> None:
        """Record a (picklable) payload for the whole-scan finalize pass."""
        self.contributions.setdefault(key, []).append(payload)

    @staticmethod
    def attr_chain(node: ast.AST) -> Tuple[str, ...]:
        """``self.telemetry.bus.emit`` -> ("self", "telemetry", "bus", "emit").

        Returns () when the expression is not a plain name/attribute
        chain (a call result, a subscript, ...).
        """
        names: List[str] = []
        while isinstance(node, ast.Attribute):
            names.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            names.append(node.id)
            return tuple(reversed(names))
        return ()

    def call_chain(self, call: ast.Call) -> Tuple[str, ...]:
        return self.attr_chain(call.func)

    @property
    def imports(self) -> Dict[str, str]:
        """Local alias -> imported module ("np" -> "numpy")."""
        return self._imports()[0]

    @property
    def imported_names(self) -> Dict[str, str]:
        """Local name -> "module.name" for ``from module import name``."""
        return self._imports()[1]

    def _imports(self) -> Tuple[Dict[str, str], Dict[str, str]]:
        if self._import_maps is None:
            modules: Dict[str, str] = {}
            names: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        modules[local] = alias.name
                elif isinstance(node, ast.ImportFrom) and node.module:
                    for alias in node.names:
                        local = alias.asname or alias.name
                        names[local] = f"{node.module}.{alias.name}"
            self._import_maps = (modules, names)
        return self._import_maps


class ProjectState:
    """What ``Rule.finalize`` sees: the merged per-file contributions."""

    def __init__(self, whole_program: bool = False) -> None:
        self.contributions: Dict[str, List[Any]] = {}
        #: Every scanned file's ``FileContext.pkg`` (None entries dropped).
        self.scanned_pkgs: Set[str] = set()
        #: True for ``repro lint --whole-program`` scans.
        self.whole_program = whole_program
        #: finding-path -> (per-line, per-file) pragma maps, so findings
        #: produced by ``Rule.finalize`` honour suppression pragmas too.
        self.pragmas: Dict[str, Tuple[Dict[int, Set[str]], Set[str]]] = {}

    def merge(self, contributions: Dict[str, List[Any]],
              pkg: Optional[str]) -> None:
        for key, payloads in contributions.items():
            self.contributions.setdefault(key, []).extend(payloads)
        if pkg is not None:
            self.scanned_pkgs.add(pkg)

    def suppressed(self, finding: Finding) -> bool:
        """Whether a finalize-pass finding is pragma-suppressed."""
        maps = self.pragmas.get(finding.path)
        if maps is None:
            return False
        return _suppressed(finding, maps[0], maps[1])


# -- pragmas ---------------------------------------------------------------

def _comment_lines(source: str, lines: Sequence[str]) -> Iterable[Tuple[int, str]]:
    """``(lineno, comment text)`` for every real comment token.

    Tokenizing keeps pragma *mentions* inside docstrings and string
    literals (e.g. documentation of the pragma syntax itself) from
    being treated as pragmas.  On a tokenization error the line-based
    fallback errs towards recognising pragmas (silence only when asked).
    """
    import io
    import tokenize

    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, text in enumerate(lines, start=1):
            if "#" in text:
                yield lineno, text[text.index("#"):]


def _parse_pragmas(
    source: str, lines: Sequence[str]
) -> Tuple[Dict[int, Set[str]], Set[str], List[int]]:
    """``(line -> suppressed ids, file-wide suppressed ids, unjustified)``.

    ``unjustified`` lists the line numbers of pragmas with no ``-- why``
    justification text after the rule list (reported as
    :data:`PRAGMA_RULE_ID` findings under ``--whole-program``).
    """
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    unjustified: List[int] = []
    for lineno, text in _comment_lines(source, lines):
        if "lint:" not in text:
            continue
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = {r.strip() for r in match.group("rules").split(",")}
        if match.group("kind") == "disable-file":
            per_file |= rules
        else:
            per_line.setdefault(lineno, set()).update(rules)
        if not text[match.end():].lstrip().startswith("--"):
            unjustified.append(lineno)
    return per_line, per_file, unjustified


def _suppressed(finding: Finding, per_line: Dict[int, Set[str]],
                per_file: Set[str]) -> bool:
    if finding.rule in per_file or "all" in per_file:
        return True
    rules = per_line.get(finding.line)
    return rules is not None and (finding.rule in rules or "all" in rules)


# -- discovery -------------------------------------------------------------

def iter_python_files(paths: Sequence[Any]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(
                p for p in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(p.parts)
            )
        else:
            candidates = [path]
        for p in candidates:
            key = p.resolve()
            if key not in seen:
                seen.add(key)
                out.append(p)
    return out


def _relative_label(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


# -- per-file scan ---------------------------------------------------------

class ScanResult(NamedTuple):
    """Picklable outcome of one file's scan (crosses the worker boundary)."""

    findings: List[Finding]
    suppressed: int
    contributions: Dict[str, List[Any]]
    pkg: Optional[str]
    rel: str
    pragmas: Tuple[Dict[int, Set[str]], Set[str]]


def _scan_one(
    path_str: str,
    select: Optional[frozenset] = None,
    whole_program: bool = False,
) -> ScanResult:
    """Parse one file *once* and run every applicable rule over it."""
    from repro.analysis.registry import all_rules

    path = Path(path_str)
    rel = _relative_label(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        finding = Finding(path=rel, line=getattr(exc, "lineno", 1) or 1,
                          col=0, rule=PARSE_RULE_ID,
                          message=f"cannot parse file: {exc}")
        return ScanResult([finding], 0, {}, None, rel, ({}, set()))

    ctx = FileContext(path, rel, source, tree, whole_program=whole_program)
    per_line, per_file, unjustified = _parse_pragmas(source, ctx.lines)
    findings: List[Finding] = []
    suppressed = 0
    if whole_program:
        for lineno in unjustified:
            findings.append(Finding(
                path=rel, line=lineno, col=0, rule=PRAGMA_RULE_ID,
                message=("lint pragma lacks a '-- why' justification; "
                         "every suppression must say why it is safe"),
            ))
    for rule in all_rules():
        if select is not None and rule.id not in select:
            continue
        if not rule.applies(ctx):
            continue
        for finding in rule.check(ctx):
            if _suppressed(finding, per_line, per_file):
                suppressed += 1
            else:
                findings.append(finding)
    return ScanResult(findings, suppressed, ctx.contributions, ctx.pkg,
                      rel, (per_line, per_file))


# -- reports ---------------------------------------------------------------

class LintReport:
    """The outcome of one scan; renders as text or JSON."""

    def __init__(self, findings: List[Finding], n_files: int,
                 suppressed: int) -> None:
        self.findings = sorted(findings)
        self.n_files = n_files
        self.suppressed = suppressed

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def counts(self) -> Dict[str, int]:
        by_rule: Dict[str, int] = {}
        for f in self.findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        return dict(sorted(by_rule.items()))

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        summary = (f"{len(self.findings)} finding"
                   f"{'' if len(self.findings) == 1 else 's'} "
                   f"({self.suppressed} suppressed) "
                   f"in {self.n_files} files")
        if self.findings:
            lines.append("")
        lines.append(summary)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": 1,
            "files": self.n_files,
            "suppressed": self.suppressed,
            "rules": self.counts(),
            "findings": [f.as_dict() for f in self.findings],
        }

    def render_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


# -- entry point -----------------------------------------------------------

def lint_paths(
    paths: Sequence[Any],
    select: Optional[Iterable[str]] = None,
    disable: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
    whole_program: bool = False,
) -> LintReport:
    """Lint files/directories; the API behind ``repro lint``.

    ``select`` limits the run to the given rule ids, ``disable`` drops
    ids from the (possibly selected) set -- both validated against the
    registry so typos fail loudly.  ``jobs`` caps the worker processes
    (default: one per CPU, serial for small scans where pool start-up
    would dominate).  ``whole_program`` arms the cross-module pass:
    dataflow rules (DET004/SHARD001/TEL002) activate, and pragmas
    without a ``-- why`` justification become E001 findings.
    """
    from repro.analysis.registry import all_rules, get_rule

    known = {rule.id for rule in all_rules()}
    chosen = set(known)
    if select is not None:
        for rid in select:
            get_rule(rid)  # raises KeyError on typos
        chosen = set(select)
    if disable is not None:
        for rid in disable:
            get_rule(rid)
        chosen -= set(disable)
    selected = frozenset(chosen)

    files = iter_python_files(paths)
    findings: List[Finding] = []
    suppressed = 0
    project = ProjectState(whole_program=whole_program)

    def _absorb(result: ScanResult) -> None:
        nonlocal suppressed
        findings.extend(result.findings)
        suppressed += result.suppressed
        project.merge(result.contributions, result.pkg)
        project.pragmas[result.rel] = result.pragmas

    if jobs is None:
        jobs = os.cpu_count() or 1
    jobs = max(1, min(jobs, len(files) or 1))
    if jobs > 1 and len(files) >= 8:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = pool.map(
                _scan_one,
                [str(p) for p in files],
                [selected] * len(files),
                [whole_program] * len(files),
                chunksize=max(1, len(files) // (jobs * 4)),
            )
            for result in results:
                _absorb(result)
    else:
        for path in files:
            _absorb(_scan_one(str(path), selected, whole_program))

    for rule in all_rules():
        if rule.id in selected:
            for finding in rule.finalize(project):
                if project.suppressed(finding):
                    suppressed += 1
                else:
                    findings.append(finding)

    return LintReport(findings, n_files=len(files), suppressed=suppressed)
