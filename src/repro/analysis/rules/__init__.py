"""Built-in lint rules; importing this package registers them all.

Add a rule by dropping a module here (or extending an existing one)
with ``@register``-decorated :class:`~repro.analysis.registry.Rule`
subclasses, then import it below.  See docs/static-analysis.md.
"""

from __future__ import annotations

from repro.analysis.rules import caches, determinism, shard, telemetry

__all__ = ["caches", "determinism", "shard", "telemetry"]
