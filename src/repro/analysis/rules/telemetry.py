"""TEL001 -- the telemetry catalog and the instrumentation must agree.

Forward direction (per file): every event name passed as a literal to a
bus emit (``*.bus.emit("name", ...)`` / ``*.emit_event("name", ...)``)
must exist in ``EVENT_CATALOG``, every span name opened on a tracer
(``*.tracer.span("name")`` / ``*.tracer.open("name")``) must exist in
``SPAN_CATALOG``, every SLO declared with ``Objective(name=...)`` must
exist in ``SLO_CATALOG``, and every derived windowed series declared
with ``*windows.track("name")`` must be a window-kind entry of
``METRIC_CATALOG``.  Reverse direction (whole scan): every catalog
entry of those four kinds must be used by at least one literal site,
so the catalog cannot accumulate dead names that the docs and ``repro
telemetry catalog`` keep advertising.

The reverse check only activates when the scan clearly covered the
whole package (the catalog module *and* the main instrumentation
modules were scanned); linting a single file stays a purely local
check.  Emit sites whose name is a variable are invisible to both
directions -- the runtime test
(tests/telemetry/test_instrumentation.py) covers those.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from repro.analysis.engine import FileContext, Finding, ProjectState
from repro.analysis.registry import Rule, register

_EVENTS_KEY = "tel:event_emits"
_SPANS_KEY = "tel:span_uses"
_SLOS_KEY = "tel:slo_declares"
_WINDOWS_KEY = "tel:window_tracks"
_CATALOG_KEY = "tel:catalog_entries"

#: pkg paths whose presence marks a whole-package scan (reverse check).
_FULL_SCAN_MARKERS = frozenset({
    "telemetry/catalog.py", "grid.py", "core/aggregation.py",
    "sessions/session.py", "telemetry/slo.py", "serve/observability.py",
})


def _literal_name(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        return call.args[0].value
    for kw in call.keywords:
        if kw.arg == "name" and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str):
            return kw.value.value
    return None


def _catalog_entries(ctx: FileContext) -> List[Tuple[str, str, int]]:
    """``(kind, name, line)`` for the catalog module's dict literals."""
    out: List[Tuple[str, str, int]] = []
    kinds = {"EVENT_CATALOG": "event", "SPAN_CATALOG": "span",
             "SLO_CATALOG": "slo", "METRIC_CATALOG": "metric"}
    for node in ctx.walk(ast.Assign, ast.AnnAssign):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        kind = next((kinds[n] for n in names if n in kinds), None)
        if kind is None or not isinstance(node.value, ast.Dict):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                continue
            if kind == "metric":
                # Only window-kind metrics have a literal declaration
                # site (``track(...)``); cumulative instruments are
                # created lazily by name and stay out of the check.
                if _metric_kind(value) == "window":
                    out.append(("window", key.value, key.lineno))
                continue
            out.append((kind, key.value, key.lineno))
    return out


def _metric_kind(value: ast.AST) -> Optional[str]:
    """The kind string of one ``METRIC_CATALOG`` value tuple."""
    if isinstance(value, ast.Tuple) and value.elts \
            and isinstance(value.elts[0], ast.Constant) \
            and isinstance(value.elts[0].value, str):
        return value.elts[0].value
    return None


def _window_metric_names() -> frozenset:
    from repro.telemetry.catalog import METRIC_CATALOG

    return frozenset(
        name for name, (kind, *_rest) in METRIC_CATALOG.items()
        if kind == "window"
    )


@register
class CatalogTwoWay(Rule):
    """TEL001 -- two-way event/span catalog consistency."""

    id = "TEL001"
    name = "catalog-two-way"
    invariant = ("every emitted event/span name is catalogued, and every "
                 "catalogued name is emitted somewhere (no dead events)")

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.is_tests and not ctx.is_benchmarks

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        from repro.telemetry.catalog import EVENT_CATALOG, SLO_CATALOG, SPAN_CATALOG

        if ctx.pkg == "telemetry/catalog.py":
            for entry in _catalog_entries(ctx):
                ctx.contribute(_CATALOG_KEY, entry + (ctx.rel,))
            return
        for node in ctx.walk(ast.Call):
            chain = ctx.call_chain(node)
            if not chain:
                continue
            if chain[-1] == "Objective":
                name = _literal_name(node)
                if name is not None:
                    ctx.contribute(_SLOS_KEY, name)
                    if name not in SLO_CATALOG:
                        yield ctx.finding(
                            self, node,
                            f"SLO name {name!r} is not in "
                            "telemetry/catalog.py SLO_CATALOG; register "
                            "it there (the catalog is the source of truth)",
                        )
                continue
            if len(chain) < 2:
                continue
            head, method = chain[-2], chain[-1]
            if method == "track" and head in ("windows", "_windows"):
                name = _literal_name(node)
                if name is not None:
                    ctx.contribute(_WINDOWS_KEY, name)
                    if name not in _window_metric_names():
                        yield ctx.finding(
                            self, node,
                            f"windowed series {name!r} is not a "
                            "window-kind entry in telemetry/catalog.py "
                            "METRIC_CATALOG; register it there (the "
                            "catalog is the source of truth)",
                        )
            elif method == "emit_event" or (
                method == "emit" and head in ("bus", "_bus")
            ):
                name = _literal_name(node)
                if name is not None:
                    ctx.contribute(_EVENTS_KEY, name)
                    if name not in EVENT_CATALOG:
                        yield ctx.finding(
                            self, node,
                            f"event name {name!r} is not in "
                            "telemetry/catalog.py EVENT_CATALOG; register "
                            "it there (the catalog is the source of truth)",
                        )
            elif method in ("span", "open") and head == "tracer":
                name = _literal_name(node)
                if name is not None:
                    ctx.contribute(_SPANS_KEY, name)
                    if name not in SPAN_CATALOG:
                        yield ctx.finding(
                            self, node,
                            f"span name {name!r} is not in "
                            "telemetry/catalog.py SPAN_CATALOG; register "
                            "it there (the catalog is the source of truth)",
                        )

    def finalize(self, project: ProjectState) -> Iterable[Finding]:
        if not _FULL_SCAN_MARKERS <= project.scanned_pkgs:
            return
        used_by_kind = {
            "event": set(project.contributions.get(_EVENTS_KEY, ())),
            "span": set(project.contributions.get(_SPANS_KEY, ())),
            "slo": set(project.contributions.get(_SLOS_KEY, ())),
            "window": set(project.contributions.get(_WINDOWS_KEY, ())),
        }
        verb = {"event": "emitted", "span": "opened",
                "slo": "declared", "window": "tracked"}
        for kind, name, line, rel in project.contributions.get(
            _CATALOG_KEY, ()
        ):
            if name not in used_by_kind[kind]:
                yield Finding(
                    path=rel, line=line, col=0, rule=self.id,
                    message=(f"dead {kind}: catalog entry {name!r} is never "
                             f"{verb[kind]} by any literal site; delete it "
                             "or instrument the subsystem"),
                )
