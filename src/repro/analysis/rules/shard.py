"""Cross-module shard-hazard rules (the ``--whole-program`` pass).

DET004   one seeded RNG stream reachable from two planes
SHARD001 module-level/singleton mutable state reachable from >1 plane
TEL002   unordered set values escaping a module boundary

These are the hazards that will break the sharded event engine
(ROADMAP item 1): once independent grid regions simulate on separate
workers, anything two planes share -- a stream, a module-level dict, a
hash-ordered collection crossing a plane boundary -- becomes a
cross-shard ordering bug that no per-file rule can see.  All three
rules consume the dataflow facts of :mod:`repro.analysis.dataflow`
and the import graph of :mod:`repro.analysis.callgraph`, and only arm
under ``repro lint --whole-program`` (partial scans under-report by
construction: missing files mean missing edges, never extra ones).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.callgraph import (
    MODULE_FACTS_KEY,
    ImportGraph,
    build_graph,
)
from repro.analysis.dataflow import (
    SET_RETURN_FACTS_KEY,
    STATE_FACTS_KEY,
    STREAM_FACTS_KEY,
    SetReturn,
    StateFacts,
    StreamUse,
    contribute_facts,
)
from repro.analysis.engine import FileContext, Finding, ProjectState
from repro.analysis.rules.determinism import _is_set_typed
from repro.analysis.registry import Rule, register

#: Planes that are offline tooling, not part of the sharded runtime:
#: their module-level registries (lint rules, experiment tables, bench
#: scenario maps) never cross a shard boundary.
_OFFLINE_PLANES = frozenset({"analysis", "experiments", "perf", "cli", "top"})


def _arm(ctx: FileContext) -> bool:
    """Common gate: whole-program scan over package source files."""
    return ctx.whole_program and not ctx.is_tests \
        and not ctx.is_benchmarks and ctx.pkg is not None


def _graph(project: ProjectState) -> ImportGraph:
    return build_graph(project.contributions.get(MODULE_FACTS_KEY, ()))


@register
class StreamAliasing(Rule):
    """DET004 -- one stream, one plane.

    ``sim/rng.py`` gives each subsystem an independent replayable
    stream precisely so planes never contend on draw order.  A stream
    drawn from (or held by) two planes couples their schedules: under
    the sharded engine the interleaving of those draws depends on
    shard placement, and byte-identical telemetry is gone.
    """

    id = "DET004"
    name = "stream-aliasing"
    invariant = "each named RNG stream is reachable from exactly one plane"

    def applies(self, ctx: FileContext) -> bool:
        return _arm(ctx)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        contribute_facts(ctx)
        return ()

    def finalize(self, project: ProjectState) -> Iterable[Finding]:
        if not project.whole_program:
            return
        by_stream: Dict[str, List[StreamUse]] = {}
        for use in project.contributions.get(STREAM_FACTS_KEY, ()):
            by_stream.setdefault(use.stream, []).append(use)
        for stream in sorted(by_stream):
            uses = sorted(by_stream[stream],
                          key=lambda u: (u.rel, u.lineno, u.plane))
            planes = sorted({u.plane for u in uses})
            if len(planes) < 2:
                continue
            sites = ", ".join(
                f"{u.plane} ({u.rel}:{u.lineno}, {u.via})" for u in uses
            )
            first = uses[0]
            yield Finding(
                path=first.rel, line=first.lineno, col=0, rule=self.id,
                message=(
                    f"RNG stream {stream!r} is reachable from "
                    f"{len(planes)} planes [{', '.join(planes)}]: {sites}; "
                    "give each plane its own derived stream "
                    "(RngStreams.stream with a distinct name)"
                ),
            )


@register
class SharedMutableState(Rule):
    """SHARD001 -- module-level mutable state is the shard-boundary list.

    A module-level dict/list/singleton mutated at runtime and imported
    by a second plane is state the sharded engine must either
    replicate, partition, or serialise access to.  This rule *is* that
    hazard inventory: everything it cannot prove single-plane must be
    fixed, allowlisted with an owner, or pragma'd with a why.
    """

    id = "SHARD001"
    name = "shared-mutable-state"
    invariant = ("runtime-mutated module-level state is reachable from "
                 "at most one plane")

    #: (module, name) pairs audited as safe cross-plane state.  Keep
    #: this list justified: each entry names its synchronisation story.
    allowlist: frozenset = frozenset({
        # The process-wide telemetry null objects are write-once at
        # import time; runtime code only reads them.
        ("repro.telemetry.bus", "NULL_BUS"),
        ("repro.telemetry.tracer", "NULL_TRACER"),
    })

    def applies(self, ctx: FileContext) -> bool:
        return _arm(ctx)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        contribute_facts(ctx)
        return ()

    def finalize(self, project: ProjectState) -> Iterable[Finding]:
        if not project.whole_program:
            return
        facts: List[StateFacts] = list(
            project.contributions.get(STATE_FACTS_KEY, ())
        )
        mutated: Set[Tuple[str, str]] = set()
        referrers: Dict[Tuple[str, str], Set[str]] = {}
        for fact in facts:
            mutated.update(fact.mutations)
            for owner_mod, name, ref_mod in fact.refs:
                referrers.setdefault((owner_mod, name), set()).add(ref_mod)
        graph = _graph(project)
        all_defs = sorted(
            (d for fact in facts for d in fact.defs),
            key=lambda d: (d.rel, d.lineno),
        )
        for d in all_defs:
            owner_plane = graph.plane(d.module)
            if owner_plane is None or owner_plane in _OFFLINE_PLANES:
                continue
            if (d.module, d.name) in self.allowlist:
                continue
            if (d.module, d.name) not in mutated:
                continue
            planes = {owner_plane}
            for ref_mod in referrers.get((d.module, d.name), ()):
                plane = graph.plane(ref_mod)
                if plane is not None and plane not in _OFFLINE_PLANES:
                    planes.add(plane)
            if len(planes) < 2:
                continue
            yield Finding(
                path=d.rel, line=d.lineno, col=0, rule=self.id,
                message=(
                    f"module-level mutable state {d.name!r} ({d.kind}) is "
                    f"mutated at runtime and reachable from planes "
                    f"[{', '.join(sorted(planes))}]; a shard boundary "
                    "between them splits this object -- move it behind an "
                    "owning plane's API, or allowlist it with a "
                    "synchronisation story"
                ),
            )


#: Emit-method names whose arguments flow into telemetry records.
_EMIT_METHODS = frozenset({"emit", "emit_event"})
_EMIT_HEADS = frozenset({"bus", "_bus", "tracer", "_tracer"})


@register
class SetEscapesBoundary(Rule):
    """TEL002 -- unordered values must not cross module boundaries.

    DET003 stops *iteration* over sets inside one file; this is its
    cross-module closure.  A set passed into a telemetry emit or
    returned from a public function imported by another plane carries
    hash ordering across the boundary -- the consumer iterates or
    serialises it and the byte-identical-telemetry contract breaks on
    the other side of the import.
    """

    id = "TEL002"
    name = "no-set-escapes"
    invariant = ("telemetry payloads and cross-plane public returns are "
                 "never bare sets; ordering is fixed before the boundary")

    def applies(self, ctx: FileContext) -> bool:
        return _arm(ctx)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        contribute_facts(ctx)
        for node in ctx.walk(ast.Call):
            chain = ctx.call_chain(node)
            if len(chain) < 2 or chain[-1] not in _EMIT_METHODS:
                continue
            if chain[-1] == "emit" and chain[-2] not in _EMIT_HEADS:
                continue
            args = list(node.args) + [kw.value for kw in node.keywords]
            for arg in args:
                if _is_set_typed(arg):
                    yield ctx.finding(
                        self, arg,
                        "unordered set value passed into a telemetry "
                        "emit; the export serialises it in hash order -- "
                        "wrap it in sorted(...) first",
                    )

    def finalize(self, project: ProjectState) -> Iterable[Finding]:
        if not project.whole_program:
            return
        graph = _graph(project)
        rets: List[SetReturn] = sorted(
            project.contributions.get(SET_RETURN_FACTS_KEY, ()),
            key=lambda r: (r.rel, r.lineno),
        )
        for ret in rets:
            if ret.plane in _OFFLINE_PLANES:
                continue
            foreign = sorted(
                graph.importer_planes(ret.module)
                - {ret.plane} - _OFFLINE_PLANES
            )
            if not foreign:
                continue
            yield Finding(
                path=ret.rel, line=ret.lineno, col=0, rule=self.id,
                message=(
                    f"public {ret.qualname}() returns an unordered set and "
                    f"its module is imported from other planes "
                    f"[{', '.join(foreign)}]; return a sorted tuple/list "
                    "or document+enforce the ordering at the boundary"
                ),
            )
