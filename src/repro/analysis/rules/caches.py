"""CACHE001 -- discovery-plane caches stay behind ``fast_paths``.

The exactness contract (docs/performance.md) lets the fast paths cache
routed work only because (a) every cache can be switched off via
``GridConfig.fast_paths`` to re-derive the ground truth, and (b) a
cache hit's only side effects are counters -- never bus events, spans
or RNG draws, which would re-order the deterministic stream.

Two static approximations of that contract, scoped to ``lookup/``,
``probing/`` and ``core/``:

* **gate present** -- a module that builds a :class:`BoundedCache`,
  calls :func:`trim_mapping`, or touches a ``*cache*``/``*memo*``
  attribute must reference ``fast_paths`` or ``cache_active``
  somewhere; a cache with no switch cannot honour the contract.
  (Modules whose caches are injected and gated by their *caller* carry
  a justified ``# lint: disable-file=CACHE001`` pragma instead.)
* **counter-only** -- inside a conditional whose test mentions
  ``fast_paths``/``cache_active`` (or a ``cache`` variable), direct bus
  emits, tracer spans and ``rng`` draws are flagged.  Counter
  increments (``metrics.counter(...).inc()``, ``stats.hits += 1``) pass
  untouched, as do calls into accounting helpers -- replaying identical
  telemetry through e.g. ``note_cached_lookup`` is the contract's
  sanctioned mechanism and lives behind its own tests.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.engine import FileContext, Finding
from repro.analysis.registry import Rule, register

_GUARD_NAMES = frozenset({"fast_paths", "cache_active"})
_CACHE_CALLS = frozenset({"BoundedCache", "trim_mapping"})
_CACHE_METHODS = frozenset({"get", "put", "check_generation", "clear", "pop"})


def _names_in(node: ast.AST) -> Iterable[str]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            yield sub.id
        elif isinstance(sub, ast.Attribute):
            yield sub.attr


def _is_guard_test(test: ast.AST) -> bool:
    for name in _names_in(test):
        if name in _GUARD_NAMES or "cache" in name:
            return True
    return False


@register
class FastPathCaches(Rule):
    """CACHE001 -- caches gated by fast_paths, hits counter-only."""

    id = "CACHE001"
    name = "fast-path-caches"
    invariant = ("lookup/probing/core caches are switchable via fast_paths "
                 "and their guarded branches have counter-only side effects")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.pkg is not None \
            and ctx.pkg.startswith(("lookup/", "probing/", "core/")) \
            and ctx.pkg != "lookup/cache.py"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        has_gate = any(
            name in _GUARD_NAMES for name in _names_in(ctx.tree)
        )

        # (a) gate present for every cache construction/use.
        if not has_gate:
            for node in ctx.walk(ast.Call):
                chain = ctx.call_chain(node)
                if not chain:
                    continue
                if chain[-1] in _CACHE_CALLS:
                    yield ctx.finding(
                        self, node,
                        f"{chain[-1]} used but this module never consults "
                        "fast_paths/cache_active; caches must be "
                        "switchable to re-derive the uncached ground truth",
                    )
                elif (
                    chain[-1] in _CACHE_METHODS and len(chain) >= 2
                    and ("cache" in chain[-2].lower()
                         or "memo" in chain[-2].lower())
                ):
                    yield ctx.finding(
                        self, node,
                        f"cache access {'.'.join(chain[-2:])}() in a module "
                        "that never consults fast_paths/cache_active; gate "
                        "the cache or justify with a pragma",
                    )

        # (b) guarded branches stay counter-only.
        for node in ctx.walk(ast.If):
            if not _is_guard_test(node.test):
                continue
            for stmt in node.body + node.orelse:
                for call in ast.walk(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    chain = ctx.call_chain(call)
                    if len(chain) < 2:
                        continue
                    head, method = chain[-2], chain[-1]
                    offence = None
                    if method == "emit_event" or (
                        method == "emit" and head in ("bus", "_bus")
                    ):
                        offence = "bus event"
                    elif method in ("span", "open") and head == "tracer":
                        offence = "span"
                    elif head == "rng" or (len(chain) == 2 and
                                           chain[0] == "rng"):
                        offence = "RNG draw"
                    if offence is not None:
                        yield ctx.finding(
                            self, call,
                            f"{offence} {'.'.join(chain)}() inside a "
                            "cache-guarded branch; cached fast paths may "
                            "only touch counters (exactness contract, "
                            "docs/performance.md)",
                        )
