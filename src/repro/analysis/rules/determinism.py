"""Determinism rules: the invariants behind bit-identical seeded runs.

DET001  no wall-clock reads outside the profiling/perf layers
DET002  all randomness flows through the seeded streams of sim/rng.py
DET003  no iteration over unordered containers in hot sim paths

Every rule here is syntactic: it sees one file's AST plus its import
table, never runtime types.  The docs (docs/static-analysis.md) list
the approximations; the escape hatch for a justified exception is a
``# lint: disable=RULE -- why`` pragma on the offending line.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Tuple

from repro.analysis.engine import FileContext, Finding
from repro.analysis.registry import Rule, register

#: Wall-clock functions of the ``time`` module.
_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    "clock_gettime", "clock_gettime_ns",
})

#: Wall-clock constructors of the ``datetime`` module.
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: ``datetime`` classes whose ``now``/``today`` read the wall clock.
_DATETIME_CLASSES = frozenset({"datetime.datetime", "datetime.date"})


@register
class NoWallClock(Rule):
    """DET001 -- wall-clock reads poison seeded reproducibility.

    Simulated time comes from the engine clock; wall time may only be
    observed by the profiling layer (``telemetry/profiling.py``), the
    perf harness (``perf/``) and the benchmarks, none of which feed the
    deterministic event stream.
    """

    id = "DET001"
    name = "no-wall-clock"
    invariant = ("wall-clock reads only in telemetry/profiling.py, perf/ "
                 "and benchmarks/")

    def applies(self, ctx: FileContext) -> bool:
        if ctx.is_benchmarks:
            return False
        return ctx.pkg not in ("telemetry/profiling.py",) and not (
            ctx.pkg is not None and ctx.pkg.startswith("perf/")
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        modules = ctx.imports
        names = ctx.imported_names
        for node in ctx.walk(ast.Call):
            chain = ctx.call_chain(node)
            if not chain:
                continue
            called: Optional[str] = None
            if len(chain) == 2 and modules.get(chain[0]) == "time" \
                    and chain[1] in _TIME_FNS:
                called = f"time.{chain[1]}"
            elif len(chain) == 1:
                target = names.get(chain[0], "")
                if target.startswith("time.") and target[5:] in _TIME_FNS:
                    called = target
            if called is None and chain[-1] in _DATETIME_FNS:
                root = chain[0]
                # datetime.datetime.now(), datetime.date.today()
                if len(chain) == 3 and modules.get(root) == "datetime":
                    called = ".".join(chain)
                # datetime.now() / date.today() via from-imports
                elif len(chain) == 2 and names.get(root) in _DATETIME_CLASSES:
                    called = f"{names[root]}.{chain[-1]}"
            if called is not None:
                yield ctx.finding(
                    self, node,
                    f"wall-clock read {called}() breaks seeded determinism; "
                    "route wall time through telemetry/profiling.py or perf/ "
                    "(or justify with a pragma)",
                )


@register
class SeededStreamsOnly(Rule):
    """DET002 -- randomness must come from the named streams.

    A stray ``random.random()`` or module-level numpy draw perturbs
    every draw downstream of it; ``sim/rng.py`` exists so each
    subsystem owns an independent, replayable stream.
    """

    id = "DET002"
    name = "seeded-streams-only"
    invariant = ("sim code draws randomness only via sim/rng.py streams; "
                 "no stdlib random, no module-level numpy RNG")

    def applies(self, ctx: FileContext) -> bool:
        return not ctx.is_tests and not ctx.is_benchmarks \
            and ctx.pkg != "sim/rng.py"

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        modules = ctx.imports
        names = ctx.imported_names
        for node in ctx.walk(ast.Import, ast.ImportFrom):
            if isinstance(node, ast.Import):
                if any(a.name == "random" or a.name.startswith("random.")
                       for a in node.names):
                    yield ctx.finding(
                        self, node,
                        "stdlib random imported; draw from the seeded "
                        "streams of sim/rng.py instead",
                    )
            elif node.module == "random" or (
                node.module or ""
            ).startswith("random."):
                yield ctx.finding(
                    self, node,
                    "stdlib random imported; draw from the seeded "
                    "streams of sim/rng.py instead",
                )
        for node in ctx.walk(ast.Call):
            chain = ctx.call_chain(node)
            if len(chain) >= 3 and modules.get(chain[0]) == "numpy" \
                    and chain[1] == "random":
                yield ctx.finding(
                    self, node,
                    f"un-streamed numpy RNG {'.'.join(chain)}() bypasses "
                    "the stream registry; use RngStreams.stream(name) "
                    "from sim/rng.py",
                )
            elif len(chain) == 1 and names.get(
                chain[0], ""
            ).startswith("numpy.random."):
                yield ctx.finding(
                    self, node,
                    f"un-streamed numpy RNG {names[chain[0]]}() bypasses "
                    "the stream registry; use RngStreams.stream(name) "
                    "from sim/rng.py",
                )


#: Package prefixes outside the hot sim plane (reporting/tooling layers,
#: where output ordering is already fixed by explicit sorts/tables).
_DET003_EXEMPT = ("telemetry/", "experiments/", "analysis/", "perf/")

_SET_METHODS = frozenset({
    "intersection", "union", "difference", "symmetric_difference",
})


def _is_set_typed(node: ast.AST) -> bool:
    """Statically set-typed expressions (syntactic approximation)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    ):
        return _is_set_typed(node.left) or _is_set_typed(node.right)
    return False


@register
class OrderedIterationOnly(Rule):
    """DET003 -- hash-ordered iteration is a portability time bomb.

    Iterating a ``set`` (or a ``dict.keys()`` view built from one)
    yields a platform/hash-seed dependent order; one reordered loop in a
    hot sim path reorders RNG draws and telemetry events.  Wrap the
    iterable in ``sorted(...)`` or keep an ordered container.
    """

    id = "DET003"
    name = "ordered-iteration-only"
    invariant = ("hot sim paths never iterate bare sets or .keys() views; "
                 "ordering must be explicit")

    def applies(self, ctx: FileContext) -> bool:
        if ctx.is_tests or ctx.is_benchmarks:
            return False
        return ctx.pkg is None or not ctx.pkg.startswith(_DET003_EXEMPT)

    def _iterables(self, ctx: FileContext) -> Iterator[Tuple[ast.AST, ast.AST]]:
        for node in ctx.walk():
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node, node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    yield node, gen.iter

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for holder, iterable in self._iterables(ctx):
            if _is_set_typed(iterable):
                yield ctx.finding(
                    self, iterable,
                    "iteration over an unordered set expression is "
                    "hash-order dependent; wrap it in sorted(...) or use "
                    "an ordered container",
                )
            elif isinstance(iterable, ast.Call) and isinstance(
                iterable.func, ast.Attribute
            ) and iterable.func.attr == "keys" and not iterable.args:
                yield ctx.finding(
                    self, iterable,
                    "iterating a .keys() view hides the ordering contract; "
                    "iterate the dict directly (insertion order) or "
                    "sorted(...) when order matters",
                )
