"""Module-level import/call graph for the whole-program lint pass.

The cross-module rules (:mod:`repro.analysis.rules.shard`) reason about
*planes*: the subsystem a module belongs to, named by its first path
component inside the ``repro`` package (``network/churn.py`` lives in
the ``network`` plane, ``sim/rng.py`` in ``sim``).  Planes are the unit
the future sharded engine will cut along -- state reachable from two
planes is state a shard boundary can split.

Each scanned file contributes one :data:`MODULE_FACTS_KEY` payload (its
dotted module name, plane, and imports of other ``repro`` modules);
:func:`build_graph` folds those payloads into an :class:`ImportGraph`
with forward/reverse edges and plane lookups.  The graph is deliberately
import-level, not def/use-level: for shard-hazard triage the question is
"can plane B *name* this object at all", and an import edge is the
syntactic gate for that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "MODULE_FACTS_KEY",
    "ModuleFacts",
    "ImportGraph",
    "build_graph",
    "module_name_of_pkg",
    "plane_of_module",
]

#: ``ProjectState.contributions`` key under which every scanned file in
#: the repro package deposits one :class:`ModuleFacts` tuple.
MODULE_FACTS_KEY = "wp:module-facts"

#: Top-level repro modules that are wiring/entry layers rather than
#: runtime subsystems.  ``grid.py`` composes every plane by design, so
#: it gets its own plane name instead of polluting a subsystem's.
_TOP_LEVEL_PLANES = {
    "grid": "grid",
    "cli": "cli",
    "capabilities": "capabilities",
    "diagnostics": "diagnostics",
    "__init__": "top",
    "__main__": "cli",
}


def module_name_of_pkg(pkg: str) -> Optional[str]:
    """``"sim/rng.py"`` -> ``"repro.sim.rng"`` (None for non-modules)."""
    if not pkg.endswith(".py"):
        return None
    parts = pkg[:-3].split("/")
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro", *parts]) if parts else "repro"


def plane_of_module(module: str) -> Optional[str]:
    """Dotted repro module -> plane name (None outside the package)."""
    if module == "repro":
        return "top"
    if not module.startswith("repro."):
        return None
    head = module.split(".")[1]
    return _TOP_LEVEL_PLANES.get(head, head)


@dataclass(frozen=True)
class ModuleFacts:
    """One scanned file's identity and repro-internal imports.

    ``imports`` holds dotted repro *modules* this file imports (from
    either ``import repro.x`` or ``from repro.x import name`` forms);
    ``rel`` and ``lineno`` locate the module for findings.
    """

    module: str
    plane: str
    rel: str
    imports: Tuple[str, ...]


@dataclass
class ImportGraph:
    """Forward/reverse import edges over the scanned repro modules."""

    #: module -> modules it imports (repro-internal only).
    imports: Dict[str, Set[str]] = field(default_factory=dict)
    #: module -> modules that import it.
    imported_by: Dict[str, Set[str]] = field(default_factory=dict)
    #: module -> plane.
    planes: Dict[str, str] = field(default_factory=dict)
    #: module -> path label used in findings.
    rels: Dict[str, str] = field(default_factory=dict)

    def plane(self, module: str) -> Optional[str]:
        return self.planes.get(module) or plane_of_module(module)

    def importer_planes(self, module: str) -> Set[str]:
        """Planes of every scanned module that imports ``module``."""
        out: Set[str] = set()
        for importer in self.imported_by.get(module, ()):
            plane = self.plane(importer)
            if plane is not None:
                out.add(plane)
        return out


def build_graph(payloads: Iterable[ModuleFacts]) -> ImportGraph:
    """Fold per-file :class:`ModuleFacts` into one :class:`ImportGraph`."""
    graph = ImportGraph()
    facts: List[ModuleFacts] = sorted(
        payloads, key=lambda f: (f.module, f.rel)
    )
    for fact in facts:
        graph.planes[fact.module] = fact.plane
        graph.rels[fact.module] = fact.rel
        graph.imports.setdefault(fact.module, set()).update(fact.imports)
    known = set(graph.planes)
    for module, targets in graph.imports.items():
        for target in targets:
            # Normalise "from repro.x import name" where name is itself a
            # module-level attribute: keep the longest scanned prefix.
            resolved = _resolve_module(target, known)
            if resolved is not None and resolved != module:
                graph.imported_by.setdefault(resolved, set()).add(module)
    return graph


def _resolve_module(dotted: str, known: Set[str]) -> Optional[str]:
    """Longest scanned-module prefix of ``dotted`` (None when foreign)."""
    parts = dotted.split(".")
    for end in range(len(parts), 0, -1):
        candidate = ".".join(parts[:end])
        if candidate in known:
            return candidate
    if dotted.startswith("repro"):
        return dotted
    return None
