"""Grid-wide invariant checking.

``check_grid_invariants(grid)`` sweeps every subsystem for consistency
violations and returns a list of human-readable findings (empty = clean).
The integration tests run it after churny workloads; it is also a
first-stop debugging tool for anyone extending the library::

    problems = check_grid_invariants(grid)
    assert not problems, "\\n".join(problems)

Checked invariants
------------------
* resource books: ``0 <= available <= capacity`` per peer (within float
  tolerance), access-link residuals within ``[0, access_bw]``;
* session ledger: every active session's peers are alive; the
  peer -> sessions index matches the sessions' peer sets;
* catalog: ``replicas`` and ``hosted_by`` are mutual inverses, and no
  departed peer hosts anything;
* registry/DHT: every instance record matches the catalog's host set;
  every alive peer is a DHT member and vice versa;
* CAN only: zone volumes tile the whole space; neighbor sets symmetric.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.grid import P2PGrid
from repro.lookup.can import CanNetwork

__all__ = ["check_grid_invariants"]

_TOL = 1e-6


def _check_peers(grid: P2PGrid, problems: List[str]) -> None:
    for peer in grid.directory.alive_peers():
        if np.any(peer.available.values < -_TOL):
            problems.append(
                f"peer {peer.peer_id}: negative availability "
                f"{peer.available.values}"
            )
        if np.any(peer.available.values > peer.capacity.values + _TOL):
            problems.append(
                f"peer {peer.peer_id}: availability exceeds capacity "
                f"({peer.available.values} > {peer.capacity.values})"
            )
        for label, value in (("uplink", peer.avail_up),
                             ("downlink", peer.avail_down)):
            if not -_TOL <= value <= peer.access_bw + _TOL:
                problems.append(
                    f"peer {peer.peer_id}: {label} residual {value} outside "
                    f"[0, {peer.access_bw}]"
                )


def _check_sessions(grid: P2PGrid, problems: List[str]) -> None:
    ledger = grid.ledger
    for session in ledger.active_sessions():
        for pid in session.peers:
            if not grid.directory.is_alive(pid):
                problems.append(
                    f"session {session.session_id}: active on dead peer {pid}"
                )
        for pid in sorted(session.participants | {session.user_peer}):
            if session.session_id not in ledger.sessions_on_peer(pid):
                problems.append(
                    f"session {session.session_id}: missing from peer "
                    f"{pid}'s index"
                )
    for pid in list(getattr(ledger, "_by_peer", {})):
        for sid in ledger.sessions_on_peer(pid):
            session = next(
                (s for s in ledger.active_sessions() if s.session_id == sid),
                None,
            )
            if session is None:
                problems.append(
                    f"peer {pid}: index references inactive session {sid}"
                )
            elif pid not in session.participants | {session.user_peer}:
                problems.append(
                    f"peer {pid}: indexed for session {sid} it is not part of"
                )


def _check_catalog(grid: P2PGrid, problems: List[str]) -> None:
    catalog = grid.catalog
    for iid, peers in catalog.replicas.items():
        for pid in peers:
            if iid not in catalog.hosted_instances(pid):
                problems.append(
                    f"catalog: {iid} lists host {pid} but hosted_by disagrees"
                )
            if not grid.directory.is_alive(pid):
                problems.append(f"catalog: {iid} hosted by dead peer {pid}")
    for pid, iids in catalog.hosted_by.items():
        for iid in iids:
            if pid not in catalog.hosts(iid):
                problems.append(
                    f"catalog: hosted_by says {pid} hosts {iid} but "
                    "replicas disagree"
                )


def _check_registry(grid: P2PGrid, problems: List[str]) -> None:
    catalog = grid.catalog
    alive = set(grid.directory.alive_ids)
    members = set(grid.ring.peers())
    for pid in alive - members:
        problems.append(f"registry: alive peer {pid} missing from the DHT")
    for pid in members - alive:
        problems.append(f"registry: dead peer {pid} still in the DHT")
    if not alive:
        # Churn can empty the population; there is no vantage point to
        # issue lookups from, so report instead of crashing.
        problems.append("registry: no alive peer to run record checks from")
        return
    prefix = grid.registry.INSTANCE_PREFIX
    for iid in catalog.instances:
        record, _ = grid.ring.get(prefix + iid, from_peer=next(iter(alive)))
        expected = frozenset(catalog.hosts(iid))
        if record is None:
            record = frozenset()
        if frozenset(record) != expected:
            problems.append(
                f"registry: host record for {iid} is {sorted(record)}, "
                f"catalog says {sorted(expected)}"
            )


def _check_can(grid: P2PGrid, problems: List[str]) -> None:
    net = grid.ring
    if not isinstance(net, CanNetwork):
        return
    volume = net.total_volume()
    if abs(volume - 1.0) > 1e-9:
        problems.append(f"CAN: zone volumes sum to {volume}, expected 1.0")
    for node in net._nodes.values():
        for nb in node.neighbors:
            other = net._nodes.get(nb)
            if other is None:
                problems.append(
                    f"CAN: node {node.peer_id} lists departed neighbor {nb}"
                )
            elif node.peer_id not in other.neighbors:
                problems.append(
                    f"CAN: neighbor edge {node.peer_id}->{nb} not symmetric"
                )


def check_grid_invariants(grid: P2PGrid, registry: bool = True) -> List[str]:
    """Run every invariant check; returns findings (empty when clean).

    ``registry=False`` skips the record-by-record DHT audit (it routes
    one lookup per instance, which is the slow part on big catalogs).
    """
    problems: List[str] = []
    _check_peers(grid, problems)
    _check_sessions(grid, problems)
    _check_catalog(grid, problems)
    if registry:
        _check_registry(grid, problems)
    _check_can(grid, problems)
    return problems
