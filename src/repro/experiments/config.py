"""Experiment configuration and the two standard scales.

The paper simulates 10^4 peers; the full-horizon figure runs take hours
of wall-clock in pure Python at that scale, so the default scale shrinks
the population (and the request rates proportionally) while preserving
every *ratio* the results depend on: requests per peer per minute,
replicas per instance relative to population, and the probe budget
fraction ``M/N = 1%``.

Set the environment variable ``REPRO_PAPER_SCALE=1`` (checked by the
benches) or call :func:`paper_scale` to run the original numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.grid import GridConfig
from repro.network.churn import ChurnConfig
from repro.probing.prober import ProbingConfig
from repro.workload.generator import WorkloadConfig

__all__ = [
    "ExperimentConfig",
    "default_scale",
    "paper_scale",
    "scale_factor",
    "is_paper_scale",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """One simulation run: grid + workload + algorithm."""

    grid: GridConfig = field(default_factory=GridConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    algorithm: str = "qsa"
    algorithm_options: Dict = field(default_factory=dict)
    #: Extra minutes to run after generation stops so sessions resolve.
    drain_minutes: float = 61.0
    #: Write the run's telemetry event stream (JSONL) here; setting a
    #: path forces full telemetry recording on the grid for this run.
    telemetry_export: Optional[str] = None
    #: Write the run's determinism-sanitizer ledger (JSONL) here; setting
    #: a path forces ``GridConfig.sanitize`` on for this run.  Compare
    #: two ledgers with ``repro sanitize compare A B``.
    sanitize_export: Optional[str] = None

    def with_algorithm(self, name: str, **options) -> "ExperimentConfig":
        return replace(self, algorithm=name, algorithm_options=dict(options))

    def with_seed(self, seed: int) -> "ExperimentConfig":
        return replace(self, grid=replace(self.grid, seed=seed))

    def with_telemetry(self, export_path: str) -> "ExperimentConfig":
        return replace(self, telemetry_export=export_path)

    def with_sanitize(self, export_path: str) -> "ExperimentConfig":
        """The same run with the determinism sanitizer recording."""
        return replace(self, sanitize_export=export_path)

    def with_backend(self, backend: str) -> "ExperimentConfig":
        """The same run on the given peer-state backend (object / soa)."""
        return replace(self, grid=replace(self.grid,
                                          peer_state_backend=backend))

    def with_faults(self, plan) -> "ExperimentConfig":
        """The same run under a :class:`~repro.faults.FaultPlan`."""
        return replace(self, grid=replace(self.grid, faults=plan))


def is_paper_scale() -> bool:
    return os.environ.get("REPRO_PAPER_SCALE", "").strip() not in ("", "0")


def scale_factor() -> float:
    """Population scale relative to the paper's 10^4 peers."""
    return 1.0 if is_paper_scale() else 0.1


def default_scale(
    rate_per_min: float,
    horizon: float,
    churn_per_min: float = 0.0,
    seed: int = 0,
) -> ExperimentConfig:
    """A §4.1-proportional configuration at the active scale.

    ``rate_per_min`` and ``churn_per_min`` are given in *paper units*
    (requests / peers per minute at N = 10^4) and scaled down with the
    population, keeping per-peer load and per-capita churn identical.
    """
    s = scale_factor()
    n_peers = int(round(10_000 * s))
    # Keep the paper's overhead fraction M/N = 1%.
    budget = max(10, int(round(0.01 * n_peers)))
    grid = GridConfig(
        n_peers=n_peers,
        probing=ProbingConfig(budget=budget),
        churn=(
            ChurnConfig(rate_per_min=churn_per_min * s)
            if churn_per_min > 0
            else None
        ),
        seed=seed,
    )
    workload = WorkloadConfig(
        rate_per_min=max(rate_per_min * s, 1e-9),
        horizon=horizon,
    )
    return ExperimentConfig(grid=grid, workload=workload)


def paper_scale(
    rate_per_min: float,
    horizon: float,
    churn_per_min: float = 0.0,
    seed: int = 0,
) -> ExperimentConfig:
    """The paper's literal setup (10^4 peers, M = 100)."""
    grid = GridConfig(
        n_peers=10_000,
        probing=ProbingConfig(budget=100),
        churn=(
            ChurnConfig(rate_per_min=churn_per_min) if churn_per_min > 0 else None
        ),
        seed=seed,
    )
    workload = WorkloadConfig(rate_per_min=rate_per_min, horizon=horizon)
    return ExperimentConfig(grid=grid, workload=workload)
