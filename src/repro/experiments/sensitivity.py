"""Parameter sensitivity analysis for the reproduction's free knobs.

The paper fixes its parameters (§4.1); a reproduction should show how
sensitive the headline result is to the ones the paper left loose.
:func:`sweep` varies one knob at a time around the §4.1 operating point
and reports ψ for QSA and random (the gap is the headline), producing
the table `benchmarks/bench_sensitivity.py` prints.

Supported knobs
---------------
``replicas``          replicas-per-instance range midpoint (paper: 40-80)
``instances``         instances-per-service range midpoint (paper: 10-20)
``probe_period``      probing staleness bound in minutes (paper: ~1)
``quality_high_share``  share of high-quality instances in the catalog
``phi_bandwidth_weight``  ω_{m+1}: bandwidth's weight inside Φ
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Sequence, Tuple

from repro.experiments.config import ExperimentConfig, default_scale
from repro.experiments.runner import run_experiment
from repro.probing.prober import ProbingConfig

__all__ = ["KNOBS", "SensitivityRow", "sweep"]


def _with_replicas(base: ExperimentConfig, mid: float) -> ExperimentConfig:
    lo, hi = int(round(mid * 2 / 3)), int(round(mid * 4 / 3))
    catalog = replace(
        base.grid.catalog, replicas_per_instance=(max(1, lo), max(1, hi))
    )
    return replace(base, grid=replace(base.grid, catalog=catalog))


def _with_instances(base: ExperimentConfig, mid: float) -> ExperimentConfig:
    lo, hi = int(round(mid * 2 / 3)), int(round(mid * 4 / 3))
    catalog = replace(
        base.grid.catalog, instances_per_service=(max(1, lo), max(1, hi))
    )
    return replace(base, grid=replace(base.grid, catalog=catalog))


def _with_probe_period(base: ExperimentConfig, period: float) -> ExperimentConfig:
    probing = ProbingConfig(
        budget=base.grid.probing.budget,
        period=period,
        ttl=base.grid.probing.ttl,
    )
    return replace(base, grid=replace(base.grid, probing=probing))


def _with_quality_share(base: ExperimentConfig, share: float) -> ExperimentConfig:
    rest = (1.0 - share) / 2.0
    catalog = replace(
        base.grid.catalog, quality_weights=(rest, rest, share)
    )
    return replace(base, grid=replace(base.grid, catalog=catalog))


#: knob name -> (paper operating point, config transformer)
KNOBS: Dict[str, Tuple[float, Callable[[ExperimentConfig, float], ExperimentConfig]]] = {
    "replicas": (60.0, _with_replicas),
    "instances": (15.0, _with_instances),
    "probe_period": (1.0, _with_probe_period),
    "quality_high_share": (0.5, _with_quality_share),
}


class SensitivityRow:
    """ψ for both algorithms at one knob value."""

    __slots__ = ("knob", "value", "qsa", "random")

    def __init__(self, knob: str, value: float, qsa: float, rnd: float) -> None:
        self.knob = knob
        self.value = value
        self.qsa = qsa
        self.random = rnd

    @property
    def gap(self) -> float:
        return self.qsa - self.random

    def __repr__(self) -> str:
        return (
            f"SensitivityRow({self.knob}={self.value:g}: "
            f"qsa={self.qsa:.3f}, random={self.random:.3f})"
        )


def sweep(
    knob: str,
    values: Sequence[float],
    rate: float = 200.0,
    horizon: float = 20.0,
    seed: int = 0,
) -> List[SensitivityRow]:
    """ψ(QSA) and ψ(random) as one knob varies; §4.1 elsewhere."""
    try:
        _default, transform = KNOBS[knob]
    except KeyError:
        raise ValueError(
            f"unknown knob {knob!r}; choose from {sorted(KNOBS)}"
        ) from None
    rows: List[SensitivityRow] = []
    for value in values:
        base = transform(
            default_scale(rate_per_min=rate, horizon=horizon, seed=seed),
            value,
        )
        qsa = run_experiment(base.with_algorithm("qsa")).success_ratio
        rnd = run_experiment(base.with_algorithm("random")).success_ratio
        rows.append(SensitivityRow(knob, value, qsa, rnd))
    return rows
