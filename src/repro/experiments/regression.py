"""Regression tracking: compare experiment results against a baseline.

Long-lived reproductions drift -- a refactor subtly changes an RNG draw
order, a "harmless" optimization flips a tie-break -- and ψ moves without
anyone noticing.  This module provides the guard rail:

* :func:`save_baseline` -- persist a result's fingerprint as JSON;
* :func:`compare_to_baseline` -- re-run comparison with tolerances,
  returning a list of human-readable regressions (empty = clean).

Fingerprints include ψ, the request count and the status breakdown;
exact-match mode (``tolerance=0``) detects *any* behavioural change of a
seeded run, loose mode tracks statistical drift.

Typical CI usage::

    result = run_experiment(config)
    problems = compare_to_baseline(result, "baselines/qsa-200.json",
                                   tolerance=0.0)
    assert not problems, "\\n".join(problems)
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.experiments.runner import ExperimentResult

__all__ = ["fingerprint", "save_baseline", "compare_to_baseline"]

PathLike = Union[str, Path]


def fingerprint(result: ExperimentResult) -> Dict:
    """The comparable facts of one run."""
    return {
        "algorithm": result.algorithm,
        "seed": result.config.grid.seed,
        "n_peers": result.config.grid.n_peers,
        "rate_per_min": result.config.workload.rate_per_min,
        "horizon": result.config.workload.horizon,
        "n_requests": result.n_requests,
        "success_ratio": result.success_ratio,
        "breakdown": dict(result.metrics.breakdown()),
    }


def save_baseline(result: ExperimentResult, path: PathLike) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(fingerprint(result), indent=2, sort_keys=True)
                    + "\n")
    return path


def compare_to_baseline(
    result: ExperimentResult,
    path: PathLike,
    tolerance: float = 0.0,
) -> List[str]:
    """Differences between ``result`` and the stored baseline.

    ``tolerance`` bounds the allowed |Δψ| (0 = exact).  Config mismatches
    (different seed/population/rate) are always reported -- comparing
    across configs is a category error, not a regression.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    baseline = json.loads(Path(path).read_text())
    current = fingerprint(result)
    problems: List[str] = []

    for key in ("algorithm", "seed", "n_peers", "rate_per_min", "horizon"):
        if baseline.get(key) != current[key]:
            problems.append(
                f"config mismatch on {key!r}: baseline "
                f"{baseline.get(key)!r} vs current {current[key]!r}"
            )
    if problems:
        return problems

    delta = abs(current["success_ratio"] - baseline["success_ratio"])
    if delta > tolerance + 1e-12:
        problems.append(
            f"ψ drifted by {delta:.4f} "
            f"(baseline {baseline['success_ratio']:.4f}, "
            f"current {current['success_ratio']:.4f}, "
            f"tolerance {tolerance})"
        )
    if tolerance == 0.0:
        if current["n_requests"] != baseline["n_requests"]:
            problems.append(
                f"request count changed: {baseline['n_requests']} -> "
                f"{current['n_requests']}"
            )
        if current["breakdown"] != baseline["breakdown"]:
            problems.append(
                f"status breakdown changed: {baseline['breakdown']} -> "
                f"{current['breakdown']}"
            )
    return problems
