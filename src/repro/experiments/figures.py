"""Reproductions of the paper's four result figures (§4.2).

Each function runs the three §4.1 algorithms over identical grids,
workloads and churn schedules (paired by the named-RNG-stream design) and
returns the series the corresponding figure plots.  The ``rate`` and
``churn`` arguments are in *paper units* (per-minute counts at the
10^4-peer scale); :func:`repro.experiments.config.default_scale` rescales
them with the population.

Expected shapes (see EXPERIMENTS.md for measured numbers):

* **Fig. 5** -- average ψ vs request rate, no churn: QSA > random >>
  fixed at every rate; all decrease with load.
* **Fig. 6** -- ψ fluctuation at 200 req/min, no churn, sampled every
  2 min: QSA consistently on top; gaps up to ~15 % (random) and ~90 %
  (fixed).
* **Fig. 7** -- average ψ vs churn rate at 100 req/min: steep degradation
  for every algorithm even at <= 2 % peers/min; QSA degrades least.
* **Fig. 8** -- ψ fluctuation at churn 100 peers/min, 100 req/min.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.experiments.config import ExperimentConfig, default_scale
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = [
    "ALGORITHMS",
    "SweepResult",
    "SeriesResult",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
]

ALGORITHMS = ("qsa", "random", "fixed")


@dataclass
class SweepResult:
    """x -> per-algorithm average ψ (Fig. 5 / Fig. 7 shape)."""

    x_label: str
    x_values: List[float]
    ratios: Dict[str, List[float]]
    runs: Dict[str, List[ExperimentResult]] = field(default_factory=dict)

    def winner_at(self, i: int) -> str:
        return max(self.ratios, key=lambda a: self.ratios[a][i])


@dataclass
class SeriesResult:
    """time -> per-algorithm windowed ψ (Fig. 6 / Fig. 8 shape)."""

    times: np.ndarray
    ratios: Dict[str, np.ndarray]
    overall: Dict[str, float]


def _sweep(
    x_label: str,
    x_values: Sequence[float],
    make_config,
    algorithms: Sequence[str] = ALGORITHMS,
) -> SweepResult:
    ratios: Dict[str, List[float]] = {a: [] for a in algorithms}
    runs: Dict[str, List[ExperimentResult]] = {a: [] for a in algorithms}
    for x in x_values:
        base = make_config(x)
        for algo in algorithms:
            result = run_experiment(base.with_algorithm(algo))
            ratios[algo].append(result.success_ratio)
            runs[algo].append(result)
    return SweepResult(x_label, list(x_values), ratios, runs)


def _series(
    config: ExperimentConfig,
    bin_minutes: float = 2.0,
    algorithms: Sequence[str] = ALGORITHMS,
) -> SeriesResult:
    times = None
    ratios: Dict[str, np.ndarray] = {}
    overall: Dict[str, float] = {}
    for algo in algorithms:
        result = run_experiment(config.with_algorithm(algo))
        t, r = result.series(bin_minutes)
        times = t
        ratios[algo] = r
        overall[algo] = result.success_ratio
    return SeriesResult(times, ratios, overall)


def figure5(
    rates: Sequence[float] = (50, 100, 200, 400, 600, 800, 1000),
    horizon: float = 400.0,
    seed: int = 0,
) -> SweepResult:
    """Fig. 5: average ψ vs request rate (req/min), no churn, 400 min."""
    return _sweep(
        "request rate (req/min)",
        rates,
        lambda rate: default_scale(rate_per_min=rate, horizon=horizon, seed=seed),
    )


def figure6(
    rate: float = 200.0,
    horizon: float = 100.0,
    bin_minutes: float = 2.0,
    seed: int = 0,
) -> SeriesResult:
    """Fig. 6: ψ fluctuation at 200 req/min over 100 min, no churn."""
    config = default_scale(rate_per_min=rate, horizon=horizon, seed=seed)
    return _series(config, bin_minutes)


def figure7(
    churn_rates: Sequence[float] = (0, 25, 50, 100, 150, 200),
    rate: float = 100.0,
    horizon: float = 60.0,
    seed: int = 0,
) -> SweepResult:
    """Fig. 7: average ψ vs churn rate (peers/min), 100 req/min, 60 min."""
    return _sweep(
        "churn rate (peers/min)",
        churn_rates,
        lambda churn: default_scale(
            rate_per_min=rate, horizon=horizon, churn_per_min=churn, seed=seed
        ),
    )


def figure8(
    rate: float = 100.0,
    churn: float = 100.0,
    horizon: float = 60.0,
    bin_minutes: float = 2.0,
    seed: int = 0,
) -> SeriesResult:
    """Fig. 8: ψ fluctuation over 60 min at churn 100 peers/min."""
    config = default_scale(
        rate_per_min=rate, horizon=horizon, churn_per_min=churn, seed=seed
    )
    return _series(config, bin_minutes)
