"""Design-choice ablations for the QSA model (DESIGN.md A1-A3).

The paper motivates three design decisions that these ablations isolate:

* **A1 -- the uptime term** (§3.3, footnote 4; explains Fig. 7/8): run the
  churn experiment with the uptime filter on vs. off.
* **A2 -- the probe budget M** (§2.2): sweep M and watch selection decay
  towards the random policy as local knowledge vanishes.
* **A3 -- tier contributions** (§2.3): QSA composition with random peer
  selection, random composition with QSA peer selection, and the full
  model, to show both tiers matter.

A3's hybrids are built by composing the strategy hooks of the QSA and
random aggregators.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.core.aggregation import QSAAggregator
from repro.core.baselines import RandomAggregator, random_consistent_path
from repro.core.composition import ComposedPath, ConsistencyGraph
from repro.experiments.config import ExperimentConfig, default_scale
from repro.experiments.metrics import MetricsCollector
from repro.experiments.runner import ExperimentResult, run_experiment
from repro.grid import P2PGrid
from repro.workload.generator import RequestGenerator

__all__ = [
    "ablation_uptime",
    "ablation_probe_budget",
    "ablation_tiers",
    "HybridCompositionOnly",
    "HybridSelectionOnly",
]


# ---------------------------------------------------------------------------
# A1: uptime filter under churn
# ---------------------------------------------------------------------------

def ablation_uptime(
    churn_rates: Sequence[float] = (0, 50, 100, 200),
    rate: float = 100.0,
    horizon: float = 60.0,
    seed: int = 0,
) -> Dict[str, List[float]]:
    """ψ with/without the uptime term across churn rates."""
    out: Dict[str, List[float]] = {"uptime-aware": [], "uptime-blind": []}
    for churn in churn_rates:
        base = default_scale(
            rate_per_min=rate, horizon=horizon, churn_per_min=churn, seed=seed
        )
        on = run_experiment(base.with_algorithm("qsa", uptime_filter=True))
        off = run_experiment(base.with_algorithm("qsa", uptime_filter=False))
        out["uptime-aware"].append(on.success_ratio)
        out["uptime-blind"].append(off.success_ratio)
    return out


# ---------------------------------------------------------------------------
# A2: probe budget sweep
# ---------------------------------------------------------------------------

def ablation_probe_budget(
    budgets: Sequence[int] = (0, 5, 20, 100),
    rate: float = 200.0,
    horizon: float = 30.0,
    seed: int = 0,
) -> Dict[int, float]:
    """ψ as a function of the probing budget M (0 = always random)."""
    out: Dict[int, float] = {}
    for budget in budgets:
        base = default_scale(rate_per_min=rate, horizon=horizon, seed=seed)
        grid_cfg = replace(
            base.grid, probing=replace(base.grid.probing, budget=budget)
        )
        cfg = replace(base, grid=grid_cfg).with_algorithm("qsa")
        out[budget] = run_experiment(cfg).success_ratio
    return out


# ---------------------------------------------------------------------------
# A3: tier hybrids
# ---------------------------------------------------------------------------

class HybridCompositionOnly(RandomAggregator):
    """QCS composition (tier 1) + random peer selection (no tier 2)."""

    name = "qcs+random-peers"

    def compose(self, path, candidates, user_qos, request) -> ComposedPath:
        from repro.core.composition import compose_qcs

        return compose_qcs(path, candidates, user_qos, self.weights)


class HybridSelectionOnly(QSAAggregator):
    """Random consistent composition (no tier 1) + Φ peer selection."""

    name = "random-path+phi-peers"

    def compose(self, path, candidates, user_qos, request) -> ComposedPath:
        graph = ConsistencyGraph(
            path, candidates, user_qos, self.composition_weights
        )
        return random_consistent_path(graph, self.rng)


def _run_custom(config: ExperimentConfig, make_aggregator) -> ExperimentResult:
    """run_experiment with a custom aggregator factory (grid -> aggregator)."""
    import time

    t0 = time.perf_counter()  # lint: disable=DET001 -- wall_seconds is display-only
    grid = P2PGrid(config.grid)
    aggregator = make_aggregator(grid)
    metrics = MetricsCollector()
    grid.on_session_outcome(metrics.on_session)
    generator = RequestGenerator(
        grid.sim,
        config.workload,
        grid.applications,
        alive_peer_ids=lambda: grid.directory.alive_ids,
        sink=lambda req: metrics.on_setup(aggregator.aggregate(req)),
        rng=grid.rngs.stream("workload"),
    )
    generator.start()
    grid.sim.run(until=config.workload.horizon + config.drain_minutes)
    if grid.churn is not None:
        grid.churn.stop()
    grid.sim.run()
    return ExperimentResult(
        config=config,
        algorithm=getattr(aggregator, "name", "custom"),
        metrics=metrics,
        n_requests=metrics.n_requests,
        success_ratio=metrics.success_ratio(),
        mean_lookup_hops=metrics.mean_lookup_hops(),
        probe_overhead=grid.probing.overhead_ratio(),
        n_arrivals=grid.churn.n_arrivals if grid.churn else 0,
        n_departures=grid.churn.n_departures if grid.churn else 0,
        wall_seconds=time.perf_counter() - t0,  # lint: disable=DET001 -- display-only
    )


def ablation_tiers(
    rate: float = 400.0,
    horizon: float = 30.0,
    seed: int = 0,
) -> Dict[str, float]:
    """ψ of the full model vs. each tier alone vs. neither."""
    base = default_scale(rate_per_min=rate, horizon=horizon, seed=seed)

    def composition_only(grid: P2PGrid):
        return HybridCompositionOnly(
            grid.compiler, grid.registry, grid.directory, grid.ledger,
            grid.composition_weights, grid.rngs.stream("aggregator-hybrid-c"),
        )

    def selection_only(grid: P2PGrid):
        return HybridSelectionOnly(
            grid.compiler, grid.registry, grid.directory, grid.ledger,
            grid.probing, grid.composition_weights, grid.phi_weights,
            grid.rngs.stream("aggregator-hybrid-s"),
        )

    out = {
        "full-qsa": run_experiment(base.with_algorithm("qsa")).success_ratio,
        "qcs+random-peers": _run_custom(base, composition_only).success_ratio,
        "random-path+phi-peers": _run_custom(base, selection_only).success_ratio,
        "neither (random)": run_experiment(
            base.with_algorithm("random")
        ).success_ratio,
    }
    return out
