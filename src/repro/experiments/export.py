"""Exporting experiment results to JSON and CSV.

Reproduction data should leave the process in machine-readable form so
downstream analysis (plots, statistics, regression tracking) does not
have to re-run simulations.  These helpers serialize the harness's
result objects with plain-stdlib ``json``/``csv`` -- no extra deps.

* :func:`result_to_dict` / :func:`save_result_json` -- one
  :class:`~repro.experiments.runner.ExperimentResult`, including the
  status breakdown and (optionally) per-request records.
* :func:`sweep_to_csv` -- a figure sweep (x values x algorithms) as the
  CSV the corresponding figure would be plotted from.
* :func:`series_to_csv` -- a fluctuation series (Fig. 6/8 shape).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Sequence, Union

import numpy as np

from repro.experiments.runner import ExperimentResult

__all__ = [
    "result_to_dict",
    "save_result_json",
    "sweep_to_csv",
    "series_to_csv",
]

PathLike = Union[str, Path]


def result_to_dict(
    result: ExperimentResult, include_records: bool = False
) -> Dict:
    """A JSON-safe dictionary view of one experiment run."""
    out = {
        "algorithm": result.algorithm,
        "success_ratio": result.success_ratio,
        "n_requests": result.n_requests,
        "mean_lookup_hops": result.mean_lookup_hops,
        "probe_overhead": result.probe_overhead,
        "n_arrivals": result.n_arrivals,
        "n_departures": result.n_departures,
        "wall_seconds": result.wall_seconds,
        "breakdown": dict(result.metrics.breakdown()),
        "config": {
            "n_peers": result.config.grid.n_peers,
            "seed": result.config.grid.seed,
            "lookup_protocol": result.config.grid.lookup_protocol,
            "probe_budget": result.config.grid.probing.budget,
            "rate_per_min": result.config.workload.rate_per_min,
            "horizon": result.config.workload.horizon,
            "churn_per_min": (
                result.config.grid.churn.rate_per_min
                if result.config.grid.churn
                else 0.0
            ),
        },
    }
    if include_records:
        out["records"] = [
            {
                "request_id": r.request_id,
                "arrival_time": r.arrival_time,
                "application": r.application,
                "qos_level": r.qos_level,
                "status": r.status,
                "success": r.success,
                "lookup_hops": r.lookup_hops,
            }
            for r in result.metrics.records.values()
        ]
    return out


def save_result_json(
    result: ExperimentResult,
    path: PathLike,
    include_records: bool = False,
) -> Path:
    """Write one run to ``path`` as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.write_text(
        json.dumps(result_to_dict(result, include_records), indent=2,
                   sort_keys=True)
        + "\n"
    )
    return path


def sweep_to_csv(
    x_label: str,
    x_values: Sequence[float],
    columns: Dict[str, Sequence[float]],
    path: PathLike,
) -> Path:
    """Write a sweep (Fig. 5/7 shape) as CSV: one row per x value."""
    path = Path(path)
    names = list(columns)
    for name in names:
        if len(columns[name]) != len(x_values):
            raise ValueError(
                f"column {name!r} has {len(columns[name])} values, "
                f"expected {len(x_values)}"
            )
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_label, *names])
        for i, x in enumerate(x_values):
            writer.writerow([x, *(columns[n][i] for n in names)])
    return path


def series_to_csv(
    times: Sequence[float],
    series: Dict[str, Sequence[float]],
    path: PathLike,
    time_label: str = "time_min",
) -> Path:
    """Write a fluctuation series (Fig. 6/8 shape) as CSV.

    NaN samples (empty windows) are written as empty cells.
    """
    path = Path(path)
    names = list(series)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([time_label, *names])
        for i, t in enumerate(times):
            row = [t]
            for n in names:
                v = series[n][i]
                row.append("" if not np.isfinite(v) else v)
            writer.writerow(row)
    return path
