"""Plain-text rendering of figure series and tables.

Every bench prints through these helpers so that the reproduced
rows/series look the same everywhere (and diff cleanly between runs).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["format_series_table", "format_sweep_table", "banner"]


def banner(title: str, subtitle: str = "") -> str:
    lines = ["=" * 72, title]
    if subtitle:
        lines.append(subtitle)
    lines.append("=" * 72)
    return "\n".join(lines)


def format_sweep_table(
    x_label: str,
    x_values: Sequence[float],
    columns: Dict[str, Sequence[float]],
    value_format: str = "{:8.3f}",
) -> str:
    """A table with one row per x value, one column per algorithm."""
    names = list(columns)
    header = f"{x_label:>16} " + " ".join(f"{n:>8}" for n in names)
    rows = [header, "-" * len(header)]
    for i, x in enumerate(x_values):
        cells = " ".join(value_format.format(columns[n][i]) for n in names)
        rows.append(f"{x:>16g} {cells}")
    return "\n".join(rows)


def format_series_table(
    time_label: str,
    times: Sequence[float],
    series: Dict[str, Sequence[float]],
) -> str:
    """A time-series table (Fig. 6/8 style); NaN cells print as '-'."""
    names = list(series)
    header = f"{time_label:>10} " + " ".join(f"{n:>8}" for n in names)
    rows = [header, "-" * len(header)]
    for i, t in enumerate(times):
        cells = []
        for n in names:
            v = series[n][i]
            cells.append(f"{v:8.3f}" if np.isfinite(v) else f"{'-':>8}")
        rows.append(f"{t:>10g} " + " ".join(cells))
    return "\n".join(rows)
