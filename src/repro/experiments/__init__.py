"""Experiment harness: §4.1 methodology, Fig. 5-8 and the ablations.

* :mod:`~repro.experiments.metrics` -- the success-ratio metric ψ and
  per-request outcome tracking.
* :mod:`~repro.experiments.runner` -- one simulation run: grid +
  workload + algorithm -> :class:`ExperimentResult`.
* :mod:`~repro.experiments.figures` -- the four result figures.
* :mod:`~repro.experiments.ablations` -- design-choice ablations
  (uptime term, probe budget, tier contributions).
* :mod:`~repro.experiments.reporting` -- plain-text tables/series.
"""

from repro.experiments.config import ExperimentConfig, paper_scale, default_scale
from repro.experiments.metrics import MetricsCollector, RequestRecord
from repro.experiments.runner import ExperimentResult, run_experiment

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "MetricsCollector",
    "RequestRecord",
    "default_scale",
    "paper_scale",
    "run_experiment",
]
