"""Load-balance analytics: measuring the paper's advantage (3).

§1 claims dynamic peer selection yields "(3) load balance in
heterogeneous environments", and §4.2 explains QSA's win partly by
"always selecting the peers which have the most abundant resources".
This module quantifies that:

* :class:`UtilizationSampler` -- a simulation process that periodically
  snapshots every alive peer's end-system utilization
  (1 - available/capacity, averaged over resource dimensions).
* :func:`jain_index` -- Jain's fairness index
  ``(Σx)² / (n·Σx²)`` ∈ (0, 1]; 1 = perfectly even utilization.
* :func:`utilization_report` -- summary statistics over a run's samples.

``benchmarks/bench_load_balance.py`` uses these to show QSA's Φ rule
producing measurably fairer utilization than blind random placement on
the same workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from repro.network.peer import PeerDirectory
from repro.sim.engine import Simulator
from repro.sim.process import Process

__all__ = ["jain_index", "UtilizationSampler", "UtilizationReport"]


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index of a non-negative sample (1 = perfectly fair).

    Degenerate all-zero samples count as perfectly fair (an idle grid is
    a balanced grid).
    """
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        raise ValueError("fairness of an empty sample is undefined")
    if np.any(x < 0):
        raise ValueError("utilization values must be non-negative")
    total = x.sum()
    if total == 0:
        return 1.0
    return float(total**2 / (x.size * np.dot(x, x)))


@dataclass
class UtilizationReport:
    """Summary of sampled per-peer utilizations over a run."""

    mean_utilization: float
    peak_utilization: float
    mean_jain: float
    min_jain: float
    mean_jain_headroom: float
    n_samples: int

    def __str__(self) -> str:
        return (
            f"util mean={self.mean_utilization:.3f} "
            f"peak={self.peak_utilization:.3f} "
            f"jain mean={self.mean_jain:.3f} min={self.min_jain:.3f} "
            f"headroom jain={self.mean_jain_headroom:.3f} "
            f"({self.n_samples} samples)"
        )


class UtilizationSampler:
    """Samples per-peer end-system utilization on a fixed period."""

    def __init__(
        self,
        sim: Simulator,
        directory: PeerDirectory,
        period: float = 5.0,
        horizon: float | None = None,
    ) -> None:
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.sim = sim
        self.directory = directory
        self.period = period
        self.horizon = horizon
        self.times: List[float] = []
        self.jain: List[float] = []
        #: Jain index over *remaining headroom* -- the water-filling
        #: evenness Φ's availability-seeking rule targets.
        self.jain_headroom: List[float] = []
        self.mean_util: List[float] = []
        self.peak_util: List[float] = []

    def sample_once(self) -> float:
        """Take one utilization snapshot; returns the Jain index."""
        utils = []
        headroom = []
        for peer in self.directory.alive_peers():
            with np.errstate(invalid="ignore"):
                u = 1.0 - peer.available.values / peer.capacity.values
            # Reserve/release float dust can leave availability a few
            # ulps above capacity; clamp to the meaningful range.
            utils.append(float(np.clip(np.mean(u), 0.0, 1.0)))
            headroom.append(float(np.clip(peer.available.values.mean(), 0.0,
                                          None)))
        arr = np.asarray(utils)
        j = jain_index(arr)
        self.times.append(self.sim.now)
        self.jain.append(j)
        self.jain_headroom.append(jain_index(np.asarray(headroom)))
        self.mean_util.append(float(arr.mean()) if arr.size else 0.0)
        self.peak_util.append(float(arr.max()) if arr.size else 0.0)
        return j

    def _run(self) -> Iterator:
        while self.horizon is None or self.sim.now < self.horizon:
            yield self.sim.timeout(self.period)
            self.sample_once()

    def start(self) -> Process:
        return Process(self.sim, self._run(), name="utilization-sampler")

    def report(self, skip_warmup: int = 1) -> UtilizationReport:
        """Aggregate samples (dropping the first ``skip_warmup``)."""
        if len(self.times) <= skip_warmup:
            raise ValueError("not enough samples collected")
        jain = self.jain[skip_warmup:]
        mean_u = self.mean_util[skip_warmup:]
        peak_u = self.peak_util[skip_warmup:]
        return UtilizationReport(
            mean_utilization=float(np.mean(mean_u)),
            peak_utilization=float(np.max(peak_u)),
            mean_jain=float(np.mean(jain)),
            min_jain=float(np.min(jain)),
            mean_jain_headroom=float(np.mean(self.jain_headroom[skip_warmup:])),
            n_samples=len(jain),
        )
