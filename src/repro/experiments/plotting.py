"""Terminal (ASCII) charts for the figure reproductions.

The evaluation figures are line charts; this renders them in a terminal
without any plotting dependency: a character canvas with one marker per
algorithm, shared axes, and a legend.  Used by ``python -m repro
figureN --plot`` and handy in notebooks/CI logs.

The renderer is deliberately simple -- nearest-cell rasterization of
(x, y) points joined by linear interpolation -- but handles NaN gaps
(empty sample windows) and degenerate ranges.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


__all__ = ["ascii_chart", "MARKERS"]

#: Per-series markers, assigned in insertion order.
MARKERS = ("*", "o", "+", "x", "#", "@")


def _scale(v: float, lo: float, hi: float, cells: int) -> int:
    """Map ``v`` in [lo, hi] to a cell index in [0, cells-1]."""
    if hi <= lo:
        return 0
    frac = (v - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(frac * (cells - 1)))))


def ascii_chart(
    series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    y_range: Optional[Tuple[float, float]] = None,
    title: str = "",
) -> str:
    """Render named (xs, ys) series as a multi-line string chart.

    NaN y-values break the line (a gap), matching how the series tables
    print ``-`` for empty sample windows.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 16 or height < 4:
        raise ValueError("canvas too small to be readable")

    all_x: List[float] = []
    all_y: List[float] = []
    for xs, ys in series.values():
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        all_x.extend(float(x) for x in xs)
        all_y.extend(float(y) for y in ys if math.isfinite(y))
    if not all_x or not all_y:
        raise ValueError("no finite data to plot")

    x_lo, x_hi = min(all_x), max(all_x)
    if y_range is not None:
        y_lo, y_hi = y_range
    else:
        y_lo, y_hi = min(all_y), max(all_y)
        if y_lo == y_hi:  # flat series: pad so the line sits mid-canvas
            y_lo, y_hi = y_lo - 0.5, y_hi + 0.5

    canvas = [[" "] * width for _ in range(height)]

    for (name, (xs, ys)), marker in zip(series.items(), MARKERS):
        pts = [
            (float(x), float(y))
            for x, y in zip(xs, ys)
            if math.isfinite(float(y))
        ]
        # Rasterize segments between consecutive finite points so lines
        # stay connected even on sparse data.
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            steps = max(
                abs(_scale(x1, x_lo, x_hi, width) - _scale(x0, x_lo, x_hi, width)),
                1,
            )
            for s in range(steps + 1):
                t = s / steps
                cx = _scale(x0 + t * (x1 - x0), x_lo, x_hi, width)
                cy = _scale(y0 + t * (y1 - y0), y_lo, y_hi, height)
                canvas[height - 1 - cy][cx] = marker
        # Lone points (or a single-point series) still get a marker.
        for x, y in pts:
            cx = _scale(x, x_lo, x_hi, width)
            cy = _scale(y, y_lo, y_hi, height)
            canvas[height - 1 - cy][cx] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    y_top = f"{y_hi:g}"
    y_bot = f"{y_lo:g}"
    label_w = max(len(y_top), len(y_bot), len(y_label)) + 1
    lines.append(f"{y_top:>{label_w}} ┤" + "".join(canvas[0]))
    for row in canvas[1:-1]:
        lines.append(" " * label_w + " │" + "".join(row))
    lines.append(f"{y_bot:>{label_w}} ┤" + "".join(canvas[-1]))
    lines.append(" " * label_w + " └" + "─" * width)
    x_lo_s, x_hi_s = f"{x_lo:g}", f"{x_hi:g}"
    pad = width - len(x_lo_s) - len(x_hi_s)
    lines.append(
        " " * (label_w + 2) + x_lo_s + " " * max(pad, 1) + x_hi_s
    )
    lines.append(" " * (label_w + 2) + x_label)
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), MARKERS)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)
