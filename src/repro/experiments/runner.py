"""Run one experiment: grid + workload + algorithm -> result.

A run builds a fresh :class:`~repro.grid.P2PGrid` from the config,
instantiates the requested aggregation algorithm, streams the workload
through it and lets the simulation drain so every admitted session
resolves.  Because each subsystem draws from its own named RNG stream,
two runs that differ only in the algorithm see the *same* peers, catalog,
churn schedule and request sequence -- the comparisons in the figures are
paired, exactly like the paper's "implement two common heuristic
algorithms for comparison" methodology.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional


from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import MetricsCollector
from repro.grid import P2PGrid
from repro.workload.generator import RequestGenerator

__all__ = ["ExperimentResult", "run_experiment"]


@dataclass
class ExperimentResult:
    """Everything a figure/bench needs from one run."""

    config: ExperimentConfig
    algorithm: str
    metrics: MetricsCollector
    n_requests: int
    success_ratio: float
    mean_lookup_hops: float
    probe_overhead: float
    n_arrivals: int
    n_departures: int
    wall_seconds: float
    #: Discovery-plane split: lookups that walked the overlay vs. lookups
    #: served from the generation-checked value cache (fast paths).
    n_routed_discoveries: int = 0
    n_cached_discoveries: int = 0
    #: Sessions admitted at setup (ψ's numerator before churn failures).
    n_admitted: int = 0
    #: Set when the config asked for a telemetry export.
    n_telemetry_events: int = 0
    telemetry_summary: Optional[str] = None
    #: Set when the config asked for a sanitizer ledger export.
    n_sanitize_records: int = 0
    #: Fault-injection tallies (zero / None without an active plan).
    n_faults_injected: int = 0
    n_retries: int = 0
    n_retries_exhausted: int = 0
    fault_summary: Optional[str] = None

    def series(self, bin_minutes: float = 2.0):
        return self.metrics.time_series(
            bin_minutes, horizon=self.config.workload.horizon
        )

    def summary(self) -> str:
        b = self.metrics.breakdown()
        parts = ", ".join(f"{k}={v}" for k, v in sorted(b.items()))
        return (
            f"{self.algorithm}: ψ={self.success_ratio:.3f} "
            f"over {self.n_requests} requests ({parts})"
        )


def run_experiment(
    config: ExperimentConfig, profiler=None
) -> ExperimentResult:
    """Build the grid, stream the workload, drain, and collect ψ.

    ``profiler`` (a :class:`repro.telemetry.profiling.Profiler`) attaches
    to the grid's span tracer for wall-clock attribution; it forces
    telemetry spans on but observes only in-process, so the exported
    stream is unchanged by profiling.
    """
    t0 = time.perf_counter()  # lint: disable=DET001 -- wall_seconds is display-only
    grid_config = config.grid
    needs_telemetry = config.telemetry_export is not None or profiler is not None
    if needs_telemetry and not grid_config.telemetry:
        grid_config = replace(grid_config, telemetry=True)
    if config.sanitize_export is not None and not grid_config.sanitize:
        grid_config = replace(grid_config, sanitize=True)
    grid = P2PGrid(grid_config)
    if profiler is not None:
        profiler.attach(grid)
    aggregator = grid.make_aggregator(
        config.algorithm, **dict(config.algorithm_options)
    )
    # The collector rides the telemetry bus: the aggregator publishes
    # request.setup, the grid publishes session.resolved, and the bus
    # dispatches both even with full telemetry recording off.
    metrics = MetricsCollector()
    metrics.attach(grid.telemetry.bus)

    def sink(request):
        aggregator.aggregate(request)

    generator = RequestGenerator(
        grid.sim,
        config.workload,
        grid.applications,
        alive_peer_ids=lambda: grid.directory.alive_ids,
        sink=sink,
        rng=grid.rngs.stream("workload"),
    )
    generator.start()
    grid.sim.run(until=config.workload.horizon + config.drain_minutes)
    # Stop churn (if any) and drain the remaining session completions.
    if grid.churn is not None:
        grid.churn.stop()
    grid.sim.run()

    n_events = 0
    telemetry_summary = None
    if config.telemetry_export is not None:
        n_events = grid.telemetry.export_jsonl(config.telemetry_export)
        telemetry_summary = grid.telemetry.summary()

    n_sanitize = 0
    if config.sanitize_export is not None and grid.sanitizer is not None:
        n_sanitize = grid.sanitizer.export_jsonl(config.sanitize_export)

    injector = grid.injector
    return ExperimentResult(
        config=config,
        algorithm=config.algorithm,
        metrics=metrics,
        n_requests=metrics.n_requests,
        success_ratio=metrics.success_ratio(),
        mean_lookup_hops=metrics.mean_lookup_hops(),
        probe_overhead=grid.probing.overhead_ratio(),
        n_arrivals=grid.churn.n_arrivals if grid.churn else 0,
        n_departures=grid.churn.n_departures if grid.churn else 0,
        wall_seconds=time.perf_counter() - t0,  # lint: disable=DET001 -- display-only
        n_routed_discoveries=grid.registry.n_routed_discoveries,
        n_cached_discoveries=grid.registry.n_cached_discoveries,
        n_admitted=metrics.n_admitted,
        n_telemetry_events=n_events,
        telemetry_summary=telemetry_summary,
        n_sanitize_records=n_sanitize,
        n_faults_injected=injector.n_injected if injector else 0,
        n_retries=injector.n_retries if injector else 0,
        n_retries_exhausted=injector.n_exhausted if injector else 0,
        fault_summary=injector.summary() if injector else None,
    )
