"""Latency analytics: setup cost and delivery-path latency.

The network model carries the paper's per-pair latency classes
(200/150/80/20/1 ms, §4.1) and the probing layer reports them, but the
paper's Φ does not consume latency and its evaluation never measures it.
These helpers close that loop:

* :func:`setup_latency_ms` -- how long one aggregation setup takes in
  wall-clock network terms: DHT routing hops (at the mean overlay-hop
  latency), one selection round-trip per hop, and one reservation
  handshake per connection.
* :func:`path_latency_ms` -- the delivery path's end-to-end one-way
  latency (sum over its application-level connections), i.e. what a
  latency-sensitive stream experiences for the whole session.
* :func:`mean_path_latency` -- averages over admitted results.

``benchmarks/bench_latency_aware.py`` uses these to evaluate the
latency-aware Φ extension (`PhiWeights.latency_aware`).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.aggregation import AggregationResult
from repro.network.topology import NetworkModel

__all__ = [
    "mean_overlay_hop_ms",
    "setup_latency_ms",
    "path_latency_ms",
    "mean_path_latency",
]


def mean_overlay_hop_ms(network: NetworkModel) -> float:
    """Expected latency of one overlay hop between random peers."""
    return float(np.mean(network.latency_classes))


def path_latency_ms(result: AggregationResult, network: NetworkModel) -> float:
    """One-way delivery latency of an admitted result's service path.

    Sums the pairwise latency over every application-level connection,
    including the final connection into the user's host.  Raises for
    non-admitted results (there is no path to measure).
    """
    if result.session is None:
        raise ValueError("path latency is only defined for admitted requests")
    return sum(
        network.latency_ms(src, dst)
        for src, dst, _bw in result.session.connections()
    )


def setup_latency_ms(
    result: AggregationResult,
    network: NetworkModel,
    overlay_hop_ms: Optional[float] = None,
) -> float:
    """Network time spent setting this aggregation up.

    Components:

    * **discovery** -- ``lookup_hops`` routed forwardings, each costing
      one overlay hop (the DHT does not track per-hop endpoints, so the
      mean class latency stands in; configurable via ``overlay_hop_ms``);
    * **selection** -- per hop, one request/response exchange between the
      selecting peer and the peer it selects (2x their pair latency);
    * **admission** -- one reservation handshake per connection of the
      final placement (2x the pair latency).

    Costs are charged for work actually performed, so rejected requests
    report the (smaller) latency they burned before failing.
    """
    hop_ms = (
        overlay_hop_ms if overlay_hop_ms is not None
        else mean_overlay_hop_ms(network)
    )
    total = result.lookup_hops * hop_ms

    if result.peers:
        # Selection exchanges: user -> first selected -> ... (selection
        # order is reverse flow order).
        selection_order = list(reversed(result.peers))
        selector = result.request.peer_id
        for selected in selection_order:
            total += 2.0 * network.latency_ms(selector, selected)
            selector = selected

    if result.session is not None:
        for src, dst, _bw in result.session.connections():
            total += 2.0 * network.latency_ms(src, dst)
    return total


def mean_path_latency(
    results: Iterable[AggregationResult], network: NetworkModel
) -> float:
    """Mean delivery-path latency over the admitted results."""
    values = [
        path_latency_ms(r, network) for r in results if r.session is not None
    ]
    if not values:
        raise ValueError("no admitted results to average over")
    return float(np.mean(values))
