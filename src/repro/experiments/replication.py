"""Multi-seed replication: mean ψ with confidence intervals.

The paper reports single simulation runs (averaged over time); good
reproduction practice adds *across-seed* replication so that "QSA beats
random" is distinguishable from catalog luck.  This module reruns a
configuration under independent seeds and reports per-algorithm mean,
standard deviation and a Student-t confidence interval, plus the win
count of head-to-head (paired-seed) comparisons.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

__all__ = ["AlgorithmStats", "ReplicationResult", "replicate", "t_interval"]

#: Two-sided Student-t critical values at 95% for small samples
#: (df -> t); falls back to the normal 1.96 beyond the table.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    12: 2.179, 15: 2.131, 20: 2.086, 30: 2.042,
}


def t_interval(values: Sequence[float]) -> Tuple[float, float]:
    """95% confidence half-width around the mean of ``values``.

    Returns ``(mean, half_width)``; a single observation yields an
    infinite half-width (you cannot estimate variance from one run).
    """
    x = np.asarray(list(values), dtype=np.float64)
    if x.size == 0:
        raise ValueError("no observations")
    mean = float(x.mean())
    if x.size == 1:
        return mean, float("inf")
    df = x.size - 1
    t = _T95.get(df)
    if t is None:
        candidates = [k for k in _T95 if k <= df]
        t = _T95[max(candidates)] if candidates else 1.96
        if df > 30:
            t = 1.96
    sem = float(x.std(ddof=1)) / math.sqrt(x.size)
    return mean, t * sem


@dataclass
class AlgorithmStats:
    """ψ statistics for one algorithm across seeds."""

    algorithm: str
    ratios: List[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.ratios))

    @property
    def std(self) -> float:
        return float(np.std(self.ratios, ddof=1)) if len(self.ratios) > 1 else 0.0

    @property
    def ci95(self) -> float:
        return t_interval(self.ratios)[1]

    def __str__(self) -> str:
        return (
            f"{self.algorithm}: ψ = {self.mean:.3f} ± {self.ci95:.3f} "
            f"(n={len(self.ratios)})"
        )


@dataclass
class ReplicationResult:
    """Replication outcome across algorithms."""

    stats: Dict[str, AlgorithmStats]
    seeds: Tuple[int, ...]

    def wins(self, a: str, b: str) -> int:
        """Paired-seed comparisons where algorithm ``a`` beats ``b``."""
        xa, xb = self.stats[a].ratios, self.stats[b].ratios
        return sum(1 for va, vb in zip(xa, xb) if va > vb)

    def dominates(self, a: str, b: str) -> bool:
        """``a`` beats ``b`` on every seed (sign-test certainty)."""
        return self.wins(a, b) == len(self.seeds)

    def summary(self) -> str:
        return "\n".join(str(s) for s in self.stats.values())


def replicate(
    base: ExperimentConfig,
    algorithms: Sequence[str] = ("qsa", "random", "fixed"),
    n_seeds: int = 5,
    first_seed: int = 0,
) -> ReplicationResult:
    """Run each algorithm under ``n_seeds`` independent seeds.

    Seeds are paired across algorithms (same grid/catalog/workload per
    seed), so head-to-head comparisons are matched.
    """
    if n_seeds < 1:
        raise ValueError("need at least one seed")
    seeds = tuple(range(first_seed, first_seed + n_seeds))
    stats = {a: AlgorithmStats(a, []) for a in algorithms}
    for seed in seeds:
        seeded = base.with_seed(seed)
        for algorithm in algorithms:
            result = run_experiment(seeded.with_algorithm(algorithm))
            stats[algorithm].ratios.append(result.success_ratio)
    return ReplicationResult(stats, seeds)
