"""The paper's performance metric ψ and per-request outcome tracking.

§4.1: "The metric ψ is defined as the number of successful requests over
the total number of all requests", where a request is successful iff it
was admitted *and* every provisioning peer stayed for the whole session.

:class:`MetricsCollector` therefore resolves each request in two steps:
setup (a rejection resolves it immediately as failed) and session
outcome (completion -> success, departure -> failure).  Besides the
overall ratio it provides the windowed time series used by the
fluctuation figures (Fig. 6/8) and a status breakdown for diagnosis.

Two intake paths feed the same internals:

* :meth:`MetricsCollector.attach` subscribes to a telemetry
  :class:`~repro.telemetry.bus.EventBus` (``request.setup`` /
  ``session.resolved``) -- how :func:`repro.experiments.runner.run_experiment`
  wires it.  The bus dispatches these events whether or not full
  telemetry recording is enabled, so the figures cost nothing extra.
* :meth:`on_setup` / :meth:`on_session` take the
  :class:`~repro.core.aggregation.AggregationResult` and
  :class:`~repro.sessions.session.Session` objects directly -- for
  callers that drive an aggregator by hand (examples, benches).

Use one path per collector; feeding both double-counts.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.aggregation import AggregationResult
from repro.sessions.session import Session, SessionState

__all__ = ["RequestRecord", "MetricsCollector"]


@dataclass
class RequestRecord:
    """Final accounting for one request."""

    request_id: int
    arrival_time: float
    application: str
    qos_level: str
    status: str                      # AggregationStatus value or session fate
    success: Optional[bool]          # None while the session is still active
    lookup_hops: int = 0
    random_fallbacks: int = 0


class MetricsCollector:
    """Aggregates request outcomes into ψ, series and breakdowns."""

    def __init__(self) -> None:
        self.records: Dict[int, RequestRecord] = {}
        self.n_setup_failures = 0
        self.n_admitted = 0

    # -- shared intake internals -------------------------------------------
    def _record_setup(
        self,
        request_id: int,
        arrival_time: float,
        application: str,
        qos_level: str,
        status: str,
        admitted: bool,
        lookup_hops: int,
        random_fallbacks: int,
    ) -> None:
        self.records[request_id] = RequestRecord(
            request_id=request_id,
            arrival_time=arrival_time,
            application=application,
            qos_level=qos_level,
            status=status,
            success=None if admitted else False,
            lookup_hops=lookup_hops,
            random_fallbacks=random_fallbacks,
        )
        if admitted:
            self.n_admitted += 1
        else:
            self.n_setup_failures += 1

    def _record_resolution(
        self, request_id: int, completed: bool, reason: Optional[str]
    ) -> None:
        record = self.records.get(request_id)
        if record is None:  # session admitted outside this experiment
            return
        if completed:
            record.success = True
            record.status = "completed"
        else:
            record.success = False
            record.status = f"session-failed ({reason})"

    # -- bus intake ---------------------------------------------------------
    def attach(self, bus) -> None:
        """Subscribe to a telemetry bus (``request.setup`` /
        ``session.resolved``); every later request flows in automatically."""
        bus.subscribe("request.setup", self._on_setup_event)
        bus.subscribe("session.resolved", self._on_resolved_event)

    def _on_setup_event(self, event) -> None:
        f = event.fields
        self._record_setup(
            request_id=f["request_id"],
            arrival_time=f["arrival_time"],
            application=f["application"],
            qos_level=f["level"],
            status=f["status"],
            admitted=f["admitted"],
            lookup_hops=f["lookup_hops"],
            random_fallbacks=f["random_fallbacks"],
        )

    def _on_resolved_event(self, event) -> None:
        f = event.fields
        self._record_resolution(
            request_id=f["request_id"],
            completed=f["state"] == SessionState.COMPLETED.value,
            reason=f["reason"],
        )

    # -- direct intake ------------------------------------------------------
    def on_setup(self, result: AggregationResult) -> None:
        req = result.request
        self._record_setup(
            request_id=req.request_id,
            arrival_time=req.arrival_time,
            application=req.application,
            qos_level=req.qos_level,
            status=result.status.value,
            admitted=result.admitted,
            lookup_hops=result.lookup_hops,
            random_fallbacks=result.random_fallbacks,
        )

    def on_session(self, session: Session) -> None:
        self._record_resolution(
            request_id=session.request_id,
            completed=session.state is SessionState.COMPLETED,
            reason=session.failure_reason,
        )

    # -- ψ -------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def n_resolved(self) -> int:
        return sum(1 for r in self.records.values() if r.success is not None)

    def success_ratio(self) -> float:
        """ψ over resolved requests (unresolved = still-active sessions)."""
        resolved = [r for r in self.records.values() if r.success is not None]
        if not resolved:
            return 0.0
        return sum(r.success for r in resolved) / len(resolved)

    # -- series & breakdowns ----------------------------------------------------
    def time_series(
        self, bin_minutes: float = 2.0, horizon: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(bin_end_times, ψ per bin)`` binned by *arrival* time.

        Empty bins yield NaN so plots show gaps rather than fake zeros.
        """
        resolved = [r for r in self.records.values() if r.success is not None]
        if not resolved:
            return np.array([]), np.array([])
        end = horizon or max(r.arrival_time for r in resolved) + 1e-9
        n_bins = max(1, int(np.ceil(end / bin_minutes)))
        hits = np.zeros(n_bins)
        totals = np.zeros(n_bins)
        for r in resolved:
            b = min(int(r.arrival_time / bin_minutes), n_bins - 1)
            totals[b] += 1
            hits[b] += bool(r.success)
        with np.errstate(invalid="ignore"):
            ratios = np.where(totals > 0, hits / np.maximum(totals, 1), np.nan)
        times = (np.arange(n_bins) + 1) * bin_minutes
        return times, ratios

    def breakdown(self) -> Counter:
        """Counts by final status string."""
        return Counter(r.status for r in self.records.values())

    def mean_lookup_hops(self) -> float:
        if not self.records:
            return 0.0
        return float(np.mean([r.lookup_hops for r in self.records.values()]))

    def fallback_rate(self) -> float:
        """Mean random-fallback selections per request (QSA diagnostics)."""
        if not self.records:
            return 0.0
        return float(np.mean([r.random_fallbacks for r in self.records.values()]))
