"""The QSA pipeline: request -> composition -> peer selection -> admission.

This module glues the two tiers of the paper's model into the four
protocol steps of §3.2 plus the hop-by-hop selection of §3.3:

1. *Acquire and translate the user request* -- the QoS compiler maps the
   request onto an abstract service path and an end-to-end QoS vector.
2. *Discover service instances* -- one routed DHT lookup per abstract
   service returns candidate specs; one per chosen instance returns
   hosting peers.
3. *Compose a QoS consistent shortest service path* -- QCS.
4. *Deliver the path to the dynamic peer selection tier* -- the
   requesting host resolves the candidate providers into its neighbor
   table (dynamic neighbor resolution) and picks the first-hop peer; each
   selected peer then resolves and picks the next, in the reverse
   direction of the aggregation flow.

Finally the session is admitted atomically; the ledger then owns it.

:class:`BaseAggregator` is the template; the *random* and *fixed*
heuristics of §4.1 subclass it in :mod:`repro.core.baselines`, overriding
only the strategy hooks (``compose`` / ``select_peers``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.composition import ComposedPath, CompositionError, compose_qcs
from repro.core.composition_vec import VectorizedComposer
from repro.core.qos import QoSVector
from repro.lookup.cache import CacheStats, trim_mapping
from repro.core.resources import WeightProfile
from repro.core.selection import PeerSelector, PhiWeights
from repro.lookup.registry import ServiceRegistry
from repro.network.peer import PeerDirectory
from repro.probing.prober import ProbingService
from repro.services.model import AbstractServicePath, ServiceInstance
from repro.services.qoscompiler import QoSCompiler, UserRequest
from repro.sessions.admission import AdmissionError
from repro.sessions.session import Session, SessionLedger
from repro.telemetry.spans import NULL_TRACER

__all__ = ["AggregationStatus", "AggregationResult", "BaseAggregator", "QSAAggregator"]


class AggregationStatus(enum.Enum):
    """Setup outcome of one aggregation request."""

    ADMITTED = "admitted"
    NO_CANDIDATES = "no-candidates"
    COMPOSITION_FAILED = "composition-failed"
    SELECTION_FAILED = "selection-failed"
    RESOURCES_DENIED = "resources-denied"
    BANDWIDTH_DENIED = "bandwidth-denied"
    #: An injected transient failure outlived its retry budget (fault
    #: injection only; never produced on a fault-free run).
    TRANSIENT_DENIED = "transient-denied"


@dataclass
class AggregationResult:
    """Everything the metrics layer wants to know about a setup attempt."""

    request: UserRequest
    status: AggregationStatus
    session: Optional[Session] = None
    composed: Optional[ComposedPath] = None
    peers: Tuple[int, ...] = ()
    lookup_hops: int = 0
    random_fallbacks: int = 0
    #: Per-hop selection outcomes in selection order (user side first);
    #: populated by QSA, empty for the baselines.  Feed to
    #: :func:`repro.core.explain.explain_result` for a human-readable
    #: decision trace.
    hop_outcomes: Tuple = ()

    @property
    def admitted(self) -> bool:
        return self.status is AggregationStatus.ADMITTED


class BaseAggregator:
    """Template for all three §4.1 algorithms (QSA / random / fixed)."""

    name = "base"
    #: Optional :class:`repro.sim.trace.Tracer`; set by the grid factory
    #: when tracing is enabled.
    tracer = None
    #: Optional :class:`repro.telemetry.bus.EventBus`; set by the grid
    #: factory.  Always receives one low-volume ``request.setup`` event
    #: per request -- the feed the metrics layer subscribes to -- whether
    #: or not full telemetry is enabled (a dispatch-only bus retains
    #: nothing).
    bus = None
    #: Optional :class:`repro.telemetry.Telemetry`; set by the grid
    #: factory only when telemetry is *enabled* (request spans, QCS
    #: instrumentation, admission-reject counters).
    telemetry = None
    #: Running random-fallback count for the request being aggregated.
    #: Strategies that can fall back (QSA's selector) reset and increment
    #: it; the pipeline copies it into every :class:`AggregationResult`
    #: at construction, which is the single source of truth the
    #: ``request.setup`` event reports.
    _fallbacks = 0

    def __init__(
        self,
        compiler: QoSCompiler,
        registry: ServiceRegistry,
        directory: PeerDirectory,
        ledger: SessionLedger,
        rng: np.random.Generator,
    ) -> None:
        self.compiler = compiler
        self.registry = registry
        self.directory = directory
        self.ledger = ledger
        self.rng = rng

    # -- strategy hooks ------------------------------------------------------
    def compose(
        self,
        path: AbstractServicePath,
        candidates: Dict[str, Tuple[ServiceInstance, ...]],
        user_qos: QoSVector,
        request: UserRequest,
    ) -> ComposedPath:
        """Choose the service instances (raise CompositionError to fail)."""
        raise NotImplementedError

    def select_peers(
        self,
        request: UserRequest,
        composed: ComposedPath,
        hosts_selection_order: List[List[int]],
    ) -> Optional[Tuple[int, ...]]:
        """Map instances to peers.

        ``hosts_selection_order[i]`` hosts the instance ``i`` hops from
        the user (i.e. ``composed.instances[-1 - i]``).  Returns peers in
        *flow order* (aligned with ``composed.instances``) or ``None``
        when some hop has no selectable peer.
        """
        raise NotImplementedError

    def _trace(self, result: AggregationResult) -> AggregationResult:
        if self.tracer is not None:
            self.tracer.emit(
                "request",
                request_id=result.request.request_id,
                peer=result.request.peer_id,
                application=result.request.application,
                level=result.request.qos_level,
                status=result.status.value,
            )
        if self.bus is not None:
            req = result.request
            self.bus.emit(
                "request.setup",
                request_id=req.request_id,
                peer=req.peer_id,
                application=req.application,
                level=req.qos_level,
                status=result.status.value,
                admitted=result.admitted,
                lookup_hops=result.lookup_hops,
                random_fallbacks=result.random_fallbacks,
                arrival_time=req.arrival_time,
                duration=req.session_duration,
            )
        return result

    # -- the pipeline ---------------------------------------------------------
    def aggregate(self, request: UserRequest) -> AggregationResult:
        """Run the full setup pipeline for one request."""
        tel = self.telemetry
        if tel is None:
            return self._aggregate(request)
        with tel.tracer.span(
            "request",
            request_id=request.request_id,
            application=request.application,
            algorithm=self.name,
        ):
            return self._aggregate(request)

    def _aggregate(self, request: UserRequest) -> AggregationResult:
        tel = self.telemetry
        tracer = tel.tracer if tel is not None else NULL_TRACER
        path, user_qos = self.compiler.compile(request, self.rng)

        with tracer.span("lookup.candidates", services=len(path.services)):
            candidates, hops = self.registry.discover_path_candidates(
                path.services, request.peer_id
            )
        if any(not specs for specs in candidates.values()):
            return self._trace(AggregationResult(
                request, AggregationStatus.NO_CANDIDATES, lookup_hops=hops
            ))

        try:
            composed = self.compose(path, candidates, user_qos, request)
        except CompositionError:
            return self._trace(AggregationResult(
                request, AggregationStatus.COMPOSITION_FAILED, lookup_hops=hops
            ))

        # Host discovery, selection order (user-adjacent instance first).
        # A composed path may repeat an instance; with the fast paths on,
        # repeats are served from the first answer (accounting replayed
        # by the registry so hop totals and telemetry stay identical).
        dedupe = getattr(self.registry, "cache_active", False)
        host_memo: Dict[str, Tuple] = {}
        hosts_selection_order: List[List[int]] = []
        with tracer.span("lookup.hosts", instances=len(composed.instances)):
            for inst in reversed(composed.instances):
                cached = host_memo.get(inst.instance_id) if dedupe else None
                if cached is None:
                    host_set, h = self.registry.discover_hosts(
                        inst.instance_id, request.peer_id
                    )
                    if dedupe:
                        host_memo[inst.instance_id] = (host_set, h)
                else:
                    host_set, h = cached
                    self.registry.replay_discovery(
                        self.registry.INSTANCE_PREFIX + inst.instance_id,
                        request.peer_id,
                        h,
                    )
                hops += h
                hosts_selection_order.append(sorted(host_set))

        peers = self.select_peers(request, composed, hosts_selection_order)
        if peers is None:
            return self._trace(AggregationResult(
                request,
                AggregationStatus.SELECTION_FAILED,
                composed=composed,
                lookup_hops=hops,
                random_fallbacks=self._fallbacks,
            ))

        try:
            with tracer.span("admission", peers=len(peers)):
                session = self.ledger.admit(
                    request_id=request.request_id,
                    user_peer=request.peer_id,
                    instances=composed.instances,
                    peers=peers,
                    duration=request.session_duration,
                )
        except AdmissionError as exc:
            status = {
                "resources": AggregationStatus.RESOURCES_DENIED,
                "bandwidth": AggregationStatus.BANDWIDTH_DENIED,
            }.get(exc.stage, AggregationStatus.TRANSIENT_DENIED)
            if self.telemetry is not None:
                self.telemetry.metrics.counter(
                    "session.admission_rejected"
                ).inc()
            return self._trace(AggregationResult(
                request, status, composed=composed, peers=peers,
                lookup_hops=hops, random_fallbacks=self._fallbacks,
            ))

        return self._trace(AggregationResult(
            request,
            AggregationStatus.ADMITTED,
            session=session,
            composed=composed,
            peers=peers,
            lookup_hops=hops,
            random_fallbacks=self._fallbacks,
        ))


class QSAAggregator(BaseAggregator):
    """The paper's algorithm: QCS composition + Φ/uptime peer selection."""

    name = "qsa"
    #: Size caps for the composition memos (insertion-order eviction,
    #: enforced between compositions so the edge loop stays a plain dict).
    EDGE_CACHE_CAP = 1 << 16
    COST_CACHE_CAP = 1 << 16
    #: Composition-memo fast path (synced with ``GridConfig.fast_paths``
    #: by the grid factory).  Off: every composition rebuilds edges and
    #: costs from scratch -- the memo-free ground truth the exactness
    #: contract (docs/performance.md) is checked against.
    fast_paths = True

    def __init__(
        self,
        compiler: QoSCompiler,
        registry: ServiceRegistry,
        directory: PeerDirectory,
        ledger: SessionLedger,
        probing: ProbingService,
        composition_weights: WeightProfile,
        phi_weights: PhiWeights,
        rng: np.random.Generator,
        uptime_filter: bool = True,
        composition_method: str = "vectorized",
    ) -> None:
        super().__init__(compiler, registry, directory, ledger, rng)
        self.probing = probing
        self.composition_weights = composition_weights
        if composition_method not in ("vectorized", "dp", "dijkstra"):
            raise ValueError(
                f"unknown composition method {composition_method!r} "
                "(vectorized/dp/dijkstra)"
            )
        self.composition_method = composition_method
        # The vectorized kernel's incremental index + plan cache; only
        # consulted with fast_paths on (off falls back to the memo-free
        # reference kernel, the exactness ground truth).
        self._vec: Optional[VectorizedComposer] = (
            VectorizedComposer(composition_weights)
            if composition_method == "vectorized"
            else None
        )
        self.selector = PeerSelector(
            probing, phi_weights, uptime_filter=uptime_filter
        )
        # Instance-pair consistency and edge costs are catalog-immutable;
        # memoizing them across requests removes the dominant cost of
        # graph construction (profiling notes in DESIGN.md).  Both memos
        # are bounded: compose() trims them to the *_CACHE_CAP sizes.
        self._edge_cache: Dict[Tuple[str, str], bool] = {}
        self._cost_cache: Dict[str, Tuple] = {}
        # Whole adjacency rows keyed (instance_id, predecessor service):
        # service records are immutable after populate, so a row is valid
        # for the life of the catalog (see ConsistencyGraph).
        self._row_cache: Dict[Tuple[str, str], list] = {}
        self.edge_cache_stats = CacheStats()

    def compose(
        self,
        path: AbstractServicePath,
        candidates: Dict[str, Tuple[ServiceInstance, ...]],
        user_qos: QoSVector,
        request: UserRequest,
    ) -> ComposedPath:
        if not self.fast_paths:
            # Memo-free ground truth.  The vectorized kernel is itself a
            # fast path (incremental index + plan cache), so it degrades
            # to the exact-equivalent reference DP here.
            method = self.composition_method
            return compose_qcs(
                path,
                candidates,
                user_qos,
                self.composition_weights,
                method="dp" if method == "vectorized" else method,
                telemetry=self.telemetry,
            )
        if self._vec is not None:
            return self._compose_vectorized(path, candidates, user_qos)
        edge_cache = self._edge_cache
        before = len(edge_cache)
        composed = compose_qcs(
            path,
            candidates,
            user_qos,
            self.composition_weights,
            method=self.composition_method,
            edge_cache=edge_cache,
            cost_cache=self._cost_cache,
            row_cache=self._row_cache,
            telemetry=self.telemetry,
        )
        # Hit/miss accounting via cache growth -- misses are exactly the
        # pairs memoized during this build, hits the remaining non-sink
        # pair checks -- so the edge loop itself stays uninstrumented.
        sizes = [len(candidates.get(s) or ()) for s in path.reversed()]
        pairs = sum(a * b for a, b in zip(sizes, sizes[1:]))
        misses = len(edge_cache) - before
        stats = self.edge_cache_stats
        stats.misses += misses
        stats.hits += pairs - misses
        tel = self.telemetry
        if tel is not None:
            m = tel.metrics
            if pairs > misses:
                m.counter("cache.qcs_edge.hits").inc(pairs - misses)
            if misses:
                m.counter("cache.qcs_edge.misses").inc(misses)
        trim_mapping(edge_cache, self.EDGE_CACHE_CAP)
        trim_mapping(self._cost_cache, self.COST_CACHE_CAP)
        trim_mapping(self._row_cache, self.EDGE_CACHE_CAP)
        return composed

    def _compose_vectorized(
        self,
        path: AbstractServicePath,
        candidates: Dict[str, Tuple[ServiceInstance, ...]],
        user_qos: QoSVector,
    ) -> ComposedPath:
        """The numpy kernel (composition_vec), plan-cache accounting only."""
        vec = self._vec
        assert vec is not None
        stats = vec.plan_stats
        before_hits, before_misses = stats.hits, stats.misses
        composed = vec.compose(
            path, candidates, user_qos, telemetry=self.telemetry
        )
        tel = self.telemetry
        if tel is not None:
            m = tel.metrics
            if stats.hits > before_hits:
                m.counter("cache.qcs_plan.hits").inc(stats.hits - before_hits)
            if stats.misses > before_misses:
                m.counter("cache.qcs_plan.misses").inc(
                    stats.misses - before_misses
                )
        return composed

    def select_peers(
        self,
        request: UserRequest,
        composed: ComposedPath,
        hosts_selection_order: List[List[int]],
    ) -> Optional[Tuple[int, ...]]:
        """Distributed hop-by-hop selection in reverse flow order (§3.3)."""
        self._fallbacks = 0
        self._hop_outcomes = []
        if self.telemetry is None:
            return self._select_walk(request, composed, hosts_selection_order)
        with self.telemetry.tracer.span(
            "selection", hops=len(composed.instances)
        ):
            return self._select_walk(request, composed, hosts_selection_order)

    def _select_walk(
        self,
        request: UserRequest,
        composed: ComposedPath,
        hosts_selection_order: List[List[int]],
    ) -> Optional[Tuple[int, ...]]:
        tel = self.telemetry
        tracer = tel.tracer if tel is not None else NULL_TRACER
        n = len(composed.instances)
        selected_reverse: List[int] = []
        current = request.peer_id
        # Flatten the candidate lists once; each hop's resolve gets its
        # suffix as an array slice instead of re-flattening.
        plan_fn = getattr(self.probing, "selection_plan", None)
        plan = plan_fn(hosts_selection_order) if plan_fn is not None else None
        for i in range(n):
            inst = composed.instances[n - 1 - i]  # i hops from the user
            candidates = hosts_selection_order[i]
            # Dynamic neighbor resolution: the selecting peer learns the
            # remaining hops' candidate providers (direct neighbors at
            # the requesting host, indirect along the chain).
            with tracer.span("probing.resolve", peer=current):
                if plan is None:
                    self.probing.resolve_selection_hops(
                        current,
                        hosts_selection_order[i:],
                        direct=(current == request.peer_id),
                    )
                else:
                    flat_all, hops_all, off = plan
                    start = off[i]
                    self.probing.resolve_selection_hops(
                        current,
                        hosts_selection_order[i:],
                        direct=(current == request.peer_id),
                        plan=(flat_all[start:], hops_all[start:] - i),
                    )
            outcome = self.selector.select_hop(
                selecting_peer=current,
                candidates=candidates,
                requirement=inst.resources,
                bandwidth_req=inst.bandwidth,
                session_duration=request.session_duration,
                rng=self.rng,
            )
            self._hop_outcomes.append(outcome)
            if outcome.peer_id is None:
                return None
            if outcome.random_fallback:
                self._fallbacks += 1
            selected_reverse.append(outcome.peer_id)
            current = outcome.peer_id
        return tuple(reversed(selected_reverse))

    def aggregate(self, request: UserRequest) -> AggregationResult:
        self._fallbacks = 0
        self._hop_outcomes = []
        result = super().aggregate(request)
        # random_fallbacks is set at result construction (one source of
        # truth with the request.setup event); only the outcome trail is
        # attached post-hoc.
        result.hop_outcomes = tuple(self._hop_outcomes)
        return result
