"""The paper's primary contribution: the QSA service aggregation model.

Sub-modules
-----------
``qos``
    Application-level QoS vectors (``Qin``/``Qout``) and the inter-component
    "satisfy" relation (paper Eq. 1).
``resources``
    End-system resource vectors, the resource tuple ``(R, b)`` attached to
    composition-graph edges, and the weighted-normalized tuple comparison
    of Definition 3.1 (Eq. 2-3).
``composition``
    The QCS ("QoS Consistent and Shortest") on-demand service composition
    algorithm (paper §3.2, Fig. 3).
``selection``
    The dynamic peer selection tier: the Φ metric (Eq. 4-5), uptime filter
    and distributed hop-by-hop selection (paper §3.3, Fig. 4).
``aggregation``
    The two tiers glued into the full QSA pipeline.
``baselines``
    The *random* and *fixed* comparison heuristics from §4.1.
"""

from repro.core.qos import Interval, QoSVector, satisfies
from repro.core.resources import ResourceTuple, ResourceVector, WeightProfile
from repro.core.composition import (
    CompositionError,
    ComposedPath,
    ConsistencyGraph,
    compose_qcs,
)
from repro.core.selection import PeerSelector, PhiWeights, SelectionOutcome
from repro.core.aggregation import QSAAggregator, AggregationResult
from repro.core.baselines import FixedAggregator, RandomAggregator

__all__ = [
    "AggregationResult",
    "ComposedPath",
    "CompositionError",
    "ConsistencyGraph",
    "FixedAggregator",
    "Interval",
    "PeerSelector",
    "PhiWeights",
    "QSAAggregator",
    "QoSVector",
    "RandomAggregator",
    "ResourceTuple",
    "ResourceVector",
    "SelectionOutcome",
    "WeightProfile",
    "compose_qcs",
    "satisfies",
]
