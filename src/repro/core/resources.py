"""Resource vectors and the weighted-normalized tuple comparison (Def. 3.1).

Every service instance carries an end-system resource requirement vector
``R = [r_1 .. r_m]`` (e.g. ``[cpu, memory]``) plus a network bandwidth
requirement ``b`` on the edge to its successor.  The QCS composition
algorithm weighs edges by the *resource tuple* ``(R_B, b_{B,A})`` and
compares (aggregated) tuples with Definition 3.1:

.. math::

   \\sum_{i=1}^{m} w_i \\frac{r_i^B - r_i^D}{r_i^{max}}
   + w_{m+1} \\frac{b_{B,A} - b_{D,C}}{b^{max}} > 0
   \\;\\Rightarrow\\; (R^B, b_{B,A}) > (R^D, b_{D,C})

with non-negative weights summing to 1 (Eq. 3).  The comparison is
equivalent to comparing the scalar *scores*
``score(t) = Σ w_i r_i / r_max_i + w_{m+1} b / b_max`` -- the difference of
two scores is exactly the left-hand side above.  We expose both forms: the
literal pairwise comparison (for fidelity and tests) and the scalar score
(used as the additive edge weight for Dijkstra, which requires a total
order compatible with addition).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = ["ResourceVector", "ResourceTuple", "WeightProfile"]


class ResourceVector:
    """A named, non-negative vector of end-system resources.

    Thin wrapper over a ``float64`` numpy array with a dimension-name
    tuple.  All arithmetic verifies dimension compatibility; the names
    make experiment configs and error messages self-describing.
    """

    __slots__ = ("names", "values")

    def __init__(self, names: Sequence[str], values: Iterable[float]) -> None:
        self.names: Tuple[str, ...] = tuple(names)
        # astype/asarray(list(...)) both yield a fresh array -- the
        # constructor always copies so callers cannot alias our state.
        if isinstance(values, np.ndarray):
            self.values = values.astype(np.float64)
        else:
            self.values = np.asarray(list(values), dtype=np.float64)
        if self.values.shape != (len(self.names),):
            raise ValueError(
                f"{len(self.names)} names but values of shape {self.values.shape}"
            )
        if (self.values < 0).any():
            raise ValueError(f"negative resource amounts: {self.values}")

    @classmethod
    def zeros_like(cls, other: "ResourceVector") -> "ResourceVector":
        return cls(other.names, np.zeros(len(other.names)))

    @property
    def dim(self) -> int:
        return len(self.names)

    def _check(self, other: "ResourceVector") -> None:
        if self.names != other.names:
            raise ValueError(
                f"incompatible resource dimensions: {self.names} vs {other.names}"
            )

    # -- arithmetic ----------------------------------------------------------
    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        self._check(other)
        out = ResourceVector.__new__(ResourceVector)
        out.names = self.names
        out.values = self.values + other.values
        return out

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        """Difference; may go negative (used for availability deltas)."""
        self._check(other)
        out = ResourceVector.__new__(ResourceVector)
        out.names = self.names
        out.values = self.values - other.values
        return out

    def __mul__(self, k: float) -> "ResourceVector":
        out = ResourceVector.__new__(ResourceVector)
        out.names = self.names
        out.values = self.values * k
        return out

    __rmul__ = __mul__

    def covers(self, requirement: "ResourceVector") -> bool:
        """Component-wise ``self >= requirement`` (admission test)."""
        self._check(requirement)
        # ndarray.all() over np.all(): same reduction, minus the
        # fromnumeric dispatch wrapper (this runs per candidate per hop).
        return bool((self.values >= requirement.values).all())

    def ratio_to(self, requirement: "ResourceVector") -> np.ndarray:
        """Component-wise availability/requirement ratios (Φ's ra_i/r_i)."""
        self._check(requirement)
        with np.errstate(divide="ignore"):
            return np.where(
                requirement.values > 0,
                self.values / requirement.values,
                np.inf,
            )

    # -- misc ---------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return self.names == other.names and np.array_equal(self.values, other.values)

    def __hash__(self) -> int:
        return hash((self.names, self.values.tobytes()))

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v:g}" for n, v in zip(self.names, self.values))
        return f"ResourceVector({inner})"

    def copy(self) -> "ResourceVector":
        return ResourceVector(self.names, self.values.copy())


@dataclass(frozen=True)
class ResourceTuple:
    """The edge cost ``(R, b)`` from Def. 3.1.

    ``R`` is the end-system requirement of the edge's head node; ``b`` the
    bandwidth required on the connection.  Tuples add component-wise so a
    path's aggregated requirement is the sum of its edge tuples.
    """

    resources: ResourceVector
    bandwidth: float

    def __post_init__(self) -> None:
        if self.bandwidth < 0:
            raise ValueError(f"negative bandwidth requirement: {self.bandwidth}")

    def __add__(self, other: "ResourceTuple") -> "ResourceTuple":
        return ResourceTuple(
            self.resources + other.resources, self.bandwidth + other.bandwidth
        )

    @classmethod
    def zero(cls, names: Sequence[str]) -> "ResourceTuple":
        return cls(ResourceVector(names, np.zeros(len(names))), 0.0)


class WeightProfile:
    """The weights and normalizers of Def. 3.1 / Eq. 2-3.

    Parameters
    ----------
    resource_names:
        Names of the ``m`` end-system resource types, in order.
    resource_weights:
        ``w_1 .. w_m`` (non-negative).
    bandwidth_weight:
        ``w_{m+1}`` (non-negative).  All weights must sum to 1 (Eq. 3);
        pass ``normalize=True`` to rescale automatically.
    resource_maxima / bandwidth_max:
        The normalizers ``r_i^max`` and ``b^max``.
    """

    __slots__ = (
        "resource_names",
        "weights",
        "bandwidth_weight",
        "maxima",
        "bandwidth_max",
    )

    def __init__(
        self,
        resource_names: Sequence[str],
        resource_weights: Sequence[float],
        bandwidth_weight: float,
        resource_maxima: Sequence[float],
        bandwidth_max: float,
        normalize: bool = False,
    ) -> None:
        self.resource_names = tuple(resource_names)
        w = np.asarray(list(resource_weights), dtype=np.float64)
        wb = float(bandwidth_weight)
        if w.shape != (len(self.resource_names),):
            raise ValueError("one weight per resource type is required")
        if np.any(w < 0) or wb < 0:
            raise ValueError("weights must be non-negative (Eq. 3)")
        total = float(w.sum() + wb)
        if normalize:
            if total <= 0:
                raise ValueError("cannot normalize all-zero weights")
            w, wb = w / total, wb / total
        elif abs(total - 1.0) > 1e-9:
            raise ValueError(f"weights must sum to 1 (Eq. 3); got {total}")
        self.weights = w
        self.bandwidth_weight = wb
        self.maxima = np.asarray(list(resource_maxima), dtype=np.float64)
        if self.maxima.shape != w.shape or np.any(self.maxima <= 0):
            raise ValueError("resource maxima must be positive, one per type")
        self.bandwidth_max = float(bandwidth_max)
        if self.bandwidth_max <= 0:
            raise ValueError("bandwidth_max must be positive")

    @classmethod
    def uniform(
        cls,
        resource_names: Sequence[str],
        resource_maxima: Sequence[float],
        bandwidth_max: float,
    ) -> "WeightProfile":
        """Uniform importance weights (the paper's evaluation setting)."""
        m = len(resource_names)
        w = np.full(m + 1, 1.0 / (m + 1))
        return cls(resource_names, w[:m], w[m], resource_maxima, bandwidth_max)

    # -- Def. 3.1 --------------------------------------------------------------
    def score(self, t: ResourceTuple) -> float:
        """Scalar score whose differences realize the Def. 3.1 comparison."""
        if t.resources.names != self.resource_names:
            raise ValueError(
                f"tuple has dimensions {t.resources.names}, "
                f"profile expects {self.resource_names}"
            )
        return float(
            np.dot(self.weights, t.resources.values / self.maxima)
            + self.bandwidth_weight * t.bandwidth / self.bandwidth_max
        )

    def compare(self, t1: ResourceTuple, t2: ResourceTuple) -> int:
        """Literal Def. 3.1: +1 if ``t1 > t2``, -1 if ``t1 < t2``, else 0.

        Evaluates the weighted-normalized difference sum exactly as
        written in Eq. 2 (rather than via :meth:`score`); a property test
        asserts the two forms induce the same ordering.
        """
        if t1.resources.names != self.resource_names:
            raise ValueError("t1 dimension mismatch")
        if t2.resources.names != self.resource_names:
            raise ValueError("t2 dimension mismatch")
        diff = float(
            np.dot(
                self.weights,
                (t1.resources.values - t2.resources.values) / self.maxima,
            )
            + self.bandwidth_weight
            * (t1.bandwidth - t2.bandwidth)
            / self.bandwidth_max
        )
        if diff > 0:
            return 1
        if diff < 0:
            return -1
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(
            f"{n}:{w:.3f}" for n, w in zip(self.resource_names, self.weights)
        )
        return f"WeightProfile({parts}, bw:{self.bandwidth_weight:.3f})"
