"""QCS -- the "QoS Consistent and Shortest" composition algorithm (§3.2).

Given

* an abstract service path (flow order ``source -> ... -> last``),
* for every abstract service, the candidate :class:`ServiceInstance`\\ s
  discovered through the P2P lookup substrate, and
* the user's end-to-end QoS requirement,

QCS builds the *consistency graph* of Fig. 3 and finds the QoS-consistent
service path with minimum aggregated resource requirements:

1. Start from the (data) **sink** -- a virtual node representing the
   user's host whose input requirement is the user's QoS vector (the
   paper phrases this as "the Qout of the sink service is set as the
   user's QoS requirements"; either way the first consistency check is
   *last-hop instance output vs. user requirement*).
2. Walk layer by layer in the **reverse direction of the aggregation
   flow**, adding a directed edge ``current -> predecessor`` whenever the
   predecessor's ``Qout`` *satisfies* the current node's ``Qin`` (Eq. 1).
3. Weight the edge into instance ``B`` with the resource tuple
   ``(R_B, b_{B,A})`` (Def. 3.1); the sink's own resources are excluded
   (paper footnote 3).
4. Run Dijkstra from the sink to the source layer under the
   weighted-normalized tuple order; report the minimum-cost source-layer
   node's path.

Because tuple comparison is equivalent to comparing scalar *scores* (see
:class:`~repro.core.resources.WeightProfile`), Dijkstra runs on
non-negative additive edge scores, which makes it correct.

The graph is a layered DAG, so a single dynamic-programming sweep gives
the same answer in ``O(E)``; both methods are implemented
(``method="dijkstra"`` for paper fidelity, ``"dp"`` as the fast path) and
tested to agree.  The worst-case work is ``O(K V^2)`` in the paper's
notation (``V`` candidate instances overall, ``K`` candidates for the
source service).
"""

# lint: disable-file=CACHE001 -- the edge/cost/row memos here are injected
# by QSAAggregator.compose, which owns the fast_paths gate (and falls back
# to memo-free composition when it is off); this module never constructs
# or toggles a cache itself.

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.qos import QoSVector, satisfies
from repro.core.resources import ResourceTuple, WeightProfile
from repro.services.model import AbstractServicePath, ServiceInstance
from repro.telemetry.spans import NULL_TRACER

__all__ = [
    "CompositionError",
    "ComposedPath",
    "ConsistencyGraph",
    "compose_qcs",
]


class CompositionError(Exception):
    """No QoS-consistent service path exists for the request."""


@dataclass(frozen=True)
class ComposedPath:
    """The result of QCS: one instance per abstract service, flow order.

    Attributes
    ----------
    instances:
        Chosen instances, **flow order** (source first, user-adjacent
        last).
    total:
        Aggregated resource tuple over the path: the sum of every chosen
        instance's ``R`` and of every connection's bandwidth (each
        instance contributes its outgoing bandwidth; the last instance's
        connection goes to the user host).
    score:
        ``WeightProfile.score(total)`` -- the Dijkstra distance at the
        source node.
    """

    instances: Tuple[ServiceInstance, ...]
    total: ResourceTuple
    score: float

    @property
    def hops(self) -> int:
        return len(self.instances)

    def edge_bandwidths(self) -> Tuple[float, ...]:
        """Bandwidth per connection, selection order (user side first).

        Element ``i`` is the bandwidth on the connection *out of* the
        ``i``-th peer counted from the user, i.e.
        ``instances[-1].bandwidth`` first.
        """
        return tuple(inst.bandwidth for inst in reversed(self.instances))

    def __repr__(self) -> str:
        chain = " -> ".join(i.instance_id for i in self.instances)
        return f"<ComposedPath {chain} (score={self.score:.4f})>"


class ConsistencyGraph:
    """The layered QoS-consistency graph of Fig. 3.

    Layers are indexed in *reverse flow order*: layer 0 is the virtual
    sink (the user host), layer 1 the user-adjacent abstract service, ...,
    layer ``n`` the source service.  ``edges[(layer, i)]`` lists
    ``(pred_index, tuple_score, resource_tuple)`` for every consistent
    predecessor instance in layer ``layer + 1``.
    """

    def __init__(
        self,
        path: AbstractServicePath,
        candidates: Mapping[str, Sequence[ServiceInstance]],
        user_qos: QoSVector,
        weights: WeightProfile,
        edge_cache: Optional[Dict[Tuple[str, str], bool]] = None,
        cost_cache: Optional[Dict[str, Tuple[float, ResourceTuple]]] = None,
        row_cache: Optional[Dict[Tuple[str, str], list]] = None,
    ) -> None:
        """``edge_cache``/``cost_cache`` memoize instance-pair consistency
        and per-instance edge costs across requests -- both are immutable
        properties of the catalog, and graph construction dominates the
        composition profile without them.  ``row_cache`` memoizes whole
        adjacency rows ``(instance_id, predecessor service) -> out list``:
        service records never change after catalog populate, so a row is
        stable for the life of the catalog (rows are shared read-only
        across graphs -- consumers must not mutate them).  Pass dicts
        owned by the aggregator (caches must not outlive the catalog they
        describe).
        """
        self.path = path
        self.user_qos = user_qos
        self.weights = weights
        self._edge_cache = edge_cache
        self._cost_cache = cost_cache if cost_cache is not None else {}
        self._row_cache = row_cache
        #: layers[k] for k >= 1: candidate instances of the k-th service
        #: from the user side.  layers[0] is a placeholder for the sink.
        self.layers: List[List[ServiceInstance]] = [[]]
        self._services_rev: List[Optional[str]] = [None]
        for service in path.reversed():
            cands = list(candidates.get(service, ()))
            if not cands:
                raise CompositionError(
                    f"no candidate instances discovered for service {service!r}"
                )
            self.layers.append(cands)
            self._services_rev.append(service)
        self.n_layers = len(self.layers)  # sink layer + one per service
        # Adjacency: edge from node (k, i) to predecessor (k+1, j).
        self.edges: Dict[Tuple[int, int], List[Tuple[int, float, ResourceTuple]]] = {}
        self._build()

    # -- construction --------------------------------------------------------
    def _required_qin(self, layer: int, index: int) -> QoSVector:
        """The input requirement of node ``(layer, index)``.

        Layer 0 is the sink: its requirement is the user's end-to-end QoS
        vector.
        """
        if layer == 0:
            return self.user_qos
        return self.layers[layer][index].qin

    def _edge_cost(self, pred: ServiceInstance) -> Tuple[float, ResourceTuple]:
        entry = self._cost_cache.get(pred.instance_id)
        if entry is None:
            cost = ResourceTuple(pred.resources, pred.bandwidth)
            entry = (self.weights.score(cost), cost)
            self._cost_cache[pred.instance_id] = entry
        return entry

    def _build(self) -> None:
        """Add every consistency edge; cost = (R_pred, b_pred) per Def. 3.1."""
        edge_cache = self._edge_cache
        row_cache = self._row_cache
        for layer in range(0, self.n_layers - 1):
            n_here = 1 if layer == 0 else len(self.layers[layer])
            preds = self.layers[layer + 1]
            pred_service = self._services_rev[layer + 1]
            for i in range(n_here):
                if layer == 0:
                    # Sink edges depend on the per-request user QoS;
                    # never cached.
                    qin = self.user_qos
                    out: List[Tuple[int, float, ResourceTuple]] = []
                    for j, pred in enumerate(preds):
                        if satisfies(pred.qout, qin):
                            score, cost = self._edge_cost(pred)
                            out.append((j, score, cost))
                else:
                    cur = self.layers[layer][i]
                    row_key = (cur.instance_id, pred_service)
                    if row_cache is not None:
                        row = row_cache.get(row_key)
                        if row is not None:
                            if row:
                                self.edges[(layer, i)] = row
                            continue
                    qin = cur.qin
                    out = []
                    for j, pred in enumerate(preds):
                        if edge_cache is None:
                            ok = satisfies(pred.qout, qin)
                        else:
                            key = (pred.instance_id, cur.instance_id)
                            ok = edge_cache.get(key)
                            if ok is None:
                                ok = satisfies(pred.qout, qin)
                                edge_cache[key] = ok
                        if ok:
                            score, cost = self._edge_cost(pred)
                            out.append((j, score, cost))
                    if row_cache is not None:
                        row_cache[row_key] = out
                if out:
                    self.edges[(layer, i)] = out

    # -- statistics ----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return 1 + sum(len(layer) for layer in self.layers[1:])

    @property
    def n_edges(self) -> int:
        return sum(len(v) for v in self.edges.values())


def _shortest_dp(
    graph: ConsistencyGraph,
) -> Optional[Tuple[List[int], float, ResourceTuple]]:
    """Layer-by-layer DP sweep (the DAG fast path)."""
    # dist[(layer, i)] = (score, predecessor index in layer-1 sense).
    # Only scores drive the relaxations; the accumulated resource tuple
    # is recomputed once along the chosen path by _extract.
    dist: Dict[Tuple[int, int], Tuple[float, Optional[int]]] = {
        (0, 0): (0.0, None)
    }
    edges = graph.edges
    for layer in range(0, graph.n_layers - 1):
        n_here = 1 if layer == 0 else len(graph.layers[layer])
        next_layer = layer + 1
        for i in range(n_here):
            here = dist.get((layer, i))
            if here is None:
                continue
            score_here = here[0]
            for j, edge_score, _edge_tuple in edges.get((layer, i), ()):
                cand = score_here + edge_score
                existing = dist.get((next_layer, j))
                if existing is None or cand < existing[0]:
                    dist[(next_layer, j)] = (cand, i)
    return _extract(graph, dist)


def _shortest_dijkstra(
    graph: ConsistencyGraph,
) -> Optional[Tuple[List[int], float, ResourceTuple]]:
    """Dijkstra from the sink, as §3.2 prescribes."""
    dist: Dict[Tuple[int, int], Tuple[float, Optional[int]]] = {
        (0, 0): (0.0, None)
    }
    done: set = set()
    heap: List[Tuple[float, int, int]] = [(0.0, 0, 0)]
    while heap:
        score_here, layer, i = heapq.heappop(heap)
        node = (layer, i)
        if node in done:
            continue
        done.add(node)
        for j, edge_score, _edge_tuple in graph.edges.get(node, ()):
            nxt = (layer + 1, j)
            if nxt in done:
                continue
            cand = score_here + edge_score
            existing = dist.get(nxt)
            # Tie-break on equal scores toward the smaller predecessor
            # index: the DP's first-strict-improvement scan keeps the
            # smallest minimizing index, and edge scores are positive,
            # so every tying predecessor settles before ``nxt`` pops --
            # making the three kernels path-identical even on exact
            # score ties, as the compose_qcs contract promises.
            if (
                existing is None
                or cand < existing[0]
                or (cand == existing[0]
                    and existing[1] is not None
                    and i < existing[1])
            ):
                dist[nxt] = (cand, i)
                heapq.heappush(heap, (cand, layer + 1, j))
    return _extract(graph, dist)


def _extract(
    graph: ConsistencyGraph,
    dist: Dict[Tuple[int, int], Tuple[float, Optional[int]]],
) -> Optional[Tuple[List[int], float, ResourceTuple]]:
    """Pick the best source-layer node and backtrack the chosen indices."""
    source_layer = graph.n_layers - 1
    best_j: Optional[int] = None
    best: Optional[Tuple[float, Optional[int]]] = None
    for j in range(len(graph.layers[source_layer])):
        entry = dist.get((source_layer, j))
        if entry is not None and (best is None or entry[0] < best[0]):
            best, best_j = entry, j
    if best is None:
        return None
    # Backtrack: indices[k] = chosen instance index in layer k (1-based layers).
    indices = [0] * (graph.n_layers - 1)
    layer, j = source_layer, best_j
    entry = best
    while layer >= 1:
        indices[layer - 1] = j
        j = entry[1]
        layer -= 1
        if layer >= 1:
            entry = dist[(layer, j)]
    # Re-accumulate the resource tuple along the chosen path in the same
    # zero + e1 + e2 + ... order the relaxations used to carry it, so the
    # reported total is bit-identical to the carried spelling.
    total = ResourceTuple.zero(graph.weights.resource_names)
    prev_i = 0
    for layer in range(0, source_layer):
        nxt_j = indices[layer]
        for j2, _edge_score, edge_tuple in graph.edges[(layer, prev_i)]:
            if j2 == nxt_j:
                total = total + edge_tuple
                break
        prev_i = nxt_j
    return indices, best[0], total


def compose_qcs(
    path: AbstractServicePath,
    candidates: Mapping[str, Sequence[ServiceInstance]],
    user_qos: QoSVector,
    weights: WeightProfile,
    method: str = "dp",
    edge_cache: Optional[Dict[Tuple[str, str], bool]] = None,
    cost_cache: Optional[Dict[str, Tuple[float, ResourceTuple]]] = None,
    row_cache: Optional[Dict[Tuple[str, str], list]] = None,
    telemetry: Optional[Any] = None,
) -> ComposedPath:
    """Run QCS and return the QoS-consistent, resource-shortest path.

    Parameters
    ----------
    path:
        Abstract service path in flow order.
    candidates:
        Discovered instances per abstract service.
    user_qos:
        The user's end-to-end QoS requirement (checked against the
        user-adjacent instance's ``Qout``).
    weights:
        Def. 3.1 weight profile used for the tuple order.
    method:
        ``"dp"`` (default, layered-DAG sweep) or ``"dijkstra"``
        (the paper's formulation).  Both return identical paths.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry`; instruments the
        graph-build and shortest-path phases at phase granularity only
        (never inside the edge loops).

    Raises
    ------
    CompositionError
        If some service has no candidates or no QoS-consistent path
        exists.
    """
    tracer = telemetry.tracer if telemetry is not None else NULL_TRACER
    with tracer.span("qcs.compose", application=path.application):
        with tracer.span("qcs.graph_build"):
            graph = ConsistencyGraph(
                path, candidates, user_qos, weights,
                edge_cache=edge_cache, cost_cache=cost_cache,
                row_cache=row_cache,
            )
        if telemetry is not None:
            m = telemetry.metrics
            m.counter("qcs.compositions").inc()
            m.counter("qcs.graph_nodes").inc(graph.n_nodes)
            m.counter("qcs.graph_edges").inc(graph.n_edges)
        # One kernel-neutral span name: the exactness contract demands
        # byte-identical telemetry across kernels (dp / dijkstra /
        # vectorized), so the solver phase may not leak the method.
        if method == "dp":
            with tracer.span("qcs.solve"):
                result = _shortest_dp(graph)
        elif method == "dijkstra":
            with tracer.span("qcs.solve"):
                result = _shortest_dijkstra(graph)
        else:
            raise ValueError(
                f"unknown method {method!r} (use 'dp' or 'dijkstra')"
            )
    if result is None:
        if telemetry is not None:
            telemetry.metrics.counter("qcs.no_path").inc()
            telemetry.bus.emit(
                "qcs.failed",
                application=path.application,
                n_nodes=graph.n_nodes,
                n_edges=graph.n_edges,
            )
        raise CompositionError(
            f"no QoS-consistent service path for application "
            f"{path.application!r} at requirement {user_qos!r}"
        )
    indices, score, total = result
    # indices[k] indexes graph.layers[k+1] (reverse flow order); flip to
    # flow order for the ComposedPath contract.
    chosen_reverse = [
        graph.layers[k + 1][indices[k]] for k in range(len(indices))
    ]
    if telemetry is not None:
        telemetry.bus.emit(
            "qcs.composed",
            application=path.application,
            n_nodes=graph.n_nodes,
            n_edges=graph.n_edges,
            score=score,
            hops=len(chosen_reverse),
        )
    return ComposedPath(
        instances=tuple(reversed(chosen_reverse)), total=total, score=score
    )
