"""Dynamic peer selection: the Φ metric and hop-by-hop selection (§3.3).

After QCS has fixed *which* service instances make up the path, each
instance must be mapped onto one of the many peers that host a replica of
it.  The paper's design decisions, all implemented here:

* **Distributed, hop-by-hop** -- selection proceeds in the *reverse*
  direction of the aggregation flow: the user's host picks the peer for
  the user-adjacent instance; that peer picks the peer for the preceding
  instance; and so on (Fig. 4).  Every step uses only the performance
  information *locally maintained at the selecting peer* (its probed
  neighbor set, bounded by the probing budget ``M``).
* **Uptime filter** -- a candidate qualifies only if its uptime (time
  connected to the grid so far) is at least the application's session
  duration; this is the paper's heuristic predictor of peer longevity
  (footnote 4).
* **Φ metric** (Eq. 4-5) -- among qualifying candidates with known
  performance information, pick the one maximizing

  .. math:: Φ = \\sum_{i=1}^{m} ω_i \\frac{ra_i}{r_i} + ω_{m+1} \\frac{β}{b}

  where ``ra_i`` is the candidate's availability of resource ``i``,
  ``r_i`` the instance's requirement, ``β`` the end-to-end available
  bandwidth from the candidate to the selecting peer and ``b`` the
  instance's bandwidth requirement.  Weights are non-negative and sum
  to 1.
* **Random fallback** -- if the selecting peer has no performance
  information about any candidate, it picks uniformly at random
  ("If the candidate peers' performance information is not available,
  the peer selection falls back to a random policy").

Scoring is vectorized with numpy: a selection step evaluates all
candidates' Φ values in one shot, which matters at the 10⁴-peer scale of
the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.resources import ResourceVector

__all__ = ["PeerInfo", "PerformanceView", "PhiWeights", "PeerSelector", "SelectionOutcome"]


@dataclass(frozen=True)
class PeerInfo:
    """A snapshot of one peer's state as observed by a prober.

    ``availability`` uses the same resource dimensions/order as instance
    requirement vectors; ``bandwidth_to_observer`` is the end-to-end
    available bandwidth β from the observed peer towards the observer;
    ``uptime`` is how long the peer has been connected (minutes);
    ``latency`` the application-level connection latency (ms).
    """

    peer_id: int
    availability: ResourceVector
    bandwidth_to_observer: float
    uptime: float
    latency: float


class PerformanceView(Protocol):
    """What a selecting peer knows about other peers.

    Implemented by :class:`repro.probing.prober.ProbingService`; also by
    simple dict-backed fakes in tests.
    """

    def observe(self, observer: int, target: int) -> Optional[PeerInfo]:
        """The observer's (possibly stale) info about target, or ``None``
        if the target is outside the observer's probed neighbor set."""
        ...


class PhiWeights:
    """The configurable importance weights ``ω_1..ω_{m+1}`` of Eq. 4-5.

    An optional **latency term** extends Eq. 4 (the paper maintains
    latency as probed performance information but does not use it in Φ;
    see DESIGN.md §4b).  With ``latency_weight = ω_L > 0`` the metric
    becomes::

        Φ' = Σ ω_i (ra_i/r_i) + ω_{m+1} (β/b) + ω_L (L_ref / latency)

    where ``L_ref`` normalizes so that an ``L_ref``-ms candidate scores 1
    on the term, like the other ratio terms.  All weights (including
    ``ω_L``) are non-negative and sum to 1.
    """

    __slots__ = (
        "resource_names",
        "weights",
        "bandwidth_weight",
        "latency_weight",
        "latency_ref_ms",
    )

    def __init__(
        self,
        resource_names: Sequence[str],
        resource_weights: Sequence[float],
        bandwidth_weight: float,
        latency_weight: float = 0.0,
        latency_ref_ms: float = 80.0,
        normalize: bool = False,
    ) -> None:
        self.resource_names = tuple(resource_names)
        w = np.asarray(list(resource_weights), dtype=np.float64)
        wb = float(bandwidth_weight)
        wl = float(latency_weight)
        if w.shape != (len(self.resource_names),):
            raise ValueError("one weight per resource type is required")
        if np.any(w < 0) or wb < 0 or wl < 0:
            raise ValueError("Φ weights must be non-negative (Eq. 5)")
        if latency_ref_ms <= 0:
            raise ValueError("latency_ref_ms must be positive")
        total = float(w.sum() + wb + wl)
        if normalize:
            if total <= 0:
                raise ValueError("cannot normalize all-zero weights")
            w, wb, wl = w / total, wb / total, wl / total
        elif abs(total - 1.0) > 1e-9:
            raise ValueError(f"Φ weights must sum to 1 (Eq. 5); got {total}")
        self.weights = w
        self.bandwidth_weight = wb
        self.latency_weight = wl
        self.latency_ref_ms = float(latency_ref_ms)

    @classmethod
    def uniform(cls, resource_names: Sequence[str]) -> "PhiWeights":
        """Uniform importance weights (the paper's evaluation setting)."""
        m = len(resource_names)
        w = np.full(m + 1, 1.0 / (m + 1))
        return cls(resource_names, w[:m], w[m])

    @classmethod
    def latency_aware(
        cls,
        resource_names: Sequence[str],
        latency_weight: float = 0.25,
        latency_ref_ms: float = 80.0,
    ) -> "PhiWeights":
        """Uniform weights over resources+bandwidth, plus a latency term."""
        m = len(resource_names)
        rest = (1.0 - latency_weight) / (m + 1)
        return cls(
            resource_names,
            np.full(m, rest),
            rest,
            latency_weight=latency_weight,
            latency_ref_ms=latency_ref_ms,
        )

    def _latency_term(self, latency_ms: Any) -> Any:
        ratio = self.latency_ref_ms / np.maximum(latency_ms, 1e-3)
        return np.minimum(ratio, _RATIO_CAP)

    def phi(
        self,
        availability: ResourceVector,
        requirement: ResourceVector,
        beta: float,
        bandwidth_req: float,
        latency_ms: float = 0.0,
    ) -> float:
        """Eq. 4 for a single candidate (plus the optional latency term)."""
        if availability.names != self.resource_names:
            raise ValueError("availability dimensions do not match Φ weights")
        ratios = availability.ratio_to(requirement)
        bw_ratio = beta / bandwidth_req if bandwidth_req > 0 else np.inf
        ratios = np.minimum(ratios, _RATIO_CAP)
        bw_ratio = min(bw_ratio, _RATIO_CAP)
        value = float(
            np.dot(self.weights, ratios) + self.bandwidth_weight * bw_ratio
        )
        if self.latency_weight > 0:
            value += self.latency_weight * float(self._latency_term(latency_ms))
        return value

    def phi_batch(
        self,
        availability: np.ndarray,
        requirement: np.ndarray,
        betas: np.ndarray,
        bandwidth_req: float,
        latencies_ms: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Vectorized Eq. 4 over ``n`` candidates.

        Parameters
        ----------
        availability: ``(n, m)`` array of candidate resource availability.
        requirement: ``(m,)`` instance requirement (entries may be 0).
        betas: ``(n,)`` available bandwidth from each candidate.
        bandwidth_req: scalar ``b``.
        latencies_ms: ``(n,)`` candidate->selector latencies (only used
            when the profile carries a latency weight).
        """
        # divide(out=CAP, where=req>0) is bitwise np.where(req>0, a/r, CAP)
        # without materializing the infinities (or the errstate guard).
        ratios = np.full_like(availability, _RATIO_CAP)
        np.divide(availability, requirement, out=ratios, where=requirement > 0)
        np.minimum(ratios, _RATIO_CAP, out=ratios)
        if bandwidth_req > 0:
            bw = np.minimum(betas / bandwidth_req, _RATIO_CAP)
        else:
            bw = np.full_like(betas, _RATIO_CAP)
        out = ratios @ self.weights + self.bandwidth_weight * bw
        if self.latency_weight > 0:
            if latencies_ms is None:
                raise ValueError(
                    "latency-aware Φ needs candidate latencies"
                )
            out = out + self.latency_weight * self._latency_term(latencies_ms)
        return out


#: Availability/requirement ratios are capped so a single zero-requirement
#: dimension cannot produce an infinite Φ and drown out every other term.
_RATIO_CAP = 1e6


@dataclass(frozen=True)
class SelectionOutcome:
    """The result of one hop's selection step.

    ``peer_id`` is ``None`` when no candidate qualified.  ``random_fallback``
    records whether the step had to use the random policy (no performance
    information available at the selecting peer).
    """

    peer_id: Optional[int]
    random_fallback: bool
    n_candidates: int
    n_known: int
    phi: Optional[float] = None


class PeerSelector:
    """Implements one peer-selection step of the QSA model.

    Parameters
    ----------
    view:
        The performance-information provider (the probing subsystem).
    weights:
        Φ weights.
    uptime_filter:
        Whether to require candidate uptime >= session duration (QSA's
        churn-tolerance heuristic; the ablation benches switch this off).
    feasibility_filter:
        Whether to require known availability to cover the requirement
        before ranking by Φ (the paper's "match between ... the candidate
        peer's resource availability and the service instance's resource
        requirements").
    """

    #: Optional :class:`repro.telemetry.Telemetry`; set by the grid when
    #: telemetry is enabled (selection events + fallback counters).
    telemetry = None

    def __init__(
        self,
        view: PerformanceView,
        weights: PhiWeights,
        uptime_filter: bool = True,
        feasibility_filter: bool = True,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.view = view
        self.weights = weights
        self.uptime_filter = uptime_filter
        self.feasibility_filter = feasibility_filter
        if telemetry is not None:
            self.telemetry = telemetry

    def select_hop(
        self,
        selecting_peer: int,
        candidates: Sequence[int],
        requirement: ResourceVector,
        bandwidth_req: float,
        session_duration: float,
        rng: np.random.Generator,
    ) -> SelectionOutcome:
        """Choose the next-hop peer from ``candidates``.

        Implements, in order: the local-knowledge restriction, the uptime
        and feasibility matches, Φ ranking, and the random fallback.
        """
        tel = self.telemetry
        if tel is None:
            return self._select_hop(
                selecting_peer, candidates, requirement, bandwidth_req,
                session_duration, rng,
            )
        with tel.tracer.span("selection.hop", selecting_peer=selecting_peer):
            outcome = self._select_hop(
                selecting_peer, candidates, requirement, bandwidth_req,
                session_duration, rng,
            )
        m = tel.metrics
        m.counter("selection.steps").inc()
        if outcome.peer_id is None:
            m.counter("selection.no_candidate").inc()
        elif outcome.random_fallback:
            m.counter("selection.random_fallback").inc()
        tel.bus.emit(
            "selection.hop",
            selecting_peer=selecting_peer,
            chosen=outcome.peer_id,
            n_candidates=outcome.n_candidates,
            n_known=outcome.n_known,
            fallback=outcome.random_fallback,
            phi=outcome.phi,
        )
        return outcome

    def _select_hop(
        self,
        selecting_peer: int,
        candidates: Sequence[int],
        requirement: ResourceVector,
        bandwidth_req: float,
        session_duration: float,
        rng: np.random.Generator,
    ) -> SelectionOutcome:
        n_candidates = len(candidates)
        if n_candidates == 0:
            return SelectionOutcome(None, False, 0, 0)

        observe_block = getattr(self.view, "observe_block", None)
        if observe_block is not None:
            block = observe_block(selecting_peer, candidates)
            if block is not None:
                return self._select_hop_block(
                    candidates, requirement, bandwidth_req,
                    session_duration, rng, block,
                )

        known: list[Tuple[int, PeerInfo]] = []
        observe_many = getattr(self.view, "observe_many", None)
        if observe_many is not None:
            for pid, info in zip(candidates, observe_many(selecting_peer, candidates)):
                if info is not None:
                    known.append((pid, info))
        else:
            for pid in candidates:
                info = self.view.observe(selecting_peer, pid)
                if info is not None:
                    known.append((pid, info))

        if not known:
            # Random fallback: the selecting peer knows nothing about any
            # candidate -- pick uniformly at random.
            pick = int(rng.integers(n_candidates))
            return SelectionOutcome(candidates[pick], True, n_candidates, 0)

        qualified: list[Tuple[int, PeerInfo]] = []
        for pid, info in known:
            if self.uptime_filter and info.uptime < session_duration:
                continue
            if self.feasibility_filter and not (
                info.availability.covers(requirement)
                and info.bandwidth_to_observer >= bandwidth_req
            ):
                continue
            qualified.append((pid, info))

        if not qualified:
            # All known candidates were filtered out; fall back to the
            # unknown candidates at random if any exist, else give up on
            # the filters and rank every known candidate by Φ (a peer
            # with the least-bad Φ still beats outright failure).
            unknown = [pid for pid in candidates if all(pid != k for k, _ in known)]
            if unknown:
                pick = int(rng.integers(len(unknown)))
                return SelectionOutcome(
                    unknown[pick], True, n_candidates, len(known)
                )
            qualified = known

        if len(qualified) == 1:
            pid, info = qualified[0]
            phi = self.weights.phi(
                info.availability, requirement, info.bandwidth_to_observer,
                bandwidth_req, latency_ms=info.latency,
            )
            return SelectionOutcome(pid, False, n_candidates, len(known), phi)

        avail = np.stack([info.availability.values for _, info in qualified])
        betas = np.fromiter(
            (info.bandwidth_to_observer for _, info in qualified),
            dtype=np.float64,
            count=len(qualified),
        )
        latencies = None
        if self.weights.latency_weight > 0:
            latencies = np.fromiter(
                (info.latency for _, info in qualified),
                dtype=np.float64,
                count=len(qualified),
            )
        scores = self.weights.phi_batch(
            avail, requirement.values, betas, bandwidth_req,
            latencies_ms=latencies,
        )
        best = int(np.argmax(scores))
        return SelectionOutcome(
            qualified[best][0], False, n_candidates, len(known), float(scores[best])
        )

    def _select_hop_block(
        self,
        candidates: Sequence[int],
        requirement: ResourceVector,
        bandwidth_req: float,
        session_duration: float,
        rng: np.random.Generator,
        block: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> SelectionOutcome:
        """One selection step over an ``observe_block`` array view.

        Replicates every branch, filter, RNG draw and Φ evaluation of the
        per-PeerInfo path bit-for-bit: the uptime/covers/β filters become
        masked reductions over the block, the Φ ranking a single
        ``phi_batch`` over the qualified sub-block, and the two random
        fallbacks consume the same ``rng.integers`` draws on the same
        branch conditions.
        """
        n_candidates = len(candidates)
        known_mask, avail, betas, uptimes, latencies = block
        n_known = len(betas)
        if n_known == 0:
            pick = int(rng.integers(n_candidates))
            return SelectionOutcome(candidates[pick], True, n_candidates, 0)

        qual = np.ones(n_known, dtype=bool)
        if self.uptime_filter:
            qual &= uptimes >= session_duration
        if self.feasibility_filter:
            qual &= (avail >= requirement.values).all(axis=1)
            qual &= betas >= bandwidth_req
        n_qual = int(qual.sum())

        # Positions (in `candidates`) of the known occurrences, aligned
        # with the block arrays.
        kpos = np.flatnonzero(known_mask)
        if n_qual == 0:
            known_ids = {candidates[i] for i in kpos}
            unknown = [pid for pid in candidates if pid not in known_ids]
            if unknown:
                pick = int(rng.integers(len(unknown)))
                return SelectionOutcome(
                    unknown[pick], True, n_candidates, n_known
                )
            qual[:] = True
            n_qual = n_known

        if n_qual == 1:
            j = int(np.argmax(qual))
            availability = ResourceVector.__new__(ResourceVector)
            availability.names = requirement.names
            availability.values = avail[j]
            phi = self.weights.phi(
                availability, requirement, betas[j], bandwidth_req,
                latency_ms=latencies[j],
            )
            return SelectionOutcome(
                candidates[kpos[j]], False, n_candidates, n_known, phi
            )

        qidx = np.flatnonzero(qual)
        scores = self.weights.phi_batch(
            avail[qidx], requirement.values, betas[qidx], bandwidth_req,
            latencies_ms=latencies[qidx]
            if self.weights.latency_weight > 0 else None,
        )
        best = int(np.argmax(scores))
        return SelectionOutcome(
            candidates[kpos[qidx[best]]], False, n_candidates, n_known,
            float(scores[best]),
        )
