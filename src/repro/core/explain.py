"""Human-readable decision traces for aggregation results.

``explain_result`` answers "what did the model do with my request, and
why did it succeed/fail?" -- the first question any operator of a
QSA-style system asks.  It renders, in order:

1. the request (application, level, duration, requesting peer),
2. the discovery cost,
3. tier 1's outcome: the composed chain with per-instance QoS/resources,
4. tier 2's outcome: one line per selection hop (selection order),
   including the Φ score, candidate counts and random-fallback flags,
5. the admission verdict / session id.

Works for any :class:`~repro.core.aggregation.AggregationResult`;
per-hop detail appears when the producing aggregator recorded
``hop_outcomes`` (QSA does; the baselines do not).
"""

from __future__ import annotations

from typing import List

from repro.core.aggregation import AggregationResult, AggregationStatus

__all__ = ["explain_result"]

_STATUS_NOTES = {
    AggregationStatus.ADMITTED: "session admitted and running",
    AggregationStatus.NO_CANDIDATES:
        "discovery returned no instances for some required service",
    AggregationStatus.COMPOSITION_FAILED:
        "no QoS-consistent service path satisfies the request "
        "(tier 1 found no chain whose outputs satisfy each input and the "
        "end-to-end requirement)",
    AggregationStatus.SELECTION_FAILED:
        "some hop had no selectable hosting peer (tier 2)",
    AggregationStatus.RESOURCES_DENIED:
        "a selected peer could not actually fit the instance's "
        "end-system requirement at admission time (stale probe data or "
        "a race with other sessions)",
    AggregationStatus.BANDWIDTH_DENIED:
        "a connection could not fit the required bandwidth at admission "
        "time",
    AggregationStatus.TRANSIENT_DENIED:
        "an injected transient admission failure outlived its retry "
        "budget (fault injection only)",
}


def explain_result(result: AggregationResult) -> str:
    """Render a multi-line decision trace for one aggregation attempt."""
    req = result.request
    lines: List[str] = []
    lines.append(
        f"request #{req.request_id}: {req.application!r} @ {req.qos_level} "
        f"for {req.session_duration:g} min, from peer {req.peer_id}"
    )
    lines.append(
        f"outcome: {result.status.value} -- "
        f"{_STATUS_NOTES.get(result.status, '')}"
    )
    lines.append(f"discovery: {result.lookup_hops} DHT hops")

    if result.composed is not None:
        lines.append(
            f"tier 1 (composition): {result.composed.hops}-hop path, "
            f"aggregate score {result.composed.score:.4f}"
        )
        for k, inst in enumerate(result.composed.instances):
            placed = (
                f" -> peer {result.peers[k]}"
                if k < len(result.peers)
                else ""
            )
            lines.append(
                f"    [{k}] {inst.instance_id:<24} "
                f"R={inst.resources.values} "
                f"b={inst.bandwidth / 1e3:.0f}kbps "
                f"qout={dict(inst.qout.items())}{placed}"
            )
    else:
        lines.append("tier 1 (composition): no path produced")

    if result.hop_outcomes:
        lines.append("tier 2 (peer selection, user side first):")
        for i, hop in enumerate(result.hop_outcomes):
            if hop.peer_id is None:
                lines.append(
                    f"    hop {i + 1}: FAILED "
                    f"({hop.n_candidates} candidates, {hop.n_known} known)"
                )
                continue
            how = "random fallback" if hop.random_fallback else (
                f"Φ={hop.phi:.2f}" if hop.phi is not None else "Φ ranking"
            )
            lines.append(
                f"    hop {i + 1}: peer {hop.peer_id} via {how} "
                f"({hop.n_known}/{hop.n_candidates} candidates known)"
            )
    elif result.peers:
        lines.append(
            f"tier 2 (peer selection): peers {list(result.peers)} "
            "(no per-hop trace recorded by this algorithm)"
        )

    if result.session is not None:
        lines.append(
            f"session #{result.session.session_id}: "
            f"t={result.session.start:g} .. {result.session.end:g} min "
            f"on peers {list(result.session.peers)}"
        )
    return "\n".join(lines)
