"""The comparison heuristics of §4.1: *random* and *fixed*.

* **random** -- "randomly chooses a QoS consistent service path (without
  considering the aggregated resource consumption) and randomly selects a
  set of provisioning peers for instantiating the service path."
* **fixed** -- "always picks the same service path for a distributed
  application delivery and chooses the dedicated peers to instantiate the
  service path.  The fixed algorithm actually represents the conventional
  client-server systems."

Both share the discovery/admission pipeline with QSA (same lookup costs,
same atomic admission) and differ only in the two strategy hooks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.aggregation import BaseAggregator
from repro.core.composition import (
    ComposedPath,
    CompositionError,
    ConsistencyGraph,
)
from repro.core.qos import QoSVector, satisfies
from repro.core.resources import ResourceTuple, WeightProfile
from repro.lookup.registry import ServiceRegistry
from repro.network.peer import PeerDirectory
from repro.services.model import AbstractServicePath, ServiceInstance
from repro.services.qoscompiler import QoSCompiler, UserRequest
from repro.sessions.session import SessionLedger

__all__ = ["RandomAggregator", "FixedAggregator", "random_consistent_path"]


def _viable_nodes(graph: ConsistencyGraph) -> set:
    """Nodes from which the source layer is reachable via consistency edges."""
    source_layer = graph.n_layers - 1
    viable = {(source_layer, j) for j in range(len(graph.layers[source_layer]))}
    for layer in range(source_layer - 1, -1, -1):
        n_here = 1 if layer == 0 else len(graph.layers[layer])
        for i in range(n_here):
            for j, _score, _t in graph.edges.get((layer, i), ()):
                if (layer + 1, j) in viable:
                    viable.add((layer, i))
                    break
    return viable


def random_consistent_path(
    graph: ConsistencyGraph, rng: np.random.Generator
) -> ComposedPath:
    """A uniformly random walk over the *viable* consistency edges.

    Viability pruning guarantees the walk never dead-ends, so the result
    is always a complete QoS-consistent path; resource costs are ignored
    in every choice, exactly as the paper's random heuristic prescribes.
    """
    viable = _viable_nodes(graph)
    if (0, 0) not in viable:
        raise CompositionError(
            f"no QoS-consistent service path for {graph.path.application!r}"
        )
    chosen: List[ServiceInstance] = []
    total = ResourceTuple.zero(graph.weights.resource_names)
    node = (0, 0)
    for layer in range(0, graph.n_layers - 1):
        options = [
            (j, t)
            for j, _score, t in graph.edges.get(node, ())
            if (layer + 1, j) in viable
        ]
        j, t = options[int(rng.integers(len(options)))]
        chosen.append(graph.layers[layer + 1][j])
        total = total + t
        node = (layer + 1, j)
    return ComposedPath(
        instances=tuple(reversed(chosen)),
        total=total,
        score=graph.weights.score(total),
    )


class RandomAggregator(BaseAggregator):
    """Random QoS-consistent path + uniformly random peers."""

    name = "random"

    def __init__(
        self,
        compiler: QoSCompiler,
        registry: ServiceRegistry,
        directory: PeerDirectory,
        ledger: SessionLedger,
        weights: WeightProfile,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(compiler, registry, directory, ledger, rng)
        # Weights are only used to report comparable path scores; they
        # never influence the random choices.
        self.weights = weights

    def compose(
        self,
        path: AbstractServicePath,
        candidates: Dict[str, Tuple[ServiceInstance, ...]],
        user_qos: QoSVector,
        request: UserRequest,
    ) -> ComposedPath:
        graph = ConsistencyGraph(path, candidates, user_qos, self.weights)
        return random_consistent_path(graph, self.rng)

    def select_peers(
        self,
        request: UserRequest,
        composed: ComposedPath,
        hosts_selection_order: List[List[int]],
    ) -> Optional[Tuple[int, ...]]:
        selected_reverse: List[int] = []
        for candidates in hosts_selection_order:
            if not candidates:
                return None
            selected_reverse.append(
                candidates[int(self.rng.integers(len(candidates)))]
            )
        return tuple(reversed(selected_reverse))


class FixedAggregator(BaseAggregator):
    """One fixed plan (path + dedicated peers) per (application, format).

    The plan is built lazily on first use: the lexicographically first
    viable QoS-consistent path able to deliver the *highest* satisfiable
    quality for that format, pinned to each instance's lowest-numbered
    hosting peer (the "dedicated server").  Every later request for the
    same (application, format) reuses the plan verbatim -- if a dedicated
    peer has left or is saturated, the request simply fails, which is
    precisely the client-server behaviour the baseline models.
    """

    name = "fixed"

    def __init__(
        self,
        compiler: QoSCompiler,
        registry: ServiceRegistry,
        directory: PeerDirectory,
        ledger: SessionLedger,
        weights: WeightProfile,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(compiler, registry, directory, ledger, rng)
        self.weights = weights
        self._plans: Dict[
            Tuple[str, str], Optional[Tuple[ComposedPath, Tuple[int, ...]]]
        ] = {}

    # -- plan construction ----------------------------------------------------
    def _first_viable_path(
        self,
        path: AbstractServicePath,
        candidates: Dict[str, Tuple[ServiceInstance, ...]],
        user_qos: QoSVector,
    ) -> ComposedPath:
        """Deterministic first viable path (ignores resource costs)."""
        graph = ConsistencyGraph(path, candidates, user_qos, self.weights)
        viable = _viable_nodes(graph)
        if (0, 0) not in viable:
            raise CompositionError("no consistent path")
        chosen: List[ServiceInstance] = []
        total = ResourceTuple.zero(self.weights.resource_names)
        node = (0, 0)
        for layer in range(0, graph.n_layers - 1):
            options = [
                (j, t)
                for j, _score, t in graph.edges.get(node, ())
                if (layer + 1, j) in viable
            ]
            j, t = min(options, key=lambda jt: jt[0])
            chosen.append(graph.layers[layer + 1][j])
            total = total + t
            node = (layer + 1, j)
        return ComposedPath(
            instances=tuple(reversed(chosen)),
            total=total,
            score=self.weights.score(total),
        )

    def _build_plan(
        self,
        path: AbstractServicePath,
        candidates: Dict[str, Tuple[ServiceInstance, ...]],
        fmt: str,
    ) -> Optional[Tuple[ComposedPath, Tuple[int, ...]]]:
        from repro.core.qos import Interval

        # Prefer a chain able to serve the highest quality so one plan
        # covers as many user levels as possible.
        for min_quality in (3, 2, 1):
            demand = QoSVector(format=fmt, quality=Interval(min_quality, 3))
            try:
                composed = self._first_viable_path(path, candidates, demand)
            except CompositionError:
                continue
            peers = []
            for inst in composed.instances:
                hosts, _h = self.registry.discover_hosts(
                    inst.instance_id, from_peer=0
                )
                if not hosts:
                    return None
                peers.append(min(hosts))
            return composed, tuple(peers)
        return None

    # -- strategy hooks ----------------------------------------------------------
    def compose(
        self,
        path: AbstractServicePath,
        candidates: Dict[str, Tuple[ServiceInstance, ...]],
        user_qos: QoSVector,
        request: UserRequest,
    ) -> ComposedPath:
        fmt = user_qos["format"]
        key = (path.application, fmt)
        if key not in self._plans:
            self._plans[key] = self._build_plan(path, candidates, fmt)
        plan = self._plans[key]
        if plan is None:
            raise CompositionError(f"no fixed plan for {key}")
        composed, _peers = plan
        # The fixed path must still satisfy this user's requirement
        # (a plan capped at average quality cannot serve a high request).
        if not satisfies(composed.instances[-1].qout, user_qos):
            raise CompositionError(f"fixed plan for {key} cannot meet {user_qos!r}")
        return composed

    def select_peers(
        self,
        request: UserRequest,
        composed: ComposedPath,
        hosts_selection_order: List[List[int]],
    ) -> Optional[Tuple[int, ...]]:
        plan = self._plans.get((request.application, composed.instances[-1].qout["format"]))
        if plan is None:
            return None
        _composed, peers = plan
        # Dedicated servers must still be members of the grid.
        for pid in peers:
            if not self.directory.is_alive(pid):
                return None
        return peers
