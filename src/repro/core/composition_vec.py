"""Vectorized + incremental QCS kernel (the §3.2 algorithm as numpy).

:mod:`repro.core.composition` builds the Fig. 3 consistency graph as
per-node adjacency lists and relaxes it with a python DP/Dijkstra sweep
-- ``O(K V^2)`` interpreted python per request.  This module computes
the *same function* as batched array operations:

* the Eq. 1 ``Qout ⊇ Qin`` consistency checks between two services'
  instance populations become one boolean **adjacency matrix** per
  service pair, computed once per (catalog) instance universe and
  *patched row-by-row* when churn/admission introduces instances the
  index has not seen (never rebuilt wholesale);
* the Def. 3.1 sink→source relaxation becomes, per layer, one masked
  outer add + ``argmin`` row reduction over the scalar
  :class:`~repro.core.resources.WeightProfile` scores.

Exactness is the contract (docs/performance.md): for identical inputs
the kernel returns a :class:`~repro.core.composition.ComposedPath` that
is **bit-identical** to the reference kernels -- same instances, same
float score, same aggregated tuple -- and emits the same telemetry
spans/events with the same values.  Two properties make that literal
instead of approximate:

1. every scalar score is produced by the same
   ``WeightProfile.score(ResourceTuple(...))`` call the reference cost
   cache uses, and the relaxation performs the same IEEE adds in the
   same order (``dist[i] + w[j]`` per candidate edge, min taken over
   the *summed* values, first-index tie-breaking exactly like the
   reference DP's strict-improvement scan);
2. the chosen path's total is re-accumulated through the identical
   ``zero + e1 + e2 + ...`` :class:`ResourceTuple` chain.

The equivalence property suite
(``tests/core/test_composition_equivalence.py``) and the fast-path
differential tests hold all three kernels to that bar.

Incremental maintenance
-----------------------
:class:`ConsistencyIndex` keys everything by ``instance_id`` (service
records are immutable after catalog populate -- the same assumption the
reference row/edge memos rely on).  Each service's instance *universe*
carries a generation counter bumped per admission; pair matrices patch
only the new rows/columns, and the per-``user_qos`` sink rows reuse the
PR-4 :class:`~repro.lookup.cache.BoundedCache` generation invalidation
(cleared only when their service's universe actually grew).  Departures
need no patching at all: a request's candidate sets select matrix
rows/columns by index, so absent instances are simply never selected.

All caches here are owned and gated by ``QSAAggregator.compose`` (the
``fast_paths`` gate); with the gate off, composition falls back to the
memo-free reference kernel.
"""

# lint: disable-file=CACHE001 -- every cache in this module (pair
# matrices, sink rows, composition plans) is constructed for and gated
# by QSAAggregator.compose, which owns the fast_paths switch and falls
# back to the memo-free reference kernel when it is off; hit paths are
# counter-only (CacheStats / metrics counters).

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.composition import ComposedPath, CompositionError
from repro.core.qos import QoSVector, satisfies
from repro.core.resources import ResourceTuple, WeightProfile
from repro.lookup.cache import BoundedCache, CacheStats
from repro.services.model import AbstractServicePath, ServiceInstance
from repro.telemetry.spans import NULL_TRACER

__all__ = ["ConsistencyIndex", "VectorizedComposer", "compose_qcs_vec"]


class _Universe:
    """One service's known instance population, in admission order.

    ``version`` counts admissions; pair matrices and sink rows record
    the version they were computed against and patch the difference.
    """

    __slots__ = ("service", "ids", "instances", "index", "scores", "costs")

    def __init__(self, service: str) -> None:
        self.service = service
        self.ids: List[str] = []
        self.instances: List[ServiceInstance] = []
        #: instance_id -> stable row/column index.
        self.index: Dict[str, int] = {}
        #: Scalar Def. 3.1 scores, aligned with ``instances`` (computed
        #: by the same WeightProfile.score call as the reference kernel).
        self.scores: List[float] = []
        #: Per-instance edge cost tuples ``(R, b)``, aligned.
        self.costs: List[ResourceTuple] = []

    @property
    def version(self) -> int:
        return len(self.ids)

    def admit(self, inst: ServiceInstance, weights: WeightProfile) -> int:
        """Register one unseen instance; returns its index."""
        i = len(self.ids)
        self.index[inst.instance_id] = i
        self.ids.append(inst.instance_id)
        self.instances.append(inst)
        cost = ResourceTuple(inst.resources, inst.bandwidth)
        self.scores.append(weights.score(cost))
        self.costs.append(cost)
        return i


class _PairMatrix:
    """The Eq. 1 adjacency between two universes, patched incrementally.

    ``matrix[i, j]`` answers "may predecessor ``pred.instances[j]`` feed
    current-layer ``cur.instances[i]``" -- i.e.
    ``satisfies(pred[j].qout, cur[i].qin)``.  ``sync`` extends the
    matrix by exactly the rows/columns admitted since the last call.
    """

    __slots__ = ("matrix", "n_cur", "n_pred", "patched_rows")

    def __init__(self) -> None:
        self.matrix = np.zeros((0, 0), dtype=bool)
        self.n_cur = 0
        self.n_pred = 0
        self.patched_rows = 0

    def sync(self, cur: _Universe, pred: _Universe) -> np.ndarray:
        nc, np_ = cur.version, pred.version
        if nc == self.n_cur and np_ == self.n_pred:
            return self.matrix
        grown = np.zeros((nc, np_), dtype=bool)
        grown[: self.n_cur, : self.n_pred] = self.matrix
        # New current-layer rows: check against every predecessor.
        for i in range(self.n_cur, nc):
            qin = cur.instances[i].qin
            row = grown[i]
            for j in range(np_):
                row[j] = satisfies(pred.instances[j].qout, qin)
        # New predecessor columns for the pre-existing rows.
        for j in range(self.n_pred, np_):
            qout = pred.instances[j].qout
            for i in range(self.n_cur):
                grown[i, j] = satisfies(qout, cur.instances[i].qin)
        self.patched_rows += (nc - self.n_cur) + (np_ - self.n_pred)
        self.matrix = grown
        self.n_cur, self.n_pred = nc, np_
        return self.matrix


@dataclass
class _Plan:
    """A fully sliced, ready-to-relax composition instance.

    ``layers[0]`` is the user-adjacent service's candidates (reference
    layer 1), ``layers[-1]`` the source service's.  ``adjacency[t]`` is
    the boolean matrix from ``layers[t]`` rows to ``layers[t + 1]``
    predecessor columns; ``sink_mask`` the per-request Eq. 1 check of
    ``layers[0]`` outputs against the user's QoS vector.
    """

    layers: List[Tuple[ServiceInstance, ...]]
    weights: List[np.ndarray]
    costs: List[List[ResourceTuple]]
    sink_mask: np.ndarray
    adjacency: List[np.ndarray]
    n_nodes: int
    n_edges: int
    #: Lazily solved once per plan: the plan key captures the full
    #: semantic input (services, user QoS, candidate ids) and instance
    #: records are immutable, so the relaxation's outcome -- and the
    #: :class:`ComposedPath` built from it -- are constants of the plan.
    solved: bool = False
    solution: Optional[Tuple[List[int], float]] = None
    composed: Optional[ComposedPath] = None


class ConsistencyIndex:
    """Incrementally maintained candidate matrices over the catalog.

    Owns the per-service universes, the pairwise adjacency matrices and
    the per-``user_qos`` sink rows.  Everything is keyed by
    ``instance_id`` and assumes service records are immutable after
    catalog populate (the reference memos' assumption); universes only
    ever *grow* -- departures are handled by requests simply not
    selecting the absent rows.
    """

    #: LRU cap for distinct user-QoS sink rows per service.
    SINK_CACHE_CAP = 64

    def __init__(self, weights: WeightProfile) -> None:
        self.weights = weights
        self._universes: Dict[str, _Universe] = {}
        self._pairs: Dict[Tuple[str, str], _PairMatrix] = {}
        #: service -> BoundedCache[user_qos key -> bool sink row].  The
        #: cache generation is the universe version: admissions clear
        #: the service's rows (PR-4 generation invalidation) instead of
        #: any wholesale rebuild of the index.
        self._sink_rows: Dict[str, BoundedCache] = {}
        self.sink_stats = CacheStats()

    # -- universe maintenance ------------------------------------------------
    def universe(self, service: str) -> _Universe:
        uni = self._universes.get(service)
        if uni is None:
            uni = self._universes[service] = _Universe(service)
        return uni

    def admit_candidates(
        self, service: str, candidates: Sequence[ServiceInstance]
    ) -> _Universe:
        """Register any unseen candidate instances (incremental patch)."""
        uni = self.universe(service)
        index = uni.index
        for inst in candidates:
            if inst.instance_id not in index:
                uni.admit(inst, self.weights)
        return uni

    def pair_matrix(self, cur: _Universe, pred: _Universe) -> np.ndarray:
        """The synced adjacency matrix between two universes."""
        key = (cur.service, pred.service)
        pair = self._pairs.get(key)
        if pair is None:
            pair = self._pairs[key] = _PairMatrix()
        return pair.sync(cur, pred)

    def sink_row(self, uni: _Universe, user_qos: QoSVector) -> np.ndarray:
        """Boolean "satisfies the user requirement" row over a universe."""
        cache = self._sink_rows.get(uni.service)
        if cache is None:
            cache = self._sink_rows[uni.service] = BoundedCache(
                self.SINK_CACHE_CAP
            )
        cache.check_generation(uni.version)
        key = user_qos.as_tuple()
        row = cache.get(key)
        if row is None:
            self.sink_stats.misses += 1
            row = np.fromiter(
                (satisfies(inst.qout, user_qos) for inst in uni.instances),
                dtype=bool,
                count=uni.version,
            )
            cache.put(key, row)
        else:
            self.sink_stats.hits += 1
        return row

    @property
    def patched_rows(self) -> int:
        """Total adjacency rows/columns patched in (never rebuilt)."""
        return sum(p.patched_rows for p in self._pairs.values())

    @property
    def n_pair_matrices(self) -> int:
        return len(self._pairs)


class VectorizedComposer:
    """QCS over a :class:`ConsistencyIndex`, with a composition-plan LRU.

    A *plan* is the per-request slice of the index: candidate index
    arrays, adjacency sub-matrices, score vectors and the sink mask.
    Candidate sets are stable between membership events, so plans are
    memoized under a key that captures the full semantic input --
    ``(services, user_qos, per-layer candidate id tuples)`` -- making
    staleness impossible by construction: any churn/admission that
    changes a candidate set changes the key.
    """

    #: LRU cap for memoized composition plans.
    PLAN_CACHE_CAP = 512

    def __init__(self, weights: WeightProfile) -> None:
        self.weights = weights
        self.index = ConsistencyIndex(weights)
        self._plans = BoundedCache(self.PLAN_CACHE_CAP)

    @property
    def plan_stats(self) -> CacheStats:
        return self._plans.stats

    def invalidate_plans(self) -> None:
        """Drop every memoized plan (the incremental index is kept).

        Plans can never go stale -- their key captures the full semantic
        input -- so this exists for memory pressure and for benchmarks
        that want to time the plan-miss path; hit/miss stats survive.
        """
        self._plans.clear()

    # -- plan construction ---------------------------------------------------
    def _build_plan(
        self,
        path: AbstractServicePath,
        layer_candidates: List[Tuple[ServiceInstance, ...]],
        user_qos: QoSVector,
    ) -> _Plan:
        index = self.index
        layers: List[Tuple[ServiceInstance, ...]] = []
        weights_per_layer: List[np.ndarray] = []
        costs_per_layer: List[List[ResourceTuple]] = []
        adjacency: List[np.ndarray] = []
        universes: List[_Universe] = []
        idx_arrays: List[np.ndarray] = []

        for service, cands in zip(path.reversed(), layer_candidates):
            uni = index.admit_candidates(service, cands)
            uindex = uni.index
            rows = [uindex[inst.instance_id] for inst in cands]
            scores = uni.scores
            costs = uni.costs
            layers.append(cands)
            weights_per_layer.append(
                np.array([scores[i] for i in rows], dtype=np.float64)
            )
            costs_per_layer.append([costs[i] for i in rows])
            universes.append(uni)
            idx_arrays.append(np.asarray(rows, dtype=np.intp))

        for t in range(len(layers) - 1):
            full = index.pair_matrix(universes[t], universes[t + 1])
            adjacency.append(full[np.ix_(idx_arrays[t], idx_arrays[t + 1])])

        sink_full = index.sink_row(universes[0], user_qos)
        sink_mask = sink_full[idx_arrays[0]]

        n_nodes = 1 + sum(len(layer) for layer in layers)
        n_edges = int(sink_mask.sum()) + sum(
            int(a.sum()) for a in adjacency
        )
        return _Plan(
            layers=layers,
            weights=weights_per_layer,
            costs=costs_per_layer,
            sink_mask=sink_mask,
            adjacency=adjacency,
            n_nodes=n_nodes,
            n_edges=n_edges,
        )

    def _plan_for(
        self,
        path: AbstractServicePath,
        candidates: Mapping[str, Sequence[ServiceInstance]],
        user_qos: QoSVector,
    ) -> _Plan:
        layer_candidates: List[Tuple[ServiceInstance, ...]] = []
        key_parts: List[Hashable] = [path.services, user_qos.as_tuple()]
        for service in path.reversed():
            cands = tuple(candidates.get(service, ()))
            if not cands:
                raise CompositionError(
                    f"no candidate instances discovered for service {service!r}"
                )
            layer_candidates.append(cands)
            key_parts.append(tuple(inst.instance_id for inst in cands))
        key = tuple(key_parts)
        plan = self._plans.get(key)
        if plan is None:
            self._plans.stats.misses += 1
            plan = self._build_plan(path, layer_candidates, user_qos)
            self._plans.put(key, plan)
        else:
            self._plans.stats.hits += 1
        return plan

    # -- the relaxation ------------------------------------------------------
    @staticmethod
    def _solve(plan: _Plan) -> Optional[Tuple[List[int], float]]:
        """Sink→source sweep; returns per-layer choices + score, or None.

        Performs the identical IEEE adds as the reference DP (``dist[i]
        + w[j]`` per consistent edge, minimum over the summed values)
        and the identical first-index tie-breaking (``np.argmin``
        returns the first occurrence of the minimum; the reference scan
        only replaces on strict improvement).
        """
        dist = np.where(
            plan.sink_mask, 0.0 + plan.weights[0], np.inf
        )
        preds: List[np.ndarray] = []
        for t in range(len(plan.layers) - 1):
            cand = dist[:, None] + plan.weights[t + 1][None, :]
            masked = np.where(plan.adjacency[t], cand, np.inf)
            best = np.argmin(masked, axis=0)
            dist = masked[best, np.arange(masked.shape[1])]
            preds.append(best)
        j = int(np.argmin(dist)) if dist.size else 0
        if not dist.size or not np.isfinite(dist[j]):
            return None
        score = float(dist[j])
        indices = [0] * len(plan.layers)
        indices[-1] = j
        for t in range(len(plan.layers) - 2, -1, -1):
            j = int(preds[t][j])
            indices[t] = j
        return indices, score

    # -- public API ----------------------------------------------------------
    def compose(
        self,
        path: AbstractServicePath,
        candidates: Mapping[str, Sequence[ServiceInstance]],
        user_qos: QoSVector,
        telemetry: Optional[Any] = None,
    ) -> ComposedPath:
        """Run vectorized QCS; the exact contract of ``compose_qcs``.

        Raises :class:`CompositionError` for missing candidates or an
        infeasible requirement, and emits the same telemetry spans
        (``qcs.compose`` / ``qcs.graph_build`` / ``qcs.solve``),
        counters and bus events as the reference kernels.
        """
        tracer = telemetry.tracer if telemetry is not None else NULL_TRACER
        with tracer.span("qcs.compose", application=path.application):
            with tracer.span("qcs.graph_build"):
                plan = self._plan_for(path, candidates, user_qos)
            if telemetry is not None:
                m = telemetry.metrics
                m.counter("qcs.compositions").inc()
                m.counter("qcs.graph_nodes").inc(plan.n_nodes)
                m.counter("qcs.graph_edges").inc(plan.n_edges)
            with tracer.span("qcs.solve"):
                if not plan.solved:
                    plan.solution = self._solve(plan)
                    plan.solved = True
                result = plan.solution
        if result is None:
            if telemetry is not None:
                telemetry.metrics.counter("qcs.no_path").inc()
                telemetry.bus.emit(
                    "qcs.failed",
                    application=path.application,
                    n_nodes=plan.n_nodes,
                    n_edges=plan.n_edges,
                )
            raise CompositionError(
                f"no QoS-consistent service path for application "
                f"{path.application!r} at requirement {user_qos!r}"
            )
        composed = plan.composed
        if composed is None:
            indices, score = result
            chosen_reverse = [
                plan.layers[t][indices[t]] for t in range(len(indices))
            ]
            total = ResourceTuple.zero(self.weights.resource_names)
            for t, choice in enumerate(indices):
                total = total + plan.costs[t][choice]
            composed = ComposedPath(
                instances=tuple(reversed(chosen_reverse)),
                total=total,
                score=score,
            )
            plan.composed = composed
        if telemetry is not None:
            telemetry.bus.emit(
                "qcs.composed",
                application=path.application,
                n_nodes=plan.n_nodes,
                n_edges=plan.n_edges,
                score=composed.score,
                hops=composed.hops,
            )
        return composed


def compose_qcs_vec(
    path: AbstractServicePath,
    candidates: Mapping[str, Sequence[ServiceInstance]],
    user_qos: QoSVector,
    weights: WeightProfile,
    composer: Optional[VectorizedComposer] = None,
    telemetry: Optional[Any] = None,
) -> ComposedPath:
    """One-shot convenience wrapper (tests, tools).

    Long-lived callers (the aggregator) should hold a
    :class:`VectorizedComposer` so the incremental index and plan cache
    amortize across requests; this wrapper builds a throwaway one.
    """
    if composer is None:
        composer = VectorizedComposer(weights)
    elif composer.weights is not weights:
        raise ValueError("composer was built for a different WeightProfile")
    return composer.compose(path, candidates, user_qos, telemetry=telemetry)
