"""Application-level QoS vectors and the "satisfy" relation (paper Eq. 1).

The paper models every service component as accepting input at QoS level
``Qin`` and producing output at QoS level ``Qout``; both are vectors of
application-level QoS parameters.  Parameters come in two flavours:

* **single-value** parameters -- e.g. data format (``"MPEG"``), resolution
  (``"640x480"``); and
* **range-value** parameters -- e.g. frame rate (``[10, 30]`` fps),
  represented here by :class:`Interval`.

Two components ``A -> B`` may be connected iff ``Qout_A ⪯ Qin_B``
("satisfies", Eq. 1): *for every* dimension of ``Qin_B`` there must exist
a dimension of ``Qout_A`` that equals it (single value) or is contained in
it (range value).  Dimensions are matched by parameter *name*; the paper's
existential quantifier over indices reduces to a name lookup because a QoS
vector never carries two dimensions with the same name.

Extra dimensions in ``Qout_A`` that ``Qin_B`` does not mention are allowed
(B simply ignores them), which matches the paper's ∀/∃ formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple, Union

__all__ = ["Interval", "QoSValue", "QoSVector", "satisfies"]


@dataclass(frozen=True, order=True)
class Interval:
    """A closed numeric interval ``[lo, hi]`` (a range-value QoS parameter)."""

    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval: lo={self.lo} > hi={self.hi}")

    def contains_value(self, x: float) -> bool:
        """Whether the scalar ``x`` lies within the interval."""
        return self.lo <= x <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` ⊆ ``self``."""
        return self.lo <= other.lo and other.hi <= self.hi

    def intersect(self, other: "Interval") -> "Interval | None":
        """The overlap of two intervals, or ``None`` if disjoint."""
        lo, hi = max(self.lo, other.lo), min(self.hi, other.hi)
        return Interval(lo, hi) if lo <= hi else None

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def __str__(self) -> str:
        return f"[{self.lo:g}, {self.hi:g}]"


#: A QoS parameter value: categorical (str), scalar (int/float) or a range.
QoSValue = Union[str, int, float, Interval]


def _value_satisfies(offered: QoSValue, required: QoSValue) -> bool:
    """Does a single offered parameter value satisfy a required one?

    Implements the per-dimension clauses of Eq. 1:

    * required is a **single value** -> offered must equal it exactly
      (a degenerate offered interval ``[v, v]`` counts as the value ``v``);
    * required is a **range** -> offered must be contained in it
      (a scalar counts as the degenerate interval ``[v, v]``).
    """
    if isinstance(required, Interval):
        if isinstance(offered, Interval):
            return required.contains_interval(offered)
        if isinstance(offered, (int, float)) and not isinstance(offered, bool):
            return required.contains_value(float(offered))
        return False
    # required is a single value
    if isinstance(offered, Interval):
        return offered.lo == offered.hi and _scalar_eq(offered.lo, required)
    return _scalar_eq(offered, required)


def _scalar_eq(a: QoSValue, b: QoSValue) -> bool:
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    return float(a) == float(b)


class QoSVector(Mapping[str, QoSValue]):
    """An immutable named vector of QoS parameters (``Qin`` or ``Qout``).

    Construct from keyword arguments or a mapping::

        q = QoSVector(format="MPEG", frame_rate=Interval(10, 30))
        q["format"]        # 'MPEG'
        q.dim              # 2
    """

    __slots__ = ("_params",)

    def __init__(
        self, params: Mapping[str, QoSValue] | None = None, **kw: QoSValue
    ) -> None:
        merged: Dict[str, QoSValue] = dict(params or {})
        merged.update(kw)
        for name, value in merged.items():
            if not isinstance(value, (str, int, float, Interval)) or isinstance(
                value, bool
            ):
                raise TypeError(
                    f"QoS parameter {name!r} has unsupported type "
                    f"{type(value).__name__}"
                )
        self._params: Dict[str, QoSValue] = merged

    # -- Mapping protocol --------------------------------------------------
    def __getitem__(self, name: str) -> QoSValue:
        return self._params[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._params)

    def __len__(self) -> int:
        return len(self._params)

    # -- paper-facing API ----------------------------------------------------
    @property
    def dim(self) -> int:
        """``Dim(Q)`` in the paper: the number of parameters."""
        return len(self._params)

    def satisfies(self, requirement: "QoSVector") -> bool:
        """``self ⪯ requirement``: Eq. 1 with ``self`` as the offered Qout."""
        return satisfies(self, requirement)

    def merged_with(self, other: "QoSVector") -> "QoSVector":
        """A new vector with ``other``'s parameters overriding ``self``'s."""
        return QoSVector({**self._params, **other._params})

    # -- misc ---------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QoSVector):
            return NotImplemented
        return self._params == other._params

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._params.items(), key=lambda kv: kv[0])))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._params.items()))
        return f"QoSVector({inner})"

    def as_tuple(self) -> Tuple[Tuple[str, QoSValue], ...]:
        """A canonical, hashable form (sorted by parameter name)."""
        return tuple(sorted(self._params.items(), key=lambda kv: kv[0]))


def satisfies(offered: QoSVector, required: QoSVector) -> bool:
    """The inter-component "satisfy" relation ``offered ⪯ required`` (Eq. 1).

    ``offered`` plays the role of ``Qout_A``; ``required`` of ``Qin_B``.
    Returns True iff every dimension of ``required`` is matched by the
    identically named dimension of ``offered`` under the single-value /
    range-value rules.
    """
    offered_params = offered._params
    for name, req_value in required._params.items():
        off_value = offered_params.get(name)
        if off_value is None:
            return False
        if not _value_satisfies(off_value, req_value):
            return False
    return True
