"""Discrete-event simulation kernel.

A small, deterministic, SimPy-flavoured discrete-event simulation (DES)
engine.  It provides:

* :class:`~repro.sim.engine.Simulator` -- the event loop (binary-heap
  based, stable FIFO ordering for simultaneous events).
* :class:`~repro.sim.engine.Event` -- a one-shot occurrence with callbacks.
* :class:`~repro.sim.process.Process` -- generator-based cooperative
  processes that ``yield`` events/timeouts.
* :class:`~repro.sim.rng.RngStreams` -- named, independently seeded
  random-number streams so that sub-systems draw from decoupled streams
  and experiments stay reproducible when one sub-system changes.

The engine is intentionally minimal: the large-scale experiments in
:mod:`repro.experiments` schedule hundreds of thousands of events, so the
hot path (``schedule`` / ``step``) avoids allocation-heavy abstractions.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.process import Process, Interrupt
from repro.sim.rng import RngStreams

__all__ = [
    "Event",
    "Interrupt",
    "Process",
    "RngStreams",
    "SimulationError",
    "Simulator",
]
