"""The discrete-event simulation engine.

Design notes
------------
The engine is a classic event-heap simulator.  Events are scheduled at an
absolute simulated time; ties are broken by a monotonically increasing
sequence number so that simultaneous events fire in FIFO order (this makes
runs bit-for-bit reproducible, which every experiment in
:mod:`repro.experiments` relies on).

Time is a ``float`` in *minutes* by convention throughout this project
(the paper's evaluation section is phrased entirely in minutes), although
nothing in the kernel itself assumes a unit.

The hot path is ``schedule()``/``step()``; both are kept free of
per-call object churn beyond the unavoidable heap entry.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Event", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling into the past, etc.)."""


#: Sentinel for "event has not yet fired".
_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*, is optionally *scheduled*, and eventually
    either *succeeds* (with a value) or *fails* (with an exception).
    Callbacks registered through :meth:`add_callback` run inside the event
    loop when the event fires, in registration order.

    Events are also what :class:`repro.sim.process.Process` instances
    ``yield`` to suspend themselves.
    """

    __slots__ = ("sim", "_value", "_ok", "_callbacks", "scheduled_at")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._callbacks: Optional[List[Callable[["Event"], None]]] = []
        #: Simulated time the event was scheduled to fire at, or ``None``.
        self.scheduled_at: Optional[float] = None

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance, if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule its callbacks.

        ``delay`` is relative to the current simulated time.
        """
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._ok = True
        self.sim._enqueue(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; its value becomes the exception."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._value = exc
        self._ok = False
        self.sim._enqueue(self, delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Register ``fn(event)`` to run when the event fires.

        If the event has already been processed the callback runs
        immediately (still inside the current step).
        """
        if self._callbacks is None:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<Event {state} at t={self.sim.now:.4g}>"


class Simulator:
    """The event loop.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> sim.call_at(2.0, lambda: seen.append(sim.now))
    >>> sim.run(until=10.0)
    >>> seen
    [2.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- event construction ----------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        ev = Event(self)
        ev._value = value
        ev._ok = True
        self._enqueue(ev, delay)
        return ev

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} (now is t={self._now})"
            )
        ev = self.timeout(when - self._now)
        ev.add_callback(lambda _ev: fn(*args))
        return ev

    def call_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` time units."""
        return self.call_at(self._now + delay, fn, *args)

    # -- scheduling internals ----------------------------------------------
    def _enqueue(self, ev: Event, delay: float) -> None:
        when = self._now + delay
        ev.scheduled_at = when
        heapq.heappush(self._heap, (when, next(self._seq), ev))

    # -- execution ---------------------------------------------------------
    @property
    def queue_length(self) -> int:
        """Number of scheduled-but-unfired events."""
        return len(self._heap)

    def peek(self) -> float:
        """Time of the next event, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("no events to step")
        when, _seq, ev = heapq.heappop(self._heap)
        self._now = when
        ev._fire()

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap is empty or simulated time reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so back-to-back ``run`` calls
        observe a monotone clock.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            if until is None:
                while self._heap:
                    self.step()
            else:
                if until < self._now:
                    raise SimulationError(
                        f"run(until={until}) is in the past (now={self._now})"
                    )
                while self._heap and self._heap[0][0] <= until:
                    self.step()
                self._now = until
        finally:
            self._running = False
