"""The runtime determinism sanitizer: draw ledgers and write barriers.

The static pass (``repro lint --whole-program``) proves the *shape* of
the program keeps RNG streams and mutable state plane-local; this module
proves each *run* actually behaved: it records, in order,

* **draws** -- every method call on every seeded stream handed out by
  :class:`repro.sim.rng.RngStreams`, counted per stream, with periodic
  bit-generator state hashes checkpointed on sim-clock epochs, and
* **writes** -- every membership/ledger mutation crossing the
  write-barrier hooks (peer create/depart, session admit/release/
  repair), stamped with ``(plane, op, sim_time, membership generation)``
  provenance,

into one ordered ledger exported as canonical JSONL.  Two runs are
behaviourally identical iff their ledgers are byte-identical;
:func:`compare_ledgers` names the first divergent record (and, inside
an epoch record, the first divergent stream) so a cross-backend or
cross-shard regression points at the plane that drifted.

This is the differential instrument the sharded engine (ROADMAP item 1)
will be validated with: N shards vs 1 shard must produce the same
ledger, exactly as ``object`` vs ``soa`` peer-state backends must today
(``tests/sim/test_sanitizer.py``).

Design constraints, in order:

1. **Zero footprint when off.**  Nothing here is imported or called
   unless ``GridConfig.sanitize`` is set; streams stay raw generators.
2. **No feedback into the run.**  The sanitizer never emits telemetry,
   never draws randomness, never reads the wall clock; checkpoints are
   *lazy* (taken at the first draw/write past an epoch boundary), so
   the event heap and every downstream draw are untouched and the
   telemetry export stays byte-identical sanitize-on vs sanitize-off.
3. **Canonical bytes.**  Records serialise with sorted keys and fixed
   separators; equal behaviour means equal bytes, so ``diff``/``cmp``
   on two ledgers is already a valid (if less helpful) comparator.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, cast

import numpy as np

__all__ = [
    "LEDGER_VERSION",
    "LedgeredStream",
    "Sanitizer",
    "CompareVerdict",
    "compare_ledgers",
    "compare_ledger_files",
]

#: Ledger schema version; bump on any record-shape change.
LEDGER_VERSION = 1

#: Generator attributes returned unwrapped: non-drawing surfaces and the
#: state accessor the sanitizer itself hashes.
_PASSTHROUGH = frozenset({"bit_generator", "spawn"})


def _state_hash(gen: np.random.Generator) -> str:
    """Stable 64-bit hex digest of a generator's bit-generator state."""
    blob = json.dumps(
        gen.bit_generator.state, sort_keys=True, separators=(",", ":"),
        default=int,
    )
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=8).hexdigest()


class LedgeredStream:
    """A counting proxy over one :class:`numpy.random.Generator`.

    Every public method call is reported to the sanitizer *before* it
    executes (so an epoch checkpoint hashes the pre-draw state), then
    forwarded unchanged.  One vectorized call counts as one draw event:
    size divergence still shows up in the next state hash.
    """

    def __init__(self, name: str, gen: np.random.Generator,
                 sanitizer: "Sanitizer") -> None:
        self._name = name
        self._gen = gen
        self._sanitizer = sanitizer

    def __getattr__(self, attr: str) -> Any:
        value = getattr(self._gen, attr)
        if attr.startswith("_") or attr in _PASSTHROUGH \
                or not callable(value):
            return value
        name = self._name
        note_draw = self._sanitizer.note_draw

        def counted(*args: Any, **kwargs: Any) -> Any:
            note_draw(name)
            return value(*args, **kwargs)

        # Cache the wrapper so repeated lookups skip __getattr__.
        self.__dict__[attr] = counted
        return counted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LedgeredStream({self._name!r}, {self._gen!r})"


class Sanitizer:
    """Collects the ordered draw/write ledger for one seeded run."""

    def __init__(self, clock: Callable[[], float],
                 epoch: float = 5.0) -> None:
        if epoch <= 0:
            raise ValueError(f"epoch must be positive, got {epoch}")
        #: Sim-clock reader (``lambda: sim.now``); never the wall clock.
        self._clock = clock
        #: Sim-time width of one checkpoint epoch.
        self.epoch = float(epoch)
        self._gens: Dict[str, np.random.Generator] = {}
        self._draws: Dict[str, int] = {}
        self._records: List[Dict[str, Any]] = []
        #: Sim time at which the next checkpoint is due.  Initialized so
        #: the very first draw/write checkpoints the pristine streams;
        #: thereafter one float compare per draw is the entire epoch
        #: bookkeeping (the overhead budget in EXPERIMENTS.md E10 is
        #: <10%, and the draw hook is the only per-event cost).
        self._next_boundary = -math.inf
        self._finalized = False
        self.n_writes = 0

    # -- run lifecycle -----------------------------------------------------
    def begin(self, seed: int) -> None:
        """Open the ledger with the run's identity record.

        Deliberately excludes anything equivalence classes of runs are
        *allowed* to differ in (peer-state backend, fast-path gates):
        the compare contract is that those knobs produce byte-identical
        ledgers, so they must not appear in the bytes.
        """
        self._records.append({
            "kind": "meta",
            "version": LEDGER_VERSION,
            "seed": int(seed),
            "epoch": self.epoch,
        })

    def wrap_stream(self, name: str,
                    gen: np.random.Generator) -> np.random.Generator:
        """Register ``gen`` under ``name`` and return the counting proxy.

        The proxy quacks like the generator for every drawing method;
        the cast reflects that behavioural (not nominal) subtyping.
        """
        if name in self._gens:
            raise ValueError(f"stream {name!r} already wrapped")
        self._gens[name] = gen
        self._draws[name] = 0
        return cast(np.random.Generator, LedgeredStream(name, gen, self))

    # -- ledger hooks ------------------------------------------------------
    def note_draw(self, name: str) -> None:
        """One drawing method call on stream ``name`` (pre-draw)."""
        now = self._clock()
        if now >= self._next_boundary:
            self._checkpoint(now)
        self._draws[name] += 1

    def note_write(self, plane: str, op: str, gen: int, n: int = 1) -> None:
        """One barrier-crossing mutation: ``(plane, op)`` at generation
        ``gen`` (the owning directory's membership generation)."""
        now = self._clock()
        if now >= self._next_boundary:
            self._checkpoint(now)
        self.n_writes += 1
        self._records.append({
            "kind": "write",
            "plane": plane,
            "op": op,
            "t": now,
            "gen": int(gen),
            "n": int(n),
        })

    # -- checkpoints -------------------------------------------------------
    def _snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {
            name: {"draws": self._draws[name],
                   "state": _state_hash(self._gens[name])}
            for name in sorted(self._gens)
        }

    def _checkpoint(self, now: float) -> None:
        epoch = math.floor(now / self.epoch) * self.epoch
        self._next_boundary = epoch + self.epoch
        self._records.append({
            "kind": "epoch",
            "t": epoch,
            "streams": self._snapshot(),
        })

    def finalize(self) -> None:
        """Close the ledger with the end-of-run totals (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        self._records.append({
            "kind": "final",
            "t": self._clock(),
            "streams": self._snapshot(),
            "writes": self.n_writes,
        })

    # -- export ------------------------------------------------------------
    @property
    def n_records(self) -> int:
        return len(self._records)

    def render_lines(self) -> List[str]:
        """The canonical JSONL lines (finalizes the ledger)."""
        self.finalize()
        return [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self._records
        ]

    def export_jsonl(self, path: str) -> int:
        """Write the canonical ledger; returns the record count."""
        lines = self.render_lines()
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line)
                handle.write("\n")
        return len(lines)


# -- comparison ------------------------------------------------------------

@dataclass(frozen=True)
class CompareVerdict:
    """The outcome of one ledger comparison."""

    identical: bool
    #: 1-based line number of the first divergence (None when identical).
    line: Optional[int]
    #: Human-readable description of the first divergence.
    reason: str

    def render(self) -> str:
        if self.identical:
            return "ledgers identical"
        return f"ledgers diverge at record {self.line}: {self.reason}"


def _describe_divergence(line_a: str, line_b: str) -> str:
    try:
        rec_a = json.loads(line_a)
        rec_b = json.loads(line_b)
    except ValueError:
        return f"unparseable record ({line_a[:60]!r} vs {line_b[:60]!r})"
    kind_a, kind_b = rec_a.get("kind"), rec_b.get("kind")
    if kind_a != kind_b:
        return (f"record kinds differ: {kind_a!r} vs {kind_b!r} "
                f"(the runs took different paths)")
    if kind_a in ("epoch", "final"):
        streams_a = rec_a.get("streams", {})
        streams_b = rec_b.get("streams", {})
        for name in sorted(set(streams_a) | set(streams_b)):
            entry_a = streams_a.get(name)
            entry_b = streams_b.get(name)
            if entry_a == entry_b:
                continue
            if entry_a is None or entry_b is None:
                return (f"stream {name!r} exists in only one run "
                        f"at t={rec_a.get('t')}")
            if entry_a.get("draws") != entry_b.get("draws"):
                return (f"stream {name!r} diverges at t={rec_a.get('t')}: "
                        f"{entry_a.get('draws')} draws vs "
                        f"{entry_b.get('draws')}")
            return (f"stream {name!r} diverges at t={rec_a.get('t')}: "
                    f"equal draw counts ({entry_a.get('draws')}) but "
                    f"different generator states "
                    f"({entry_a.get('state')} vs {entry_b.get('state')})")
        return f"epoch records differ at t={rec_a.get('t')} vs {rec_b.get('t')}"
    if kind_a == "write":
        fields = [k for k in sorted(set(rec_a) | set(rec_b))
                  if rec_a.get(k) != rec_b.get(k)]
        detail = ", ".join(
            f"{k}={rec_a.get(k)!r} vs {rec_b.get(k)!r}" for k in fields
        )
        return (f"write records differ ({detail}) -- "
                f"plane {rec_a.get('plane')!r} op {rec_a.get('op')!r}")
    if kind_a == "meta":
        fields = [k for k in sorted(set(rec_a) | set(rec_b))
                  if rec_a.get(k) != rec_b.get(k)]
        return "meta records differ: " + ", ".join(
            f"{k}={rec_a.get(k)!r} vs {rec_b.get(k)!r}" for k in fields
        )
    return f"records differ: {line_a[:60]!r} vs {line_b[:60]!r}"


def compare_ledgers(lines_a: Iterable[str],
                    lines_b: Iterable[str]) -> CompareVerdict:
    """First-divergence comparison of two canonical ledgers."""
    a = [ln.rstrip("\n") for ln in lines_a if ln.strip()]
    b = [ln.rstrip("\n") for ln in lines_b if ln.strip()]
    for idx, (line_a, line_b) in enumerate(zip(a, b), start=1):
        if line_a != line_b:
            return CompareVerdict(
                identical=False, line=idx,
                reason=_describe_divergence(line_a, line_b),
            )
    if len(a) != len(b):
        short, long_ = ("A", "B") if len(a) < len(b) else ("B", "A")
        return CompareVerdict(
            identical=False, line=min(len(a), len(b)) + 1,
            reason=(f"ledger {short} ends after {min(len(a), len(b))} "
                    f"records; {long_} has {max(len(a), len(b))}"),
        )
    if not a:
        raise ValueError("both ledgers are empty")
    return CompareVerdict(identical=True, line=None, reason="")


def compare_ledger_files(path_a: str, path_b: str) -> CompareVerdict:
    """File-level :func:`compare_ledgers` (the CLI's backend)."""
    with open(path_a, "r", encoding="utf-8") as handle:
        lines_a = handle.readlines()
    with open(path_b, "r", encoding="utf-8") as handle:
        lines_b = handle.readlines()
    return compare_ledgers(lines_a, lines_b)
