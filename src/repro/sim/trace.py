"""Structured event tracing for simulation runs.

Long simulations are hard to debug from aggregate metrics alone; the
tracer records *what happened, when* as typed, timestamped records:

* :class:`TraceEvent` -- ``(time, kind, **fields)``.
* :class:`Tracer` -- an append-only, optionally bounded event log with
  kind-based subscription and query helpers.

Subsystems emit through a tracer the grid owns (``grid.tracer``) when
tracing is enabled (``GridConfig.tracing=True``); emission is a no-op
attribute check when disabled, so the hot path stays clean (the guides'
"measure first" rule -- tracing must not distort what it measures).

Event kinds used by the library:

====================  =====================================================
kind                  fields
====================  =====================================================
``request``           request_id, peer, application, level, status
``session-admitted``  session_id, request_id, peers
``session-completed`` session_id, request_id
``session-released``  session_id, request_id
``session-failed``    session_id, request_id, reason
``session-repaired``  session_id, dead_peer, new_peers
``peer-arrived``      peer
``peer-departed``     peer
====================  =====================================================
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence."""

    time: float
    kind: str
    fields: Dict[str, Any]

    def __getattr__(self, name: str) -> Any:
        try:
            return self.fields[name]
        except KeyError:
            raise AttributeError(name) from None

    def __str__(self) -> str:
        inner = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:9.3f}] {self.kind:<18} {inner}"


class Tracer:
    """Append-only event log with subscriptions.

    Parameters
    ----------
    clock:
        A zero-argument callable returning the current simulated time
        (pass ``sim`` 's ``lambda: sim.now`` or the simulator itself via
        :meth:`for_simulator`).
    capacity:
        Keep at most this many most-recent events (``None`` = unbounded).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive (or None)")
        self._clock = clock
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._subscribers: Dict[str, List[Callable[[TraceEvent], None]]] = {}
        self.n_emitted = 0

    @classmethod
    def for_simulator(cls, sim: Any, capacity: Optional[int] = None) -> "Tracer":
        return cls(lambda: sim.now, capacity)

    # -- emission ---------------------------------------------------------
    def emit(self, kind: str, **fields: Any) -> TraceEvent:
        event = TraceEvent(self._clock(), kind, fields)
        self._events.append(event)
        self.n_emitted += 1
        for fn in self._subscribers.get(kind, ()):
            fn(event)
        for fn in self._subscribers.get("*", ()):
            fn(event)
        return event

    # -- subscription -------------------------------------------------------
    def subscribe(
        self, kind: str, fn: Callable[[TraceEvent], None]
    ) -> Callable[[], None]:
        """Call ``fn`` on every ``kind`` event (``"*"`` = all kinds).

        Returns an unsubscribe callable.
        """
        self._subscribers.setdefault(kind, []).append(fn)

        def unsubscribe() -> None:
            try:
                self._subscribers[kind].remove(fn)
            except (KeyError, ValueError):
                pass

        return unsubscribe

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        kind: Optional[str] = None,
        since: float = float("-inf"),
        until: float = float("inf"),
    ) -> List[TraceEvent]:
        return [
            e
            for e in self._events
            if (kind is None or e.kind == kind) and since <= e.time <= until
        ]

    def counts(self) -> Counter:
        """Events by kind (over the retained window)."""
        return Counter(e.kind for e in self._events)

    def last(self, kind: Optional[str] = None) -> Optional[TraceEvent]:
        for e in reversed(self._events):
            if kind is None or e.kind == kind:
                return e
        return None

    def format(self, kind: Optional[str] = None, limit: int = 50) -> str:
        """The most recent ``limit`` (matching) events, one per line."""
        selected = self.events(kind)[-limit:]
        return "\n".join(str(e) for e in selected)
