"""Named, independently seeded random-number streams.

Large simulations become impossible to debug when every subsystem pulls
from one shared RNG: adding a single draw anywhere perturbs everything
downstream.  :class:`RngStreams` hands each subsystem its own
:class:`numpy.random.Generator`, derived from a root seed via
``numpy.random.SeedSequence.spawn``-style key derivation, so

* the same ``(root_seed, stream_name)`` always yields the same stream, and
* streams are statistically independent of each other.

Usage::

    rng = RngStreams(seed=42)
    catalog_rng = rng.stream("catalog")
    churn_rng = rng.stream("churn")
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

if TYPE_CHECKING:
    from repro.sim.sanitizer import Sanitizer

__all__ = ["RngStreams", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name.

    Uses BLAKE2b over ``"{root_seed}/{name}"`` so the mapping is stable
    across processes, platforms, and Python hash randomization.
    """
    digest = hashlib.blake2b(
        f"{root_seed}/{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


class RngStreams:
    """A factory of named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0,
                 sanitizer: Optional["Sanitizer"] = None) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        #: Optional :class:`repro.sim.sanitizer.Sanitizer`: when set,
        #: every stream is handed out behind a draw-counting proxy.
        self.sanitizer = sanitizer

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (its state advances with use); construct a second
        ``RngStreams`` to replay from scratch.
        """
        gen = self._streams.get(name)
        if gen is None:
            raw = np.random.default_rng(derive_seed(self.seed, name))
            if self.sanitizer is not None:
                gen = self.sanitizer.wrap_stream(name, raw)
            else:
                gen = raw
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, at its initial state."""
        return np.random.default_rng(derive_seed(self.seed, name))

    def spawn(self, name: str) -> "RngStreams":
        """A child ``RngStreams`` whose root seed is derived from ``name``.

        Useful for per-trial isolation: ``streams.spawn(f"trial-{i}")``.
        """
        return RngStreams(derive_seed(self.seed, name))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self.seed}, streams={sorted(self._streams)})"
