"""Generator-based cooperative processes on top of the event kernel.

A :class:`Process` wraps a Python generator.  The generator ``yield``\\ s
:class:`~repro.sim.engine.Event` objects (typically timeouts); the process
resumes when the yielded event fires, receiving the event's value via
``send`` (or the event's exception via ``throw`` if the event failed).

Processes are themselves events: they trigger with the generator's return
value when it finishes, so processes can wait on each other.

This mirrors the SimPy programming model closely enough that anyone who
has used SimPy can read the churn/probing/workload processes in this
repository without a manual.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Event, SimulationError, Simulator

__all__ = ["Process", "Interrupt"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value given to ``interrupt``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator, resumed by the event loop.

    Parameters
    ----------
    sim:
        The simulator to run under.
    generator:
        A generator yielding :class:`Event` instances.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__} "
                "(did you call the function instead of passing its generator?)"
            )
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick the process off via an immediate event so construction is
        # side-effect free with respect to simulated state.
        start = sim.event()
        start.succeed(None)
        start.add_callback(self._resume)
        self._waiting_on = start

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting on an event detaches it from that event
        (the event may still fire, but this process will not be resumed by
        it twice).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        ev = self.sim.event()
        ev.fail(Interrupt(cause))
        # Mark the pending wait as stale: _resume checks identity.
        self._waiting_on = ev
        ev.add_callback(self._resume)

    # -- internals ---------------------------------------------------------
    def _resume(self, ev: Event) -> None:
        if ev is not self._waiting_on:
            # A stale wakeup: the process was interrupted (or already
            # resumed) while this event was in flight.
            return
        self._waiting_on = None
        try:
            if ev.ok:
                target = self._generator.send(ev.value)
            else:
                target = self._generator.throw(ev.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An un-caught interrupt terminates the process "successfully
            # with cause" -- matches how our churn model stops sessions.
            self.succeed(exc.cause)
            return
        except Exception as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(
                TypeError(f"process {self.name!r} yielded {target!r}, not an Event")
            )
            return
        if target.sim is not self.sim:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another simulator"
            )
        self._waiting_on = target
        target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"


def process(sim: Simulator, generator: Generator[Event, Any, Any], name: str = None) -> Process:
    """Convenience wrapper: ``process(sim, gen())`` == ``Process(sim, gen())``."""
    return Process(sim, generator, name=name)
