"""A minimal HTTP/1.1 layer on ``asyncio.start_server`` -- no dependencies.

The serving plane deliberately does not pull in aiohttp/FastAPI: the API
surface is six JSON endpoints, and a hand-rolled request/response pair
keeps the repo's zero-new-dependency rule intact while remaining small
enough to test exhaustively.  The layer knows nothing about the grid --
it parses requests, enforces size limits, handles keep-alive, and hands
a :class:`HttpRequest` to an async handler that returns a
:class:`HttpResponse`.  Routing and grid logic live one layer up
(:mod:`repro.serve.routers`).

Deliberate limitations (documented in docs/serving.md): no TLS, no
chunked transfer encoding, no multipart -- JSON bodies with a
``Content-Length`` only.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "REASON_PHRASES",
]

#: Header-block and body ceilings; beyond them the request is refused.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 1024 * 1024

REASON_PHRASES: Dict[int, str] = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
}


class HttpError(Exception):
    """A malformed/oversized request the parser refuses."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes
    #: Request-scoped trace id: the client's ``x-repro-trace`` header, or
    #: one minted by the server (``req-%08d``, a deterministic per-server
    #: counter so scripted traces replay byte-identically).  Carried into
    #: the ``serve.request`` span, correlating the whole span tree.
    trace_id: str = ""

    def json(self) -> Any:
        """Decode the body as JSON (raises :class:`HttpError` 400)."""
        if not self.body:
            raise HttpError(400, "request body required")
        try:
            return json.loads(self.body)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None


@dataclass
class HttpResponse:
    """One response: status plus a JSON payload *or* a plain-text body.

    ``payload`` renders as canonical JSON (the default content type);
    ``text`` takes precedence and renders verbatim with ``content_type``
    (the Prometheus exposition path).
    """

    status: int = 200
    payload: Any = None
    headers: Dict[str, str] = field(default_factory=dict)
    text: Optional[str] = None
    content_type: Optional[str] = None

    def encode(self) -> bytes:
        if self.text is not None:
            body = self.text.encode("utf-8")
            content_type = self.content_type or "text/plain; charset=utf-8"
        else:
            body = b""
            if self.payload is not None:
                body = (json.dumps(self.payload, sort_keys=True) + "\n").encode()
            content_type = self.content_type or "application/json"
        reason = REASON_PHRASES.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = {
            "content-type": content_type,
            "content-length": str(len(body)),
            **self.headers,
        }
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


#: The application layer: one async callable per parsed request.
Handler = Callable[[HttpRequest], Awaitable[HttpResponse]]


async def _read_request(reader: asyncio.StreamReader) -> Optional[HttpRequest]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` on malformed input (the caller answers
    with the error status and closes the connection).
    """
    try:
        request_line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not request_line.strip():
        return None  # clean close (or a bare liveness connect)
    if len(request_line) > MAX_HEADER_BYTES:
        raise HttpError(400, "request line too long")
    try:
        text = request_line.decode("latin-1").strip()
        method, target, version = text.split(" ", 2)
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")

    headers: Dict[str, str] = {}
    total = 0
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(400, "header block too large")
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            raise HttpError(400, "truncated header block")
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise HttpError(400, "undecodable header") from None
        if not _:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, "malformed content-length") from None
        if length < 0:
            raise HttpError(400, "negative content-length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body") from None
    elif headers.get("transfer-encoding"):
        raise HttpError(501, "chunked transfer encoding not supported")

    split = urlsplit(target)
    return HttpRequest(
        method=method.upper(),
        path=split.path or "/",
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


class HttpServer:
    """Accept loop + per-connection request/response cycle."""

    def __init__(self, handler: Handler, host: str, port: int) -> None:
        self.handler = handler
        self.host = host
        self.port = port
        self._server: Optional[asyncio.base_events.Server] = None
        #: Live per-connection tasks (keep-alive loops), cancelled on stop.
        self._connections: "set[asyncio.Task]" = set()
        #: Monotone trace-id counter (``req-%08d``); deterministic, so a
        #: scripted request trace replays with identical trace ids.
        self._next_trace = 0

    @property
    def address(self) -> Tuple[str, int]:
        """Actually bound ``(host, port)`` (resolves ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections sit in readline() forever; cancel
        # them so shutdown leaves no pending tasks behind.
        pending = [t for t in self._connections if not t.done()]
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._connections.clear()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except HttpError as exc:
                    writer.write(HttpResponse(
                        exc.status, {"error": exc.message}
                    ).encode())
                    await writer.drain()
                    break
                if request is None:
                    break
                request.trace_id = request.headers.get("x-repro-trace", "")
                if not request.trace_id:
                    request.trace_id = f"req-{self._next_trace:08d}"
                    self._next_trace += 1
                response = await self.handler(request)
                response.headers.setdefault("x-repro-trace", request.trace_id)
                keep_alive = request.headers.get(
                    "connection", "keep-alive"
                ).lower() != "close"
                if not keep_alive:
                    response.headers.setdefault("connection", "close")
                writer.write(response.encode())
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away (or the server is stopping)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass
            finally:
                # Deregister last: until here the task still awaits the
                # transport teardown, and stop() must be able to reap it.
                if task is not None:
                    self._connections.discard(task)
