"""The serving plane's observability wiring: windows, SLOs and traces.

:class:`ObservabilityPlane` is the glue between the resident grid's
telemetry handle and the runtime views the API layer serves.  It owns

* a :class:`~repro.telemetry.windows.WindowedMetrics` attached to the
  metrics registry as a tap, so every catalogued counter/histogram gains
  a rolling view on the sim clock;
* the derived serving series (requests, admits, denials, faults, setup
  latency) fed from bus subscriptions and the tracer's wall observer;
* a :class:`~repro.telemetry.slo.SloEngine` evaluating the stock serving
  objectives once per window step, emitting catalogued ``slo.state``
  transition events;
* a bounded trace index: recent ``span`` events keyed so one serve
  request's whole span tree (serve -> aggregation -> composition ->
  probing) is retrievable by its ``trace_id``, plus a small ring of
  recent/worst request traces for ``repro top``.

Determinism contract: the plane only *observes*.  Its tap and bus
subscriptions never mutate instruments or emit events, the wall-clock
latency feed stays inside wall-flagged series (whose SLO transitions the
engine keeps off the bus), and ``slo.state`` emission timing is driven
by the sim clock -- so a scripted sim-mode request trace still exports a
byte-identical JSONL stream (``tests/serve/test_determinism.py``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.telemetry.bus import BusEvent
from repro.telemetry.facade import Telemetry
from repro.telemetry.slo import SloEngine, default_serving_objectives
from repro.telemetry.spans import Span, render_span_tree
from repro.telemetry.windows import WindowConfig, WindowedMetrics

__all__ = ["ObservabilityConfig", "ObservabilityPlane"]


@dataclass(frozen=True)
class ObservabilityConfig:
    """Knobs for the serving plane's observability layer."""

    #: Sliding-window width/step, in the runtime's clock unit (sim
    #: minutes for the default sim-mode server).
    window_width: float = 5.0
    window_step: float = 0.25
    #: Per-bucket percentile sample bound.
    sample_cap: int = 512
    #: Retain at most this many recent ``span`` events for trace queries.
    trace_buffer: int = 50_000
    #: Retain at most this many recent request traces for ``repro top``.
    recent_traces: int = 256
    #: SLO target overrides by objective name (None = stock targets).
    slo_targets: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.trace_buffer < 1 or self.recent_traces < 1:
            raise ValueError("trace buffers must be positive")


class ObservabilityPlane:
    """Windows + SLO engine + trace index over one telemetry handle."""

    def __init__(
        self,
        telemetry: Telemetry,
        clock: Callable[[], float],
        config: Optional[ObservabilityConfig] = None,
    ) -> None:
        if not telemetry.enabled:
            raise ValueError(
                "the observability plane needs full telemetry "
                "(GridConfig.telemetry=True) on the resident grid"
            )
        self.telemetry = telemetry
        self.clock = clock
        self.config = config or ObservabilityConfig()

        self.windows = WindowedMetrics(
            clock,
            WindowConfig(
                width=self.config.window_width,
                step=self.config.window_step,
                sample_cap=self.config.sample_cap,
            ),
        )
        # Derived serving series.  The sim-clock tallies come from bus
        # subscriptions below; setup latency is the one wall-clock feed
        # (span close observer) and is flagged so exposition labels it
        # and the SLO engine keeps its transitions off the bus.
        self.windows.track("serve.window.requests", kind="counter")
        self.windows.track("serve.window.admits", kind="counter")
        self.windows.track("serve.window.denials", kind="counter")
        self.windows.track("serve.window.faults", kind="counter")
        self.windows.track(
            "serve.window.setup_latency_us", kind="histogram", wall=True
        )

        self.engine = SloEngine(
            self.windows,
            default_serving_objectives(self.config.slo_targets),
            bus=telemetry.bus,
        )

        #: Recent ``span`` events, oldest evicted first (trace queries).
        self._span_events: Deque[BusEvent] = deque(
            maxlen=self.config.trace_buffer
        )
        #: Recent serve.request closes: trace_id, op and wall latency.
        self._recent: Deque[Dict[str, Any]] = deque(
            maxlen=self.config.recent_traces
        )

        # Histogram observations mirror into the windows per update (the
        # observations themselves are irrecoverable); counters -- the
        # hottest instrument path -- stay tap-free and are delta-sampled
        # once per window step (see ``on_tick``), Prometheus-style.
        telemetry.metrics.attach_tap(self.windows.record, kinds=("histogram",))
        self._last_sample_bucket = -1
        self._unsubscribes = [
            telemetry.bus.subscribe("request.setup", self._on_setup),
            telemetry.bus.subscribe("fault.injected", self._on_fault),
            telemetry.bus.subscribe("span", self._on_span),
        ]
        self._unsubscribes.append(
            telemetry.tracer.add_wall_observer(self._on_span_close)
        )

    def close(self) -> None:
        """Detach every hook (tests; a server keeps the plane for life)."""
        self.telemetry.metrics.attach_tap(None)
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes.clear()

    # -- feeds ---------------------------------------------------------------
    def _on_setup(self, event: BusEvent) -> None:
        now = event.time
        self.windows.observe("serve.window.requests", 1.0, now=now)
        if event.fields.get("admitted"):
            self.windows.observe("serve.window.admits", 1.0, now=now)
        else:
            self.windows.observe("serve.window.denials", 1.0, now=now)

    def _on_fault(self, event: BusEvent) -> None:
        self.windows.observe("serve.window.faults", 1.0, now=event.time)

    def _on_span(self, event: BusEvent) -> None:
        self._span_events.append(event)

    def _on_span_close(
        self, span: Span, wall_start: float, wall_end: float
    ) -> None:
        if span.name != "serve.request":
            return
        wall_us = (wall_end - wall_start) * 1e6
        self.windows.observe("serve.window.setup_latency_us", wall_us)
        self._recent.append({
            "trace_id": span.fields.get("trace_id"),
            "op": span.fields.get("op"),
            "sim_start": span.sim_start,
            "wall_us": wall_us,
        })

    def _flush_counters(self, now: float) -> None:
        """Fold counter growth since the last sample into the windows."""
        self.windows.sample_counters(
            self.telemetry.metrics.counters(), now=now
        )

    # -- evaluation ----------------------------------------------------------
    def on_tick(self) -> None:
        """Give the SLO engine a chance to re-evaluate (once per step).

        Also the counter-sampling cadence: the first tick inside a new
        window bucket folds the registry's counter growth into the
        windows, so the steady-state request path pays one integer
        compare instead of dozens of tap calls.
        """
        now = self.clock()
        bucket = int(now // self.windows.config.step)
        if bucket != self._last_sample_bucket:
            self._last_sample_bucket = bucket
            self._flush_counters(now)
        self.engine.maybe_evaluate(now)

    # -- views ---------------------------------------------------------------
    def windows_snapshot(self) -> Dict[str, Any]:
        """Windowed series, flushed up to now (the ``/status`` view)."""
        now = self.clock()
        self._flush_counters(now)
        return self.windows.snapshot(now)

    def slo_view(self) -> Dict[str, Any]:
        """The ``GET /slo`` document: objectives plus windowed series."""
        now = self.clock()
        self._flush_counters(now)
        doc = self.engine.as_dict(now)
        doc["series"] = self.windows.snapshot(now)
        return doc

    def recent_traces(self) -> List[Dict[str, Any]]:
        """Most recent first."""
        return list(reversed(self._recent))

    def worst_traces(self, limit: int = 10) -> List[Dict[str, Any]]:
        """Recent serve.request closes, slowest (wall) first."""
        ranked = sorted(
            self._recent, key=lambda t: t["wall_us"], reverse=True
        )
        return ranked[:limit]

    def trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """One request's span tree by ``trace_id`` (None if unknown).

        The tree is every retained span whose parent chain reaches the
        ``serve.request`` root carrying the id -- detached session spans
        opened during the request belong to it too.
        """
        events = list(self._span_events)
        root: Optional[BusEvent] = None
        for event in reversed(events):
            fields = event.fields
            if (
                fields.get("name") == "serve.request"
                and fields.get("trace_id") == trace_id
            ):
                root = event
                break
        if root is None:
            return None
        root_id = root.fields["id"]
        by_id = {e.fields["id"]: e for e in events}

        def in_trace(event: BusEvent) -> bool:
            seen = set()
            cursor: Optional[BusEvent] = event
            while cursor is not None:
                span_id = cursor.fields["id"]
                if span_id == root_id:
                    return True
                if span_id in seen:
                    return False
                seen.add(span_id)
                parent = cursor.fields.get("parent")
                cursor = by_id.get(parent) if parent is not None else None
            return False

        members = [e for e in events if in_trace(e)]
        return {
            "trace_id": trace_id,
            "n_spans": len(members),
            "spans": [
                {"end": e.time, **e.fields} for e in members
            ],
            "tree": render_span_tree(members),
        }
