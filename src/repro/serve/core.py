"""The serving-plane core: a resident grid behind a single-writer loop.

This module is the state layer of the DIRAC-style stack
(core / logic / routers / client / cli):

* :class:`ServeConfig` -- everything ``repro serve`` can be told:
  scenario, seed, address, clock mode, fault plan, telemetry export.
* :class:`GridRuntime` -- owns one long-lived :class:`~repro.grid.P2PGrid`
  plus its aggregator, and exposes the *only* operations the API layer
  may perform: ``compose``, ``release``, ``sessions`` and read-only
  status/metrics snapshots.  Every mutating call first advances the
  grid's clock through the configured :class:`ClockPolicy`.
* :class:`ServeServer` -- binds the runtime to the HTTP layer.  All
  requests are handled under one ``asyncio.Lock`` (single-writer event
  loop), so the grid never sees concurrent mutation and a scripted
  request trace replays deterministically.

Clock modes
-----------
``sim``
    Simulated time advances only when a request arrives: each API call
    runs the event heap ``tick_minutes`` forward before it is handled.
    Byte-identical seeded telemetry is preserved -- two runs that see
    the same request trace produce the same JSONL stream (enforced by
    ``tests/serve/test_determinism.py``).
``wall``
    Simulated time tracks the wall clock at ``wall_minutes_per_second``
    sim-minutes per real second -- sessions expire while you watch.
    Inherently non-deterministic; for demos and soak runs.
"""

from __future__ import annotations

import asyncio
import gc
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Protocol, Tuple

from repro.capabilities import SERVE_API_VERSION, build_descriptor
from repro.core.aggregation import AggregationResult
from repro.grid import GridConfig, P2PGrid
from repro.sessions.session import Session
from repro.sim.engine import Simulator

__all__ = [
    "ClockPolicy",
    "GridRuntime",
    "ServeConfig",
    "ServeServer",
    "ServerHandle",
    "SimTickClock",
    "WallClock",
    "start_server_thread",
    "tune_gc_for_serving",
]

#: Resident-server GC thresholds.  A compose request allocates a few
#: thousand short-lived objects, so CPython's default gen0 threshold
#: (700) fires several allocation-triggered collections *per request*
#: -- and those collections, not the plane's own compute, dominate the
#: marginal cost of anything that allocates on the request path (the
#: observability plane's window buckets, span records and trace index
#: included; see the ``serving-slo`` perf scenario).  A resident server
#: trades rarer, slightly longer collections for a request path that
#: almost never pays one.
_SERVING_GC_THRESHOLDS = (50_000, 20, 20)


def tune_gc_for_serving() -> None:
    """Raise the allocation-triggered GC thresholds for a resident server.

    Called by both server boot paths (``repro serve`` and
    :func:`start_server_thread`).  Process-global and deliberately not
    undone on shutdown: thresholds only defer collections, they never
    change observable behaviour, and a process that hosted a server once
    keeps hosting its runtime state anyway.
    """
    gc.set_threshold(*_SERVING_GC_THRESHOLDS)


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of one ``repro serve`` instance."""

    #: Named perf-harness scenario whose grid shape to load (ignored
    #: when :attr:`grid` is given explicitly).
    scenario: str = "baseline"
    #: Root seed (overrides the scenario's).
    seed: int = 0
    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port (tests, benches).
    port: int = 8177
    #: Aggregation algorithm serving ``POST /compose``.
    algorithm: str = "qsa"
    #: ``"sim"`` or ``"wall"`` (see the module docstring).
    mode: str = "sim"
    #: Sim-minutes the event heap advances per API request (sim mode).
    tick_minutes: float = 0.05
    #: Sim-minutes per wall-clock second (wall mode).
    wall_minutes_per_second: float = 1.0
    #: Export the telemetry stream here (JSONL) at shutdown; also forces
    #: full telemetry recording on the grid.
    telemetry_path: Optional[str] = None
    #: JSON fault plan applied to the resident grid.
    faults_path: Optional[str] = None
    #: Explicit grid configuration (tests/benches); bypasses scenario.
    grid: Optional[GridConfig] = None
    #: Retain the outcomes of at most this many resolved sessions for
    #: ``GET /sessions/{id}`` after teardown.
    outcome_history: int = 10_000
    #: Run the observability plane (windowed metrics, SLO engine,
    #: Prometheus exposition, trace index).  Forces full telemetry on the
    #: resident grid; when the grid config did not already ask for
    #: telemetry the bus is bounded to :attr:`telemetry_capacity` events
    #: so a resident server cannot grow without bound.
    observability: bool = True
    #: Bus retention cap applied when observability forces telemetry on.
    telemetry_capacity: int = 100_000
    #: Sliding-window width/step for the observability plane, in sim
    #: minutes (the serving clock's unit in both modes).
    window_width: float = 5.0
    window_step: float = 0.25

    def __post_init__(self) -> None:
        if self.mode not in ("sim", "wall"):
            raise ValueError(f"unknown clock mode {self.mode!r} (sim/wall)")
        if self.tick_minutes < 0:
            raise ValueError("tick_minutes must be >= 0")
        if self.wall_minutes_per_second <= 0:
            raise ValueError("wall_minutes_per_second must be positive")
        if self.outcome_history < 1:
            raise ValueError("outcome_history must be positive")
        if self.telemetry_capacity < 1:
            raise ValueError("telemetry_capacity must be positive")
        if self.window_width <= 0 or self.window_step <= 0:
            raise ValueError("window width/step must be positive")


class ClockPolicy(Protocol):
    """How the resident grid's simulated clock advances between requests."""

    def advance(self, sim: Simulator) -> None:
        """Advance ``sim`` according to the policy (may be a no-op)."""


class SimTickClock:
    """Deterministic serving: a fixed sim-tick per handled request."""

    def __init__(self, tick_minutes: float) -> None:
        self.tick_minutes = tick_minutes

    def advance(self, sim: Simulator) -> None:
        if self.tick_minutes > 0:
            sim.run(until=sim.now + self.tick_minutes)


class WallClock:
    """Wall-coupled serving: sim time tracks real elapsed time."""

    def __init__(self, minutes_per_second: float) -> None:
        self.minutes_per_second = minutes_per_second
        self._wall_start: Optional[float] = None
        self._sim_start = 0.0

    def advance(self, sim: Simulator) -> None:
        import time

        # Wall-clock serving is explicitly non-deterministic; the read
        # never reaches a seeded experiment (sim mode is the default).
        now = time.monotonic()  # lint: disable=DET001 -- wall-clock serving mode
        if self._wall_start is None:
            self._wall_start = now
            self._sim_start = sim.now
            return
        target = self._sim_start + (now - self._wall_start) * self.minutes_per_second
        if target > sim.now:
            sim.run(until=target)


def _rss_kb() -> Optional[int]:
    """This process's resident set size in KiB (None off-Linux).

    Feeds the soak harness's drift check through ``GET /status``; it is
    process state, not simulated state, and never enters the telemetry
    stream.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        return None
    return None


def _build_clock(config: ServeConfig) -> ClockPolicy:
    if config.mode == "wall":
        return WallClock(config.wall_minutes_per_second)
    return SimTickClock(config.tick_minutes)


def _resolve_grid_config(config: ServeConfig) -> GridConfig:
    """The grid shape this server keeps resident."""
    from dataclasses import replace

    if config.grid is not None:
        grid_config = config.grid
    else:
        from repro.perf.harness import SCENARIOS

        scenario = SCENARIOS.get(config.scenario)
        if scenario is None or scenario.make is None:
            raise ValueError(
                f"unknown serve scenario {config.scenario!r}; "
                f"available: {', '.join(sorted(n for n, s in SCENARIOS.items() if s.make is not None))}"
            )
        grid_config = scenario.make(config.seed).grid
    if config.seed != grid_config.seed:
        grid_config = replace(grid_config, seed=config.seed)
    if config.telemetry_path is not None and not grid_config.telemetry:
        grid_config = replace(grid_config, telemetry=True)
    if config.observability and not grid_config.telemetry:
        # The observability plane needs the full telemetry handle; bound
        # the bus so a resident server's retained stream cannot grow
        # without limit (an explicit telemetry=True grid keeps whatever
        # capacity it asked for).
        grid_config = replace(
            grid_config,
            telemetry=True,
            telemetry_capacity=config.telemetry_capacity,
        )
    if config.faults_path is not None:
        from repro.faults.plan import FaultPlan

        grid_config = replace(grid_config, faults=FaultPlan.load(config.faults_path))
    return grid_config


class GridRuntime:
    """A resident grid plus the operations the API layer may perform.

    The runtime is *not* thread-safe by itself; :class:`ServeServer`
    guarantees single-writer access by serializing every request under
    one asyncio lock.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.grid = P2PGrid(_resolve_grid_config(config))
        self.aggregator = self.grid.make_aggregator(config.algorithm)
        self.clock: ClockPolicy = _build_clock(config)
        self.bus = self.grid.telemetry.bus
        self.started_sim_time = self.grid.sim.now
        #: Windows + SLO engine + trace index (None with observability
        #: off, or when an explicit grid config disabled telemetry).
        self.observability: Optional[Any] = None
        if config.observability and self.grid.telemetry.enabled:
            from repro.serve.observability import (
                ObservabilityConfig,
                ObservabilityPlane,
            )

            self.observability = ObservabilityPlane(
                self.grid.telemetry,
                # Bind the simulator once: the plane's clock runs on the
                # tap hot path (dozens of reads per request).
                clock=lambda sim=self.grid.sim: sim.now,
                config=ObservabilityConfig(
                    window_width=config.window_width,
                    window_step=config.window_step,
                ),
            )
        #: Per-API-plane tallies (ψ's serving-side view).
        self.n_http_requests = 0
        self.n_compose = 0
        self.n_admitted = 0
        self.n_rejected = 0
        self.n_released = 0
        self.total_lookup_hops = 0
        #: ``session_id -> final outcome`` for resolved sessions, bounded
        #: to ``config.outcome_history`` entries (oldest evicted first).
        self._outcomes: Dict[int, Dict[str, Any]] = {}
        #: Setup metadata kept per admitted session so ``GET`` views can
        #: report what was composed (evicted with the outcome history).
        self._session_meta: Dict[int, Dict[str, Any]] = {}
        self.grid.on_session_outcome(self._note_outcome)

    # -- lifecycle bookkeeping ---------------------------------------------
    def _note_outcome(self, session: Session) -> None:
        self._outcomes[session.session_id] = {
            "state": session.state.value,
            "reason": session.failure_reason,
            "resolved_at": self.grid.sim.now,
        }
        while len(self._outcomes) > self.config.outcome_history:
            oldest = next(iter(self._outcomes))
            del self._outcomes[oldest]
            self._session_meta.pop(oldest, None)

    def note_http(self, method: str, route: str, status: int) -> None:
        """Account one answered API request (any route, any outcome)."""
        self.n_http_requests += 1
        self.bus.emit("serve.request", method=method, route=route, status=status)
        if self.grid.telemetry.enabled:
            self.grid.telemetry.metrics.counter("serve.requests").inc()
        if self.observability is not None:
            # SLO evaluation rides the request path (sim clock), so its
            # timing -- and any slo.state transitions -- stay a pure
            # function of the request trace.
            self.observability.on_tick()

    # -- mutating operations ------------------------------------------------
    def compose(
        self,
        application: str,
        qos_level: str,
        duration: float,
        peer_id: Optional[int],
        out_format: Optional[str],
        trace_id: str = "",
    ) -> AggregationResult:
        """Advance the clock, then run one aggregation request.

        ``trace_id`` (minted by the HTTP layer) roots the request's span
        tree: the ``serve.request`` span opened here parents the
        aggregator's ``request`` span and everything below it, so one
        serve request reads back as one correlated trace.
        """
        self.clock.advance(self.grid.sim)
        with self.grid.telemetry.tracer.span(
            "serve.request", trace_id=trace_id, op="compose"
        ):
            request = self.grid.make_request(
                application=application,
                qos_level=qos_level,
                duration=duration,
                peer_id=peer_id,
                out_format=out_format,
            )
            result = self.aggregator.aggregate(request)
        self.n_compose += 1
        self.total_lookup_hops += result.lookup_hops
        if result.admitted and result.session is not None:
            self.n_admitted += 1
            self._session_meta[result.session.session_id] = {
                "application": application,
                "qos_level": qos_level,
                "lookup_hops": result.lookup_hops,
                "score": result.composed.score if result.composed else None,
            }
        else:
            self.n_rejected += 1
        return result

    def release(self, session_id: int, trace_id: str = "") -> Optional[Session]:
        """Advance the clock, then tear one active session down."""
        self.clock.advance(self.grid.sim)
        with self.grid.telemetry.tracer.span(
            "serve.request", trace_id=trace_id, op="release"
        ):
            session = self.grid.ledger.release_session(session_id)
        if session is not None:
            self.n_released += 1
        return session

    def tick(self) -> None:
        """Advance the clock without mutating anything else (GET paths)."""
        self.clock.advance(self.grid.sim)

    # -- read-only views ------------------------------------------------------
    def active_sessions(self) -> List[Session]:
        return sorted(
            self.grid.ledger.active_sessions(), key=lambda s: s.session_id
        )

    def find_session(
        self, session_id: int
    ) -> Tuple[str, Optional[Session], Optional[Dict[str, Any]]]:
        """``("active", session, meta)``, ``("resolved", None, outcome)``
        or ``("unknown", None, None)``."""
        for session in self.grid.ledger.active_sessions():
            if session.session_id == session_id:
                return "active", session, self._session_meta.get(session_id)
        outcome = self._outcomes.get(session_id)
        if outcome is not None:
            merged = dict(outcome)
            merged.update(self._session_meta.get(session_id, {}))
            return "resolved", None, merged
        return "unknown", None, None

    def session_meta(self, session_id: int) -> Dict[str, Any]:
        return self._session_meta.get(session_id, {})

    def status(self) -> Dict[str, Any]:
        grid = self.grid
        ledger = grid.ledger
        churn = grid.churn
        stats = getattr(self.aggregator, "edge_cache_stats", None)
        return {
            "service": build_descriptor(),
            "api": SERVE_API_VERSION,
            "scenario": self.config.scenario if self.config.grid is None else None,
            "algorithm": self.config.algorithm,
            "seed": grid.config.seed,
            "mode": self.config.mode,
            "tick_minutes": self.config.tick_minutes,
            "sim_time": grid.sim.now,
            "started_sim_time": self.started_sim_time,
            "grid": {
                "n_peers": grid.directory.n_alive,
                "n_instances": grid.catalog.n_instances,
                "generation": getattr(grid.ring, "generation", 0),
                "peer_state_backend": grid.config.peer_state_backend,
                "peer_store_bytes": (
                    store.memory_bytes()
                    if (store := getattr(grid.directory, "store", None))
                    is not None
                    else None
                ),
                "peer_rows_recycled": (
                    store.rows_recycled if store is not None else 0
                ),
                "churn_arrivals": churn.n_arrivals if churn is not None else 0,
                "churn_departures": churn.n_departures if churn is not None else 0,
            },
            "sessions": {
                "active": ledger.n_active,
                "admitted": ledger.n_admitted,
                "completed": ledger.n_completed,
                "failed": ledger.n_failed,
                "released": ledger.n_released,
            },
            "requests": {
                "http": self.n_http_requests,
                "compose": self.n_compose,
                "admitted": self.n_admitted,
                "rejected": self.n_rejected,
                "released": self.n_released,
                "mean_lookup_hops": (
                    self.total_lookup_hops / self.n_compose
                    if self.n_compose
                    else 0.0
                ),
            },
            "caches": {
                "fast_paths": grid.config.fast_paths,
                "discovery_routed": grid.registry.n_routed_discoveries,
                "discovery_cached": grid.registry.n_cached_discoveries,
                "qcs_edge_hits": stats.hits if stats is not None else 0,
                "qcs_edge_misses": stats.misses if stats is not None else 0,
            },
            "process": {"rss_kb": _rss_kb()},
            "slo_state": (
                self.observability.engine.worst_state()
                if self.observability is not None
                else None
            ),
        }

    def metrics(self) -> Dict[str, Any]:
        telemetry = self.grid.telemetry
        view = {
            "enabled": telemetry.enabled,
            "events_emitted": telemetry.bus.n_emitted,
            "events_retained": len(telemetry.bus),
            "event_counts": dict(telemetry.bus.counts()),
            # Histogram percentiles here are cumulative: they cover the
            # reservoir (first 10k observations) only -- see the
            # "windows" section for the rolling view.
            "metrics": telemetry.metrics.snapshot(),
        }
        if self.observability is not None:
            view["windows"] = self.observability.windows_snapshot()
        return view

    def prometheus(self) -> str:
        """The ``GET /metrics?format=prometheus`` body."""
        from repro.telemetry.exposition import render_prometheus

        plane = self.observability
        return render_prometheus(
            self.grid.telemetry.metrics,
            windows=plane.windows_snapshot() if plane is not None else None,
            slo=plane.engine.as_dict(self.grid.sim.now) if plane is not None else None,
        )

    def slo_view(self) -> Optional[Dict[str, Any]]:
        """The ``GET /slo`` document (None with observability off)."""
        if self.observability is None:
            return None
        return self.observability.slo_view()

    def traces_view(self, limit: int = 10) -> Optional[Dict[str, Any]]:
        """Recent and worst request traces (None with observability off)."""
        if self.observability is None:
            return None
        return {
            "recent": self.observability.recent_traces()[:limit],
            "worst": self.observability.worst_traces(limit),
        }

    def trace(self, trace_id: str) -> Optional[Dict[str, Any]]:
        """One request's span tree (None if unknown or plane off)."""
        if self.observability is None:
            return None
        return self.observability.trace(trace_id)

    def export_telemetry(self) -> int:
        """Write the retained stream to the configured path (0 if none)."""
        if self.config.telemetry_path is None:
            return 0
        return self.grid.telemetry.export_jsonl(self.config.telemetry_path)


class ServeServer:
    """The HTTP face of one :class:`GridRuntime` (single-writer)."""

    def __init__(self, runtime: GridRuntime, host: str, port: int) -> None:
        from repro.serve.http import HttpServer

        self.runtime = runtime
        self._writer = asyncio.Lock()
        #: Set by :meth:`start` (typed loosely: importing Router here
        #: would be circular -- routers binds to this module's runtime).
        self._router: Optional[Any] = None
        self._http = HttpServer(self._handle, host, port)

    @property
    def address(self) -> Tuple[str, int]:
        return self._http.address

    async def start(self) -> None:
        from repro.serve.routers import build_router

        self._router = build_router(self.runtime)
        await self._http.start()

    async def stop(self) -> None:
        await self._http.stop()

    async def _handle(self, request: Any) -> Any:
        # The single-writer discipline: one request mutates/reads the
        # grid at a time, in arrival order.  Determinism in sim mode
        # follows -- the telemetry stream is a pure function of the
        # request trace.
        router = self._router
        assert router is not None, "server not started"
        async with self._writer:
            response, route = await router.dispatch(request)
            self.runtime.note_http(request.method, route, response.status)
            return response


class ServerHandle:
    """An in-process server running on a background thread.

    Used by the endpoint tests and the ``serving`` perf scenario: the
    asyncio loop lives on its own daemon thread, clients talk real TCP
    from the calling thread, and :meth:`stop` shuts everything down and
    exports telemetry.
    """

    def __init__(
        self,
        runtime: GridRuntime,
        server: ServeServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.runtime = runtime
        self.server = server
        self._loop = loop
        self._thread = thread
        self.host, self.port = server.address

    def stop(self) -> int:
        """Stop the loop, join the thread, export telemetry (line count)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
        return self.runtime.export_telemetry()


def start_server_thread(config: ServeConfig) -> ServerHandle:
    """Boot a server on a daemon thread; returns once it accepts TCP."""
    tune_gc_for_serving()
    runtime = GridRuntime(config)
    server = ServeServer(runtime, config.host, config.port)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    failure: List[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # pragma: no cover - startup failure
            failure.append(exc)
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
            loop.run_until_complete(server.stop())
        finally:
            loop.close()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=60):  # pragma: no cover - hung startup
        raise RuntimeError("serve thread did not start within 60s")
    if failure:
        raise RuntimeError(f"serve thread failed to start: {failure[0]!r}")
    return ServerHandle(runtime, server, loop, thread)
