"""The online serving plane: the grid as a long-lived composition service.

Layered DIRAC-style, one concern per module:

==============  =======================================================
module          concern
==============  =======================================================
``http``        dependency-free asyncio HTTP/1.1 transport
``logic``       request validation + JSON views (pure functions)
``routers``     URL surface -> runtime operations
``core``        :class:`ServeConfig`, the resident-grid runtime, the
                single-writer server, background-thread harness
``client``      stdlib HTTP client (tests, loadgen, scripting)
``loadgen``     open/closed-loop §4.1 workload over HTTP
``cli``         ``repro serve`` / ``repro loadgen`` entry points
==============  =======================================================

See docs/serving.md for the endpoint contract and the sim-time
determinism guarantees.
"""

from repro.serve.core import (
    GridRuntime,
    ServeConfig,
    ServeServer,
    ServerHandle,
    start_server_thread,
    tune_gc_for_serving,
)

__all__ = [
    "GridRuntime",
    "ServeConfig",
    "ServeServer",
    "ServerHandle",
    "start_server_thread",
    "tune_gc_for_serving",
]
