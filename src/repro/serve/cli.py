"""CLI entry points for the serving plane: ``repro serve`` / ``repro loadgen``.

Kept out of :mod:`repro.cli` so the top-level module stays a thin
dispatcher; the main parser calls :func:`add_serve_arguments` /
:func:`add_loadgen_arguments` to register the flags and dispatches to
:func:`cmd_serve` / :func:`cmd_loadgen`.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.serve.core import GridRuntime, ServeConfig, ServeServer

__all__ = [
    "add_loadgen_arguments",
    "add_serve_arguments",
    "cmd_loadgen",
    "cmd_serve",
]


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="baseline",
                        help="perf-harness scenario shaping the resident "
                             "grid (default: baseline)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8177,
                        help="TCP port (0 = ephemeral; default 8177)")
    parser.add_argument("--algorithm", choices=("qsa", "random", "fixed"),
                        default="qsa")
    parser.add_argument("--wall-clock", action="store_true",
                        help="couple sim time to the wall clock instead of "
                             "the deterministic per-request sim tick")
    parser.add_argument("--tick", type=float, default=0.05, metavar="MIN",
                        help="sim minutes advanced per request in sim-time "
                             "mode (default 0.05)")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="record full telemetry; exported as JSONL at "
                             "shutdown")
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="inject faults from a JSON fault plan")


def add_loadgen_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8177)
    parser.add_argument("-n", "--requests", type=int, default=200,
                        dest="n_requests",
                        help="compose requests to send (default 200)")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="workers / max in-flight (default 4)")
    parser.add_argument("--mode", choices=("closed", "open"),
                        default="closed",
                        help="closed loop (sustained capacity) or open "
                             "loop (fixed offered load)")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="open-loop offered load, req/s (default 50)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--release-ratio", type=float, default=0.25,
                        help="fraction of admitted sessions torn down "
                             "immediately (default 0.25)")


def _build_serve_config(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        scenario=args.scenario,
        seed=args.seed,
        host=args.host,
        port=args.port,
        algorithm=args.algorithm,
        mode="wall" if args.wall_clock else "sim",
        tick_minutes=args.tick,
        telemetry_path=args.telemetry,
        faults_path=args.faults,
    )


async def _serve_until_signal(config: ServeConfig) -> GridRuntime:
    runtime = GridRuntime(config)
    server = ServeServer(runtime, config.host, config.port)
    await server.start()
    host, port = server.address
    grid = runtime.grid
    print(f"repro serve: scenario={config.scenario!r} seed={config.seed} "
          f"algorithm={config.algorithm} mode={config.mode}")
    print(f"  grid: {grid.directory.n_alive} peers, "
          f"{grid.catalog.n_instances} service instances")
    print(f"  listening on http://{host}:{port}  (Ctrl-C to stop)")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loop
            signal.signal(sig, lambda *_: stop.set())
    await stop.wait()
    print("\nshutting down ...")
    await server.stop()
    return runtime


def cmd_serve(args: argparse.Namespace) -> int:
    try:
        config = _build_serve_config(args)
        runtime = asyncio.run(_serve_until_signal(config))
    except (ValueError, OSError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 1
    print(f"served {runtime.n_http_requests} requests "
          f"({runtime.n_compose} compose, {runtime.n_admitted} admitted, "
          f"{runtime.n_rejected} rejected, {runtime.n_released} released)")
    ledger = runtime.grid.ledger
    print(f"sessions: {ledger.n_admitted} admitted, "
          f"{ledger.n_completed} completed, {ledger.n_failed} failed, "
          f"{ledger.n_active} still active")
    if config.telemetry_path is not None:
        n = runtime.export_telemetry()
        print(f"telemetry: {n} events -> {config.telemetry_path}")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import LoadgenConfig, run_loadgen

    try:
        config = LoadgenConfig(
            host=args.host,
            port=args.port,
            n_requests=args.n_requests,
            concurrency=args.concurrency,
            mode=args.mode,
            rate_per_sec=args.rate,
            seed=args.seed,
            release_ratio=args.release_ratio,
        )
        report = run_loadgen(config)
    except ValueError as exc:
        print(f"repro loadgen: {exc}", file=sys.stderr)
        return 1
    except (TimeoutError, OSError) as exc:
        print(f"repro loadgen: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    lat = report.latency_summary_us()
    print(f"loadgen: {report.sent} sent in {report.wall_seconds:.2f}s "
          f"({report.requests_per_sec:.1f} req/s, mode={config.mode})")
    print(f"  outcomes: {report.admitted} admitted (ψ={report.psi:.3f}), "
          f"{report.rejected} rejected, {report.released} released, "
          f"{report.errors} errors")
    print(f"  compose RTT: p50={lat['p50']:.0f}µs p95={lat['p95']:.0f}µs "
          f"p99={lat['p99']:.0f}µs max={lat['max']:.0f}µs")
    return 1 if report.errors else 0
