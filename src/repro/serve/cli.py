"""CLI entry points for the serving plane: ``repro serve`` / ``repro loadgen``.

Kept out of :mod:`repro.cli` so the top-level module stays a thin
dispatcher; the main parser calls :func:`add_serve_arguments` /
:func:`add_loadgen_arguments` to register the flags and dispatches to
:func:`cmd_serve` / :func:`cmd_loadgen`.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.serve.core import (
    GridRuntime,
    ServeConfig,
    ServeServer,
    tune_gc_for_serving,
)

__all__ = [
    "add_loadgen_arguments",
    "add_serve_arguments",
    "add_top_arguments",
    "cmd_loadgen",
    "cmd_serve",
    "cmd_top",
]


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scenario", default="baseline",
                        help="perf-harness scenario shaping the resident "
                             "grid (default: baseline)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8177,
                        help="TCP port (0 = ephemeral; default 8177)")
    parser.add_argument("--algorithm", choices=("qsa", "random", "fixed"),
                        default="qsa")
    parser.add_argument("--wall-clock", action="store_true",
                        help="couple sim time to the wall clock instead of "
                             "the deterministic per-request sim tick")
    parser.add_argument("--tick", type=float, default=0.05, metavar="MIN",
                        help="sim minutes advanced per request in sim-time "
                             "mode (default 0.05)")
    parser.add_argument("--telemetry", metavar="PATH", default=None,
                        help="record full telemetry; exported as JSONL at "
                             "shutdown")
    parser.add_argument("--faults", metavar="PLAN.json", default=None,
                        help="inject faults from a JSON fault plan")


def add_loadgen_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8177)
    parser.add_argument("-n", "--requests", type=int, default=200,
                        dest="n_requests",
                        help="compose requests to send (default 200)")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="workers / max in-flight (default 4)")
    parser.add_argument("--mode", choices=("closed", "open"),
                        default="closed",
                        help="closed loop (sustained capacity) or open "
                             "loop (fixed offered load)")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="open-loop offered load, req/s (default 50)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--release-ratio", type=float, default=0.25,
                        help="fraction of admitted sessions torn down "
                             "immediately (default 0.25)")
    parser.add_argument("--soak", action="store_true",
                        help="duration-based soak: sustain the open-loop "
                             "load, sample /status + /slo, and report "
                             "RSS/latency drift over the run")
    parser.add_argument("--duration", type=float, default=30.0,
                        metavar="SEC",
                        help="soak duration in wall seconds (default 30)")
    parser.add_argument("--sample-interval", type=float, default=1.0,
                        metavar="SEC",
                        help="soak sampling cadence (default 1)")
    parser.add_argument("--json-out", metavar="PATH", default=None,
                        help="also write the full report as JSON (soak "
                             "artifact for CI)")


def add_top_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8177)
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh cadence in seconds (default 2)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="render this many frames then exit "
                             "(default: until Ctrl-C)")


def _build_serve_config(args: argparse.Namespace) -> ServeConfig:
    return ServeConfig(
        scenario=args.scenario,
        seed=args.seed,
        host=args.host,
        port=args.port,
        algorithm=args.algorithm,
        mode="wall" if args.wall_clock else "sim",
        tick_minutes=args.tick,
        telemetry_path=args.telemetry,
        faults_path=args.faults,
    )


async def _serve_until_signal(config: ServeConfig) -> GridRuntime:
    tune_gc_for_serving()
    runtime = GridRuntime(config)
    server = ServeServer(runtime, config.host, config.port)
    await server.start()
    host, port = server.address
    grid = runtime.grid
    print(f"repro serve: scenario={config.scenario!r} seed={config.seed} "
          f"algorithm={config.algorithm} mode={config.mode}")
    print(f"  grid: {grid.directory.n_alive} peers, "
          f"{grid.catalog.n_instances} service instances")
    print(f"  listening on http://{host}:{port}  (Ctrl-C to stop)")
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop.set)
        except NotImplementedError:  # pragma: no cover - non-POSIX loop
            signal.signal(sig, lambda *_: stop.set())
    await stop.wait()
    print("\nshutting down ...")
    await server.stop()
    return runtime


def cmd_serve(args: argparse.Namespace) -> int:
    try:
        config = _build_serve_config(args)
        runtime = asyncio.run(_serve_until_signal(config))
    except (ValueError, OSError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 1
    print(f"served {runtime.n_http_requests} requests "
          f"({runtime.n_compose} compose, {runtime.n_admitted} admitted, "
          f"{runtime.n_rejected} rejected, {runtime.n_released} released)")
    ledger = runtime.grid.ledger
    print(f"sessions: {ledger.n_admitted} admitted, "
          f"{ledger.n_completed} completed, {ledger.n_failed} failed, "
          f"{ledger.n_active} still active")
    if config.telemetry_path is not None:
        n = runtime.export_telemetry()
        print(f"telemetry: {n} events -> {config.telemetry_path}")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from repro.serve.top import run_top

    try:
        return run_top(
            args.host, args.port,
            interval=args.interval,
            iterations=args.iterations,
        )
    except (TimeoutError, OSError) as exc:
        print(f"repro top: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1


def _cmd_soak(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import SoakConfig, run_soak

    try:
        config = SoakConfig(
            host=args.host,
            port=args.port,
            duration_seconds=args.duration,
            rate_per_sec=args.rate,
            concurrency=args.concurrency,
            seed=args.seed,
            release_ratio=args.release_ratio,
            sample_interval=args.sample_interval,
        )
        report = run_soak(config)
    except ValueError as exc:
        print(f"repro loadgen: {exc}", file=sys.stderr)
        return 1
    except (TimeoutError, OSError) as exc:
        print(f"repro loadgen: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    lg = report.loadgen
    lat = lg.latency_summary_us()
    print(f"soak: {lg.sent} sent over {lg.wall_seconds:.1f}s "
          f"({lg.requests_per_sec:.1f} req/s offered ~{config.rate_per_sec:g})")
    print(f"  outcomes: {lg.admitted} admitted (ψ={lg.psi:.3f}), "
          f"{lg.rejected} rejected, {lg.released} released, "
          f"{lg.errors} errors")
    print(f"  compose RTT: p50={lat['p50']:.0f}µs p95={lat['p95']:.0f}µs "
          f"p99={lat['p99']:.0f}µs")
    print(f"  slo states seen: {', '.join(report.slo_states) or '(none)'}")
    rss = report.rss_drift()
    latency = report.latency_drift()
    print(f"  drift: rss={rss:.3f}x" if rss is not None
          else "  drift: rss=n/a", end="")
    print(f" latency={latency:.3f}x" if latency is not None
          else " latency=n/a", end="")
    print(f"  (limits {report.RSS_DRIFT_LIMIT:g}x / "
          f"{report.LATENCY_DRIFT_LIMIT:g}x) -> "
          f"{'OK' if report.drift_ok() else 'DRIFTING'}")
    if args.json_out is not None:
        import json

        with open(args.json_out, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  report -> {args.json_out}")
    if lg.errors:
        return 1
    return 0 if report.drift_ok() else 1


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve.loadgen import LoadgenConfig, run_loadgen

    if getattr(args, "soak", False):
        return _cmd_soak(args)
    try:
        config = LoadgenConfig(
            host=args.host,
            port=args.port,
            n_requests=args.n_requests,
            concurrency=args.concurrency,
            mode=args.mode,
            rate_per_sec=args.rate,
            seed=args.seed,
            release_ratio=args.release_ratio,
        )
        report = run_loadgen(config)
    except ValueError as exc:
        print(f"repro loadgen: {exc}", file=sys.stderr)
        return 1
    except (TimeoutError, OSError) as exc:
        print(f"repro loadgen: cannot reach {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    lat = report.latency_summary_us()
    print(f"loadgen: {report.sent} sent in {report.wall_seconds:.2f}s "
          f"({report.requests_per_sec:.1f} req/s, mode={config.mode})")
    print(f"  outcomes: {report.admitted} admitted (ψ={report.psi:.3f}), "
          f"{report.rejected} rejected, {report.released} released, "
          f"{report.errors} errors")
    print(f"  compose RTT: p50={lat['p50']:.0f}µs p95={lat['p95']:.0f}µs "
          f"p99={lat['p99']:.0f}µs max={lat['max']:.0f}µs")
    return 1 if report.errors else 0
