"""Request validation and JSON views for the serving plane.

Pure functions between the transport (:mod:`repro.serve.http`) and the
state layer (:mod:`repro.serve.core`): parse and validate the JSON a
client sent into a typed :class:`ComposeSpec`, and render grid objects
(sessions, aggregation results, status snapshots) into JSON-able dicts.
Nothing here touches sockets and nothing here mutates the grid, which
keeps the contract unit-testable without a server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.aggregation import AggregationResult
from repro.services.applications import QUALITY_LEVELS
from repro.sessions.session import Session

__all__ = [
    "ApiError",
    "ComposeSpec",
    "compose_view",
    "parse_compose",
    "session_view",
]

#: Sessions may be requested for at most this many simulated minutes
#: (the paper's workload draws durations from [1, 60]; give clients an
#: order of magnitude of headroom before calling the request malformed).
MAX_DURATION_MINUTES = 600.0


class ApiError(Exception):
    """A client error the API layer answers with a 4xx."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass(frozen=True)
class ComposeSpec:
    """A validated ``POST /compose`` body."""

    application: str
    qos_level: str = "average"
    duration: float = 10.0
    peer_id: Optional[int] = None
    out_format: Optional[str] = None


_COMPOSE_KEYS = frozenset(
    {"application", "qos_level", "duration", "peer_id", "out_format"}
)


def parse_compose(payload: Any, known_applications: Any) -> ComposeSpec:
    """Validate a compose body (raises :class:`ApiError` 400).

    ``known_applications`` is any container of valid application names
    (the runtime passes the resident grid's template names), so an
    unknown application is rejected here with a clean 400 instead of
    surfacing as a KeyError deep inside the QoS compiler.
    """
    if not isinstance(payload, dict):
        raise ApiError(400, "compose body must be a JSON object")
    unknown = sorted(set(payload) - _COMPOSE_KEYS)
    if unknown:
        raise ApiError(400, f"unknown compose fields: {', '.join(unknown)}")

    application = payload.get("application")
    if not isinstance(application, str) or not application:
        raise ApiError(400, "'application' (string) is required")
    if application not in known_applications:
        raise ApiError(
            400,
            f"unknown application {application!r}; "
            f"available: {', '.join(sorted(known_applications))}",
        )

    qos_level = payload.get("qos_level", "average")
    if qos_level not in QUALITY_LEVELS:
        raise ApiError(
            400,
            f"unknown qos_level {qos_level!r}; "
            f"expected one of {', '.join(sorted(QUALITY_LEVELS))}",
        )

    duration = payload.get("duration", 10.0)
    if isinstance(duration, bool) or not isinstance(duration, (int, float)):
        raise ApiError(400, "'duration' must be a number (sim minutes)")
    if not duration > 0:
        raise ApiError(400, "'duration' must be positive")
    if duration > MAX_DURATION_MINUTES:
        raise ApiError(
            400, f"'duration' must be <= {MAX_DURATION_MINUTES} sim minutes"
        )

    peer_id = payload.get("peer_id")
    if peer_id is not None and (
        isinstance(peer_id, bool) or not isinstance(peer_id, int)
    ):
        raise ApiError(400, "'peer_id' must be an integer")

    out_format = payload.get("out_format")
    if out_format is not None and not isinstance(out_format, str):
        raise ApiError(400, "'out_format' must be a string")

    return ComposeSpec(
        application=application,
        qos_level=qos_level,
        duration=float(duration),
        peer_id=peer_id,
        out_format=out_format,
    )


def session_view(
    session: Session, meta: Dict[str, Any], now: float
) -> Dict[str, Any]:
    """An active session as the API reports it."""
    view: Dict[str, Any] = {
        "session_id": session.session_id,
        "request_id": session.request_id,
        "state": session.state.value,
        "user_peer": session.user_peer,
        "peers": list(session.peers),
        "services": [inst.service for inst in session.instances],
        "start": session.start,
        "duration": session.duration,
        "remaining": max(0.0, session.end - now),
    }
    view.update(meta)
    return view


def compose_view(result: AggregationResult) -> Dict[str, Any]:
    """A ``POST /compose`` outcome (admitted or denied) as JSON."""
    view: Dict[str, Any] = {
        "admitted": result.admitted,
        "status": result.status.value,
        "request_id": result.request.request_id,
        "peer_id": result.request.peer_id,
        "application": result.request.application,
        "qos_level": result.request.qos_level,
        "lookup_hops": result.lookup_hops,
        "random_fallbacks": result.random_fallbacks,
    }
    if result.composed is not None:
        view["path"] = {
            "services": [inst.service for inst in result.composed.instances],
            "instances": [
                inst.instance_id for inst in result.composed.instances
            ],
            "score": result.composed.score,
            "hops": result.composed.hops,
        }
    if result.session is not None:
        view["session_id"] = result.session.session_id
        view["peers"] = list(result.session.peers)
        view["expires_at"] = result.session.end
    return view
