"""Load generation against a running serving plane.

``repro loadgen`` replays the paper's §4.1 workload over HTTP: each
generated request draws an application, a QoS level and a session
duration exactly the way :mod:`repro.workload` does (same
:class:`~repro.workload.generator.WorkloadConfig` knobs, same seeded
streams), but delivers it as ``POST /compose`` to a live server instead
of calling the aggregator in-process.

Two arrival disciplines:

``closed``
    ``concurrency`` workers each keep exactly one request in flight
    (classic closed loop) until ``n_requests`` have been sent.  Measures
    the server's sustained capacity.
``open``
    A Poisson dispatcher submits requests at ``rate_per_sec``
    regardless of completions (open loop, bounded by ``concurrency``
    in-flight).  Measures behavior under a fixed offered load.

A fraction ``release_ratio`` of admitted sessions is torn down
immediately via ``DELETE /sessions/{id}``, exercising the full
compose -> inspect -> release round trip the endpoint contract promises.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.services.applications import default_applications
from repro.sim.rng import RngStreams
from repro.workload.generator import WorkloadConfig

__all__ = [
    "LoadgenConfig",
    "LoadgenReport",
    "SoakConfig",
    "SoakReport",
    "run_loadgen",
    "run_soak",
]


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation run."""

    host: str = "127.0.0.1"
    port: int = 8177
    #: Total compose requests to send.
    n_requests: int = 200
    #: Workers (closed loop) / max in-flight (open loop).
    concurrency: int = 4
    #: ``"closed"`` or ``"open"``.
    mode: str = "closed"
    #: Offered load for the open loop, requests per wall-clock second.
    rate_per_sec: float = 50.0
    #: Seed for the request-parameter draws (application/QoS/duration).
    seed: int = 0
    #: Fraction of admitted sessions released immediately afterwards.
    release_ratio: float = 0.25
    #: §4.1 workload shape (duration range, QoS levels).  The default
    #: shortens sessions so a bench run does not saturate the grid.
    workload: WorkloadConfig = field(
        default_factory=lambda: WorkloadConfig(duration_range=(1.0, 15.0))
    )

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"unknown loadgen mode {self.mode!r} (closed/open)")
        if self.n_requests < 1:
            raise ValueError("n_requests must be positive")
        if self.concurrency < 1:
            raise ValueError("concurrency must be positive")
        if self.rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive")
        if not 0.0 <= self.release_ratio <= 1.0:
            raise ValueError("release_ratio must be in [0, 1]")


@dataclass
class LoadgenReport:
    """What the run measured."""

    sent: int = 0
    admitted: int = 0
    rejected: int = 0
    released: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    #: Per-request HTTP round-trip times, microseconds (compose only).
    latencies_us: List[float] = field(default_factory=list)

    @property
    def requests_per_sec(self) -> float:
        return self.sent / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def psi(self) -> float:
        """Serving-side satisfaction ratio: admitted / sent."""
        return self.admitted / self.sent if self.sent else 0.0

    def latency_summary_us(self) -> Dict[str, float]:
        values = sorted(self.latencies_us)
        if not values:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}

        def pct(q: float) -> float:
            rank = min(len(values) - 1, max(0, round(q / 100 * (len(values) - 1))))
            return values[rank]

        return {
            "count": len(values),
            "mean": sum(values) / len(values),
            "p50": pct(50), "p95": pct(95), "p99": pct(99),
            "max": values[-1],
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "sent": self.sent,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "released": self.released,
            "errors": self.errors,
            "psi": self.psi,
            "wall_seconds": self.wall_seconds,
            "requests_per_sec": self.requests_per_sec,
            "latency_us": self.latency_summary_us(),
        }


def _draw_requests(config: LoadgenConfig) -> List[Dict[str, Any]]:
    """All compose bodies up front, from one seeded stream.

    Drawing before dispatch keeps the request *contents* a pure function
    of the seed even when worker scheduling interleaves nondeterministically.
    """
    rng = RngStreams(config.seed).stream("loadgen")
    applications = [t.name for t in default_applications()]
    levels = list(config.workload.qos_levels)
    lo, hi = config.workload.duration_range
    bodies = []
    for _ in range(config.n_requests):
        bodies.append({
            "application": applications[int(rng.integers(len(applications)))],
            "qos_level": str(rng.choice(levels)),
            "duration": float(rng.uniform(lo, hi)),
            "release": bool(rng.random() < config.release_ratio),
        })
    return bodies


def _send_one(
    config: LoadgenConfig,
    body: Dict[str, Any],
    report: LoadgenReport,
    lock: threading.Lock,
    clients: threading.local,
) -> None:
    from repro.serve.client import ServeApiError, ServeClient

    client: Optional[ServeClient] = getattr(clients, "client", None)
    if client is None:
        client = clients.client = ServeClient(config.host, config.port)
    release = body["release"]
    try:
        # Wall-clock RTT measurement: this is the load generator's whole
        # purpose; it never feeds the seeded event stream.
        t0 = time.perf_counter()  # lint: disable=DET001 -- client-side RTT measurement
        payload = client.compose(
            application=body["application"],
            qos_level=body["qos_level"],
            duration=body["duration"],
        )
        elapsed_us = (time.perf_counter() - t0) * 1e6  # lint: disable=DET001 -- client-side RTT measurement
    except (ServeApiError, OSError, TimeoutError):
        with lock:
            report.sent += 1
            report.errors += 1
        return
    admitted = bool(payload.get("admitted"))
    session_id = payload.get("session_id")
    released = False
    if admitted and release and session_id is not None:
        try:
            client.release(int(session_id))
            released = True
        except (ServeApiError, OSError, TimeoutError):
            pass
    with lock:
        report.sent += 1
        report.latencies_us.append(elapsed_us)
        if admitted:
            report.admitted += 1
            if released:
                report.released += 1
        else:
            report.rejected += 1


def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Drive one run against ``config.host:port``; returns the report."""
    from repro.serve.client import wait_ready

    wait_ready(config.host, config.port, timeout=30.0)
    bodies = _draw_requests(config)
    report = LoadgenReport()
    lock = threading.Lock()
    clients = threading.local()

    # The arrival process is wall-clock by definition (it offers load to
    # a real server); DET001 pragmas mark every read.
    start = time.perf_counter()  # lint: disable=DET001 -- loadgen wall-clock window
    with ThreadPoolExecutor(max_workers=config.concurrency) as pool:
        if config.mode == "closed":
            futures = [
                pool.submit(_send_one, config, body, report, lock, clients)
                for body in bodies
            ]
        else:
            rng = RngStreams(config.seed).stream("loadgen-arrivals")
            futures = []
            mean_gap = 1.0 / config.rate_per_sec
            for body in bodies:
                futures.append(
                    pool.submit(_send_one, config, body, report, lock, clients)
                )
                time.sleep(float(rng.exponential(mean_gap)))
        for future in futures:
            future.result()
    report.wall_seconds = time.perf_counter() - start  # lint: disable=DET001 -- loadgen wall-clock window
    return report


# ---------------------------------------------------------------------------
# Soak mode (ROADMAP item 2): sustained load with drift detection.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SoakConfig:
    """A wall-clock soak: sustained load for a fixed duration.

    The generator drives an open loop for ``duration_seconds`` while a
    sampler thread polls ``/status`` and ``/slo``; the report then
    splits the run into thirds and compares the first against the last
    to expose *monotonic drift* -- the failure mode a fixed-count bench
    cannot see (RSS creeping up, latency degrading as state accretes).
    """

    host: str = "127.0.0.1"
    port: int = 8177
    duration_seconds: float = 30.0
    rate_per_sec: float = 25.0
    concurrency: int = 4
    seed: int = 0
    release_ratio: float = 0.25
    #: Seconds between ``/status`` + ``/slo`` samples.
    sample_interval: float = 1.0
    workload: WorkloadConfig = field(
        default_factory=lambda: WorkloadConfig(duration_range=(1.0, 15.0))
    )

    def __post_init__(self) -> None:
        if self.duration_seconds <= 0:
            raise ValueError("duration_seconds must be positive")
        if self.rate_per_sec <= 0:
            raise ValueError("rate_per_sec must be positive")
        if self.concurrency < 1:
            raise ValueError("concurrency must be positive")
        if self.sample_interval <= 0:
            raise ValueError("sample_interval must be positive")
        if not 0.0 <= self.release_ratio <= 1.0:
            raise ValueError("release_ratio must be in [0, 1]")


def _thirds(values: List[float]) -> Optional[tuple]:
    """``(mean of first third, mean of last third)`` (None if too few)."""
    if len(values) < 6:
        return None
    third = len(values) // 3
    first = values[:third]
    last = values[-third:]
    return (sum(first) / len(first), sum(last) / len(last))


@dataclass
class SoakReport:
    """What a soak run measured, drift verdicts included."""

    loadgen: LoadgenReport = field(default_factory=LoadgenReport)
    #: Periodic ``{wall_s, rss_kb, slo_state, active_sessions,
    #: events_retained}`` samples.
    samples: List[Dict[str, Any]] = field(default_factory=list)
    #: Every SLO worst-state observed, in sample order (deduplicated).
    slo_states: List[str] = field(default_factory=list)

    #: A run "drifts" when the last third exceeds the first third by
    #: more than these ratios (RSS and compose RTT respectively).
    RSS_DRIFT_LIMIT = 1.25
    LATENCY_DRIFT_LIMIT = 2.0

    def rss_drift(self) -> Optional[float]:
        """last-third mean RSS / first-third mean RSS (None = no data)."""
        values = [
            float(s["rss_kb"]) for s in self.samples
            if s.get("rss_kb") is not None
        ]
        pair = _thirds(values)
        if pair is None or pair[0] <= 0:
            return None
        return pair[1] / pair[0]

    def latency_drift(self) -> Optional[float]:
        """last-third mean compose RTT / first-third mean (None = no data)."""
        pair = _thirds(self.loadgen.latencies_us)
        if pair is None or pair[0] <= 0:
            return None
        return pair[1] / pair[0]

    def drift_ok(self) -> bool:
        rss = self.rss_drift()
        latency = self.latency_drift()
        return (rss is None or rss <= self.RSS_DRIFT_LIMIT) and (
            latency is None or latency <= self.LATENCY_DRIFT_LIMIT
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "loadgen": self.loadgen.as_dict(),
            "samples": self.samples,
            "slo_states": self.slo_states,
            "rss_drift": self.rss_drift(),
            "latency_drift": self.latency_drift(),
            "drift_ok": self.drift_ok(),
        }


def run_soak(config: SoakConfig) -> SoakReport:
    """Drive one soak against ``config.host:port``; returns the report.

    Wall-clock by definition -- it sustains real load against a real
    server for a real duration; every clock read is pragma'd.
    """
    from repro.serve.client import ServeApiError, ServeClient, wait_ready

    wait_ready(config.host, config.port, timeout=30.0)
    report = SoakReport()
    lock = threading.Lock()
    clients = threading.local()
    rng = RngStreams(config.seed).stream("loadgen-arrivals")
    bodies = iter([])
    stop = threading.Event()
    start = time.perf_counter()  # lint: disable=DET001 -- soak wall-clock window

    def _sample_loop() -> None:
        client = ServeClient(config.host, config.port)
        try:
            while not stop.wait(config.sample_interval):
                now = time.perf_counter() - start  # lint: disable=DET001 -- soak sample timestamp
                try:
                    status = client.status()
                except (ServeApiError, OSError, TimeoutError):
                    continue
                sample: Dict[str, Any] = {
                    "wall_s": now,
                    "rss_kb": (status.get("process") or {}).get("rss_kb"),
                    "slo_state": status.get("slo_state"),
                    "active_sessions": status.get("sessions", {}).get("active"),
                }
                try:
                    metrics = client.metrics()
                    sample["events_retained"] = metrics.get("events_retained")
                except (ServeApiError, OSError, TimeoutError):
                    pass
                with lock:
                    report.samples.append(sample)
                    state = sample["slo_state"]
                    if state is not None and (
                        not report.slo_states or report.slo_states[-1] != state
                    ):
                        report.slo_states.append(state)
        finally:
            client.close()

    sampler = threading.Thread(
        target=_sample_loop, name="repro-soak-sampler", daemon=True
    )
    sampler.start()
    mean_gap = 1.0 / config.rate_per_sec
    batch_config = LoadgenConfig(
        host=config.host,
        port=config.port,
        n_requests=256,
        concurrency=config.concurrency,
        seed=config.seed,
        release_ratio=config.release_ratio,
        workload=config.workload,
    )
    n_batches = 0
    try:
        with ThreadPoolExecutor(max_workers=config.concurrency) as pool:
            futures = []
            while (time.perf_counter() - start) < config.duration_seconds:  # lint: disable=DET001 -- soak duration window
                body = next(bodies, None)
                if body is None:
                    # Re-seed per batch so a long soak does not replay
                    # the same 256 request bodies forever.
                    from dataclasses import replace

                    batch = replace(
                        batch_config, seed=config.seed + n_batches
                    )
                    n_batches += 1
                    bodies = iter(_draw_requests(batch))
                    body = next(bodies)
                futures.append(
                    pool.submit(
                        _send_one, batch_config, body, report.loadgen,
                        lock, clients,
                    )
                )
                time.sleep(float(rng.exponential(mean_gap)))
            for future in futures:
                future.result()
    finally:
        stop.set()
        sampler.join(timeout=10)
    report.loadgen.wall_seconds = time.perf_counter() - start  # lint: disable=DET001 -- soak wall-clock window
    return report
