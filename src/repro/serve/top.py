"""``repro top``: a live terminal view of one running server.

Polls ``/status``, ``/slo`` and ``/traces`` and renders windowed rates,
SLO states and the worst recent request traces as one refreshing text
panel -- the operator's view the observability plane exists to feed.

:func:`render_top` is a pure function over the three JSON documents, so
the layout is unit-testable without a server; :func:`run_top` owns the
polling loop (wall-clock by nature: it watches a live process).
"""

from __future__ import annotations

import sys
from typing import Any, Dict, List, Optional, TextIO

__all__ = ["render_top", "run_top"]

_STATE_MARK = {"ok": "·", "warn": "!", "breach": "✗"}


def _fmt_us(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}ms"
    return f"{value:.0f}µs"


def render_top(
    status: Dict[str, Any],
    slo: Optional[Dict[str, Any]],
    traces: Optional[Dict[str, Any]],
) -> str:
    """The three endpoint documents as one text panel."""
    lines: List[str] = []
    sessions = status.get("sessions", {})
    requests = status.get("requests", {})
    rss = (status.get("process") or {}).get("rss_kb")
    lines.append(
        f"repro top  scenario={status.get('scenario')} "
        f"algorithm={status.get('algorithm')} seed={status.get('seed')} "
        f"mode={status.get('mode')}"
    )
    lines.append(
        f"  sim_time={status.get('sim_time', 0.0):.2f}min  "
        f"peers={status.get('grid', {}).get('n_peers')}  "
        f"sessions active={sessions.get('active')}  "
        f"http={requests.get('http')}  "
        f"rss={rss if rss is not None else '?'}kB"
    )

    if slo is None:
        lines.append("")
        lines.append("(observability plane disabled on this server)")
        return "\n".join(lines)

    lines.append("")
    lines.append(f"slo: {slo.get('state', 'ok')} "
                 f"({slo.get('transitions', 0)} transitions, "
                 f"{slo.get('evaluations', 0)} evaluations)")
    objectives = slo.get("objectives", [])
    if objectives:
        width = max(len(o["slo"]) for o in objectives)
        for o in objectives:
            mark = _STATE_MARK.get(o["state"], "?")
            lines.append(
                f"  {mark} {o['slo']:<{width}}  {o['state']:<6} "
                f"value={o['value_long']:.3f} target={o['target']:g} "
                f"burn(long/short)={o['burn_long']:.2f}/{o['burn_short']:.2f}"
            )

    series = slo.get("series", {})
    if series:
        lines.append("")
        width = max(len(n) for n in series)
        lines.append(f"  {'windowed series':<{width}}  "
                     f"{'count':>8} {'rate':>10} {'p50':>10} "
                     f"{'p95':>10} {'p99':>10}")
        for name in sorted(series):
            s = series[name]
            wall = " (wall)" if s.get("wall") else ""
            lines.append(
                f"  {name:<{width}}  {s['count']:>8d} {s['rate']:>10.3f} "
                f"{s['p50']:>10.3f} {s['p95']:>10.3f} {s['p99']:>10.3f}"
                f"{wall}"
            )

    worst = (traces or {}).get("worst", [])
    if worst:
        lines.append("")
        lines.append("  worst recent traces (wall)")
        for t in worst[:5]:
            lines.append(
                f"    {t.get('trace_id')}  op={t.get('op')} "
                f"{_fmt_us(t.get('wall_us', 0.0))} "
                f"at sim {t.get('sim_start', 0.0):.2f}min"
            )
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    out: TextIO = sys.stdout,
) -> int:
    """Poll the server and render until interrupted (or ``iterations``)."""
    import time

    from repro.serve.client import ServeApiError, ServeClient, wait_ready

    wait_ready(host, port, timeout=10.0)
    client = ServeClient(host, port)
    n = 0
    try:
        while iterations is None or n < iterations:
            status = client.status()
            try:
                slo = client.slo()
            except ServeApiError:
                slo = None
            try:
                traces = client.traces()
            except ServeApiError:
                traces = None
            if out.isatty():  # pragma: no cover - interactive only
                out.write("\x1b[2J\x1b[H")
            out.write(render_top(status, slo, traces))
            out.write("\n")
            out.flush()
            n += 1
            if iterations is not None and n >= iterations:
                break
            # A live operator view is wall-paced by definition.
            time.sleep(interval)  # lint: disable=DET001 -- live polling cadence
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        client.close()
    return 0
