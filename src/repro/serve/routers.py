"""Route table for the serving plane: paths -> runtime operations.

Follows the DIRAC-style split: the router owns the URL surface and maps
each request onto exactly one :class:`~repro.serve.core.GridRuntime`
operation, using :mod:`repro.serve.logic` for parsing and rendering.
All handlers run under the server's single-writer lock, so they may
freely mutate the grid.

The API surface (see docs/serving.md):

=========  =====================  ===========================================
method     path                   operation
=========  =====================  ===========================================
``GET``    ``/``                  endpoint index + capability descriptor
``POST``   ``/compose``           QoS request in -> admitted session/path out
``GET``    ``/sessions``          list active sessions
``GET``    ``/sessions/{id}``     inspect one session (active or resolved)
``DELETE`` ``/sessions/{id}``     release an active session's reservations
``GET``    ``/status``            grid size, churn generation, cache counters
``GET``    ``/metrics``           telemetry (JSON default; ``?format=``
                                  ``prometheus`` or ``Accept: text/plain``
                                  for text exposition)
``GET``    ``/slo``               objective states, burn rates, windowed series
``GET``    ``/traces``            recent/worst request traces
``GET``    ``/traces/{id}``       one request's correlated span tree
=========  =====================  ===========================================
"""

from __future__ import annotations

from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from repro.serve.core import GridRuntime
from repro.serve.http import HttpError, HttpRequest, HttpResponse
from repro.serve.logic import ApiError, compose_view, parse_compose, session_view
from repro.telemetry.exposition import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE

__all__ = ["Router", "build_router", "negotiate_metrics_format"]


def negotiate_metrics_format(request: HttpRequest) -> str:
    """``"json"`` or ``"prometheus"`` for one ``GET /metrics`` request.

    An explicit ``?format=`` wins; otherwise an ``Accept`` header that
    asks for ``text/plain`` (the Prometheus scrape default) selects the
    text exposition, and everything else -- including no header and
    ``*/*`` -- stays JSON.
    """
    fmt = request.query.get("format")
    if fmt is not None:
        if fmt not in ("json", "prometheus"):
            raise ApiError(
                400, f"unknown metrics format {fmt!r} (json/prometheus)"
            )
        return fmt
    accept = request.headers.get("accept", "")
    if "text/plain" in accept or "openmetrics" in accept:
        return "prometheus"
    return "json"

#: A bound handler: path parameters in, response out.
RouteHandler = Callable[[HttpRequest, Dict[str, str]], Awaitable[HttpResponse]]


class Router:
    """Literal/parameter path matching over a fixed route table."""

    def __init__(self) -> None:
        #: ``(method, segments, label, handler)`` where a segment like
        #: ``{id}`` captures one path element.
        self._routes: List[Tuple[str, Tuple[str, ...], str, RouteHandler]] = []

    def add(self, method: str, pattern: str, handler: RouteHandler) -> None:
        segments = tuple(s for s in pattern.split("/") if s)
        self._routes.append((method.upper(), segments, pattern, handler))

    def _match(
        self, segments: Tuple[str, ...], parts: List[str]
    ) -> Optional[Dict[str, str]]:
        if len(segments) != len(parts):
            return None
        params: Dict[str, str] = {}
        for seg, part in zip(segments, parts):
            if seg.startswith("{") and seg.endswith("}"):
                params[seg[1:-1]] = part
            elif seg != part:
                return None
        return params

    async def dispatch(self, request: HttpRequest) -> Tuple[HttpResponse, str]:
        """Answer one request; returns ``(response, route label)``.

        The label is the *pattern* (``/sessions/{id}``, not the concrete
        path), so telemetry cardinality stays bounded.
        """
        parts = [p for p in request.path.split("/") if p]
        allowed: List[str] = []
        for method, segments, label, handler in self._routes:
            params = self._match(segments, parts)
            if params is None:
                continue
            if method != request.method:
                allowed.append(method)
                continue
            try:
                return await handler(request, params), label
            except (ApiError, HttpError) as exc:
                return HttpResponse(exc.status, {"error": exc.message}), label
            except Exception as exc:  # noqa: BLE001 - the API must answer
                return (
                    HttpResponse(
                        500, {"error": f"{type(exc).__name__}: {exc}"}
                    ),
                    label,
                )
        if allowed:
            return (
                HttpResponse(
                    405,
                    {"error": f"method {request.method} not allowed; "
                              f"use {', '.join(sorted(set(allowed)))}"},
                ),
                request.path,
            )
        return HttpResponse(404, {"error": f"no route {request.path}"}), request.path


def _parse_session_id(params: Dict[str, str]) -> int:
    raw = params.get("id", "")
    try:
        return int(raw)
    except ValueError:
        raise ApiError(400, f"session id must be an integer, got {raw!r}") from None


def build_router(runtime: GridRuntime) -> Router:
    """The route table bound to one resident grid."""
    router = Router()
    applications = frozenset(t.name for t in runtime.grid.applications)

    async def index(request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        runtime.tick()
        status = runtime.status()
        return HttpResponse(200, {
            "service": status["service"],
            "endpoints": [
                "POST /compose",
                "GET /sessions",
                "GET /sessions/{id}",
                "DELETE /sessions/{id}",
                "GET /status",
                "GET /metrics",
                "GET /slo",
                "GET /traces",
                "GET /traces/{trace_id}",
            ],
        })

    async def compose(request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        spec = parse_compose(request.json(), applications)
        if spec.peer_id is not None and runtime.grid.directory.get(spec.peer_id) is None:
            raise ApiError(400, f"peer {spec.peer_id} is not alive")
        result = runtime.compose(
            application=spec.application,
            qos_level=spec.qos_level,
            duration=spec.duration,
            peer_id=spec.peer_id,
            out_format=spec.out_format,
            trace_id=request.trace_id,
        )
        status = 201 if result.admitted else 409
        view = compose_view(result)
        view["trace_id"] = request.trace_id
        return HttpResponse(status, view)

    async def list_sessions(
        request: HttpRequest, params: Dict[str, str]
    ) -> HttpResponse:
        runtime.tick()
        now = runtime.grid.sim.now
        sessions = [
            session_view(s, runtime.session_meta(s.session_id), now)
            for s in runtime.active_sessions()
        ]
        return HttpResponse(200, {"active": len(sessions), "sessions": sessions})

    async def get_session(
        request: HttpRequest, params: Dict[str, str]
    ) -> HttpResponse:
        runtime.tick()
        session_id = _parse_session_id(params)
        kind, session, meta = runtime.find_session(session_id)
        if kind == "active" and session is not None:
            view = session_view(session, meta or {}, runtime.grid.sim.now)
            return HttpResponse(200, view)
        if kind == "resolved":
            payload = {"session_id": session_id}
            payload.update(meta or {})
            return HttpResponse(200, payload)
        raise ApiError(404, f"session {session_id} is unknown")

    async def delete_session(
        request: HttpRequest, params: Dict[str, str]
    ) -> HttpResponse:
        session_id = _parse_session_id(params)
        session = runtime.release(session_id, trace_id=request.trace_id)
        if session is None:
            # Not active: a repeat DELETE (idempotent teardown -- nothing
            # is ever released twice) or a never-admitted id.
            raise ApiError(404, f"session {session_id} is not active")
        return HttpResponse(200, {
            "session_id": session.session_id,
            "state": session.state.value,
            "reason": session.failure_reason,
            "released_at": runtime.grid.sim.now,
        })

    async def status(request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        runtime.tick()
        return HttpResponse(200, runtime.status())

    async def metrics(request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        fmt = negotiate_metrics_format(request)
        runtime.tick()
        if fmt == "prometheus":
            return HttpResponse(
                200,
                text=runtime.prometheus(),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        return HttpResponse(200, runtime.metrics())

    async def slo(request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        runtime.tick()
        view = runtime.slo_view()
        if view is None:
            raise ApiError(404, "observability plane is disabled on this server")
        return HttpResponse(200, view)

    async def traces(request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        runtime.tick()
        view = runtime.traces_view()
        if view is None:
            raise ApiError(404, "observability plane is disabled on this server")
        return HttpResponse(200, view)

    async def get_trace(request: HttpRequest, params: Dict[str, str]) -> HttpResponse:
        runtime.tick()
        trace_id = params.get("trace_id", "")
        if runtime.observability is None:
            raise ApiError(404, "observability plane is disabled on this server")
        view = runtime.trace(trace_id)
        if view is None:
            raise ApiError(404, f"trace {trace_id!r} is unknown (expired or never seen)")
        return HttpResponse(200, view)

    router.add("GET", "/", index)
    router.add("POST", "/compose", compose)
    router.add("GET", "/sessions", list_sessions)
    router.add("GET", "/sessions/{id}", get_session)
    router.add("DELETE", "/sessions/{id}", delete_session)
    router.add("GET", "/status", status)
    router.add("GET", "/metrics", metrics)
    router.add("GET", "/slo", slo)
    router.add("GET", "/traces", traces)
    router.add("GET", "/traces/{trace_id}", get_trace)
    return router
