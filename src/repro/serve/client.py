"""A stdlib HTTP client for the serving plane.

One method per endpoint, built on ``http.client`` so tests, the load
generator and the CLI all talk to the server over real TCP without any
new dependency.  Errors surface as :class:`ServeApiError` carrying the
HTTP status and the server's JSON error payload.
"""

from __future__ import annotations

import json
import socket
import time
from http.client import HTTPConnection
from typing import Any, Dict, Optional, Tuple

__all__ = ["ServeApiError", "ServeClient", "wait_ready"]


class ServeApiError(Exception):
    """A non-2xx API answer."""

    def __init__(self, status: int, message: str, payload: Any = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.payload = payload


def wait_ready(host: str, port: int, timeout: float = 30.0) -> None:
    """Block until ``host:port`` accepts TCP connections.

    Readiness is probed with bare connects -- the server treats a
    connect-then-close as a clean EOF and emits *no* telemetry, so
    polling here cannot perturb the deterministic event stream.
    """
    # Readiness polling is wall-clock by nature (we are waiting for a
    # real socket); nothing here feeds the seeded event stream.
    deadline = time.monotonic() + timeout  # lint: disable=DET001 -- socket readiness deadline
    while True:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return
        except OSError:
            now = time.monotonic()  # lint: disable=DET001 -- socket readiness deadline
            if now >= deadline:
                raise TimeoutError(
                    f"server at {host}:{port} not accepting connections "
                    f"after {timeout}s"
                ) from None
            time.sleep(0.02)


class ServeClient:
    """Talks to one ``repro serve`` instance (keep-alive connection)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[HTTPConnection] = None

    # -- plumbing ----------------------------------------------------------
    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(
        self, method: str, path: str, body: Any = None
    ) -> Tuple[int, Any]:
        """One round trip; returns ``(status, decoded JSON payload)``."""
        encoded = None
        headers = {}
        if body is not None:
            encoded = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            conn.request(method, path, body=encoded, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (ConnectionError, socket.timeout, OSError):
            # Stale keep-alive connection: reconnect once.
            self.close()
            conn = self._connection()
            conn.request(method, path, body=encoded, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        payload = json.loads(raw) if raw else None
        return response.status, payload

    def _expect(
        self, method: str, path: str, body: Any = None, ok: Tuple[int, ...] = (200,)
    ) -> Any:
        status, payload = self.request(method, path, body)
        if status not in ok:
            message = (
                payload.get("error", "") if isinstance(payload, dict) else str(payload)
            )
            raise ServeApiError(status, message or f"unexpected status {status}", payload)
        return payload

    # -- endpoints -----------------------------------------------------------
    def index(self) -> Dict[str, Any]:
        return self._expect("GET", "/")

    def compose(
        self,
        application: str,
        qos_level: str = "average",
        duration: float = 10.0,
        peer_id: Optional[int] = None,
        out_format: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Run one composition; admitted *and* denied outcomes both
        return the payload (check ``payload["admitted"]``)."""
        body: Dict[str, Any] = {
            "application": application,
            "qos_level": qos_level,
            "duration": duration,
        }
        if peer_id is not None:
            body["peer_id"] = peer_id
        if out_format is not None:
            body["out_format"] = out_format
        return self._expect("POST", "/compose", body, ok=(201, 409))

    def sessions(self) -> Dict[str, Any]:
        return self._expect("GET", "/sessions")

    def session(self, session_id: int) -> Dict[str, Any]:
        return self._expect("GET", f"/sessions/{session_id}")

    def release(self, session_id: int) -> Dict[str, Any]:
        """Tear one active session down (404s if it is not active)."""
        return self._expect("DELETE", f"/sessions/{session_id}")

    def status(self) -> Dict[str, Any]:
        return self._expect("GET", "/status")

    def metrics(self) -> Dict[str, Any]:
        return self._expect("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition (``/metrics?format=prometheus``)."""
        conn = self._connection()
        try:
            conn.request("GET", "/metrics?format=prometheus")
            response = conn.getresponse()
            raw = response.read()
        except (ConnectionError, socket.timeout, OSError):
            self.close()
            conn = self._connection()
            conn.request("GET", "/metrics?format=prometheus")
            response = conn.getresponse()
            raw = response.read()
        if response.status != 200:
            raise ServeApiError(response.status, raw.decode("utf-8", "replace"))
        return raw.decode("utf-8")

    def slo(self) -> Dict[str, Any]:
        """Objective states, burn rates and the windowed series."""
        return self._expect("GET", "/slo")

    def traces(self) -> Dict[str, Any]:
        """Recent and worst request traces."""
        return self._expect("GET", "/traces")

    def trace(self, trace_id: str) -> Dict[str, Any]:
        """One request's correlated span tree (404s if unknown)."""
        return self._expect("GET", f"/traces/{trace_id}")
