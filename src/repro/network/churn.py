"""Topological variation: arbitrary peer arrivals and departures (§4.2).

The paper measures churn as "the number of peers leaving or arriving
every minute".  :class:`ChurnProcess` realizes that: every minute it
draws ``Poisson(rate)`` membership events, each independently an arrival
or a departure with equal probability, so the expected population is
stationary while individual peers come and go.

**Departure selection is biased towards young peers**: a peer's chance of
being the one to leave is proportional to ``1 / (1 + uptime)``.  This is
the discrete analogue of the heavy-tailed session-time distributions
measured for real P2P systems (Saroiu et al. [17], which the paper builds
its uptime heuristic on): peers that have already stayed long tend to
stay longer.  Without this property the paper's uptime-based selection
rule could not help at all -- uptime would carry no information -- so the
bias is part of reproducing the experiment faithfully (see DESIGN.md §4).
The bias strength is configurable (``departure_bias = 0`` gives uniform
departures, the ablation benches use this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

import numpy as np

from repro.network.peer import Peer, PeerDirectory
from repro.sim.engine import Simulator
from repro.sim.process import Process

__all__ = ["ChurnConfig", "ChurnProcess"]


@dataclass(frozen=True)
class ChurnConfig:
    """Churn parameters.

    Attributes
    ----------
    rate_per_min:
        Expected membership events (arrivals + departures) per minute;
        the paper's "topological variation rate (peers/min)".
    departure_bias:
        Exponent ``gamma`` in the departure weight ``(1 + uptime)^-gamma``.
        ``1.0`` (default) gives the heavy-tail-flavoured behaviour;
        ``0.0`` makes departures uniform.
    min_alive:
        Departures are suppressed when the population would drop below
        this floor (keeps degenerate configs from emptying the grid).
    """

    rate_per_min: float
    departure_bias: float = 1.0
    min_alive: int = 2

    def __post_init__(self) -> None:
        if self.rate_per_min < 0:
            raise ValueError("churn rate must be non-negative")
        if self.departure_bias < 0:
            raise ValueError("departure bias must be non-negative")


class ChurnProcess:
    """Drives membership events; delegates bookkeeping to callbacks.

    Parameters
    ----------
    sim, directory:
        The simulation kernel and the peer population.
    config:
        Churn parameters.
    spawn_peer:
        Called to create an arriving peer (returns the new
        :class:`Peer`); typically provisions resources, catalog replicas
        and lookup-ring membership.
    on_departure:
        Called with the departing peer id *before* the directory marks it
        departed, so session/registry state can be cleaned up.
    rng:
        Dedicated RNG stream.
    """

    def __init__(
        self,
        sim: Simulator,
        directory: PeerDirectory,
        config: ChurnConfig,
        spawn_peer: Callable[[float], Peer],
        on_departure: Callable[[int], None],
        rng: np.random.Generator,
        telemetry=None,
    ) -> None:
        self.sim = sim
        self.directory = directory
        self.config = config
        self.spawn_peer = spawn_peer
        self.on_departure = on_departure
        self.rng = rng
        #: Optional :class:`repro.telemetry.Telemetry` (join/leave events).
        self.telemetry = telemetry
        self.n_arrivals = 0
        self.n_departures = 0
        self._process: Optional[Process] = None

    # -- single events ------------------------------------------------------
    def arrive(self) -> Peer:
        peer = self.spawn_peer(self.sim.now)
        self.n_arrivals += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter("churn.arrivals").inc()
            self.telemetry.bus.emit("churn.join", peer=peer.peer_id)
            self._update_store_gauges()
        return peer

    def pick_departing_peer(self) -> Optional[int]:
        """Weighted draw over alive peers; ``None`` if at the floor."""
        ids = self.directory.alive_ids
        if len(ids) <= self.config.min_alive:
            return None
        uptimes, ids = self.directory.uptimes(self.sim.now)
        if self.config.departure_bias == 0.0:
            idx = int(self.rng.integers(len(ids)))
        else:
            weights = (1.0 + uptimes) ** (-self.config.departure_bias)
            weights /= weights.sum()
            idx = int(self.rng.choice(len(ids), p=weights))
        return ids[idx]

    def depart(self) -> Optional[int]:
        pid = self.pick_departing_peer()
        if pid is None:
            return None
        if self.telemetry is not None:
            self.telemetry.metrics.counter("churn.departures").inc()
            self.telemetry.bus.emit("churn.leave", peer=pid)
        self.on_departure(pid)
        self.directory.depart(pid, self.sim.now)
        self.n_departures += 1
        if self.telemetry is not None:
            self._update_store_gauges()
        return pid

    def _update_store_gauges(self) -> None:
        """Mirror the SoA store's membership bookkeeping into gauges.

        Counters/gauges sit outside the event stream, so this is
        backend-divergent by design (the exactness contract covers
        events only); the object directory simply has no store and
        skips the gauges entirely.
        """
        store = getattr(self.directory, "store", None)
        if store is None:
            return
        metrics = self.telemetry.metrics
        metrics.gauge("store.generation").set(store.generation)
        metrics.gauge("store.rows_recycled").set(store.rows_recycled)

    # -- the per-minute process -------------------------------------------------
    def _run(self) -> Iterator:
        while True:
            yield self.sim.timeout(1.0)
            n_events = int(self.rng.poisson(self.config.rate_per_min))
            for _ in range(n_events):
                if self.rng.random() < 0.5:
                    self.arrive()
                else:
                    self.depart()

    def start(self) -> Process:
        """Start the churn loop (no-op process when the rate is zero)."""
        if self.config.rate_per_min == 0:
            def idle():
                return
                yield  # pragma: no cover

            self._process = Process(self.sim, idle(), name="churn-idle")
        else:
            self._process = Process(self.sim, self._run(), name="churn")
        return self._process

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")
