"""Struct-of-arrays peer state: the 10^4..10^5-peer representation.

The object-backed :class:`~repro.network.peer.PeerDirectory` keeps one
Python ``Peer`` per host, which makes every hot plane -- candidate
selection, prober snapshot refresh, admission accounting -- a Python
loop over objects.  This module stores the same state as contiguous
numpy arrays (:class:`PeerStore`) so those planes can operate on array
slices, and keeps the ``Peer`` surface alive as a thin row-view facade
(:class:`PeerRowView`) so every existing caller of ``PeerDirectory``'s
public API keeps working unchanged.

Layout
------
:class:`PeerStore` owns, per row:

* ``capacity``/``available`` -- ``(rows, m)`` end-system resource
  matrices (``available`` is the admission ledger's debit target),
* ``access_bw``/``avail_up``/``avail_down`` -- access-link state,
* ``joined_at``/``departed_at``/``alive`` -- uptime + occupancy,
* ``snap_*`` -- the prober's soft-state freshness plane: per-row
  epoch-snapshotted availability/uplink/uptime and the epoch stamp
  that makes a snapshot current (see ``probing/prober.py``).

Rows are recycled through a free list when peers depart; ``generation``
bumps on every membership change (the same invalidation discipline the
discovery-plane caches use, see ``lookup/cache.py``), so anything
holding row indices can cheaply detect staleness.

Departure semantics
-------------------
The object directory keeps departed ``Peer`` corpses forever (session
rollback deliberately credits them; the stale-state fault serves their
last snapshot).  Here a departing peer's final state is copied into a
detached object-backend ``Peer`` tombstone before its row returns to
the free list -- mutations on the corpse (rollback credits) hit the
tombstone, never a recycled row, and the directory keeps answering
``get``/``__getitem__``/``__contains__`` for departed ids exactly like
the object backend.  The differential suite
(tests/perf/test_soa_differential.py) proves the two backends produce
byte-identical telemetry per seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.resources import ResourceVector
from repro.network.peer import Peer

__all__ = ["PeerStore", "PeerRowView", "SoAPeerDirectory"]


class PeerStore:
    """Contiguous per-peer state arrays with row recycling.

    Rows are allocated by :meth:`alloc_row` (free list first, then the
    append cursor; arrays grow by doubling) and returned by
    :meth:`free_row`.  ``generation`` increments on every allocation
    and every free, mirroring the membership-generation discipline of
    the discovery caches.
    """

    def __init__(self, resource_names: Sequence[str], initial_rows: int = 256) -> None:
        self.resource_names = tuple(resource_names)
        rows = max(int(initial_rows), 16)
        m = len(self.resource_names)
        self.capacity = np.zeros((rows, m), dtype=np.float64)
        self.available = np.zeros((rows, m), dtype=np.float64)
        self.access_bw = np.zeros(rows, dtype=np.float64)
        self.avail_up = np.zeros(rows, dtype=np.float64)
        self.avail_down = np.zeros(rows, dtype=np.float64)
        self.joined_at = np.zeros(rows, dtype=np.float64)
        self.departed_at = np.full(rows, np.nan, dtype=np.float64)
        self.alive = np.zeros(rows, dtype=bool)
        # -- prober soft-state freshness plane ---------------------------
        #: Epoch stamp of the row's snapshot; -1 = never snapshotted
        #: (reset on row recycling so a reused row can never serve a
        #: prior tenant's state).
        self.snap_epoch = np.full(rows, -1, dtype=np.int64)
        self.snap_avail = np.zeros((rows, m), dtype=np.float64)
        self.snap_up = np.zeros(rows, dtype=np.float64)
        self.snap_uptime = np.zeros(rows, dtype=np.float64)
        #: Membership generation (bumped on alloc/free) -- the PR-4
        #: invalidation discipline for anything caching row indices.
        self.generation = 0
        #: Lifetime counters (capability/status reporting).
        self.rows_recycled = 0
        self._free: List[int] = []
        self._high = 0  # append cursor / high-water mark

    # -- row lifecycle ---------------------------------------------------
    @property
    def row_capacity(self) -> int:
        return len(self.access_bw)

    @property
    def n_rows(self) -> int:
        """Occupied rows (== alive peers)."""
        return self._high - len(self._free)

    def _grow(self, min_rows: int) -> None:
        new = max(min_rows, 2 * self.row_capacity)
        for name in (
            "capacity", "available", "access_bw", "avail_up", "avail_down",
            "joined_at", "departed_at", "alive",
            "snap_epoch", "snap_avail", "snap_up", "snap_uptime",
        ):
            old = getattr(self, name)
            shape = (new,) + old.shape[1:]
            fresh = np.zeros(shape, dtype=old.dtype)
            if name == "departed_at":
                fresh.fill(np.nan)
            elif name == "snap_epoch":
                fresh.fill(-1)
            fresh[: len(old)] = old
            setattr(self, name, fresh)

    def alloc_row(self) -> int:
        if self._free:
            row = self._free.pop()
            self.rows_recycled += 1
        else:
            if self._high >= self.row_capacity:
                self._grow(self._high + 1)
            row = self._high
            self._high += 1
        self.generation += 1
        return row

    def free_row(self, row: int) -> None:
        self.alive[row] = False
        self.snap_epoch[row] = -1
        self._free.append(row)
        self.generation += 1

    def init_row(
        self, row: int, capacity: np.ndarray, access_bw: float, joined_at: float
    ) -> None:
        self.capacity[row] = capacity
        self.available[row] = capacity
        self.access_bw[row] = access_bw
        self.avail_up[row] = access_bw
        self.avail_down[row] = access_bw
        self.joined_at[row] = joined_at
        self.departed_at[row] = np.nan
        self.alive[row] = True
        self.snap_epoch[row] = -1

    # -- introspection ---------------------------------------------------
    def memory_bytes(self) -> int:
        """Total bytes held by the state arrays (capability reporting)."""
        return sum(
            getattr(self, name).nbytes
            for name in (
                "capacity", "available", "access_bw", "avail_up",
                "avail_down", "joined_at", "departed_at", "alive",
                "snap_epoch", "snap_avail", "snap_up", "snap_uptime",
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PeerStore {self.n_rows}/{self.row_capacity} rows, "
            f"gen={self.generation}, {self.memory_bytes()} B>"
        )


class PeerRowView:
    """A ``Peer``-shaped facade over one :class:`PeerStore` row.

    Never caches array views: every property fetches through the store
    so buffer growth (reallocation) can never leave a stale alias.
    Row views exist only for *alive* peers -- departure replaces the
    view with a detached tombstone (see :class:`SoAPeerDirectory`).
    """

    __slots__ = ("peer_id", "_store", "_row")

    def __init__(self, peer_id: int, store: PeerStore, row: int) -> None:
        self.peer_id = peer_id
        self._store = store
        self._row = row

    # -- lifecycle -------------------------------------------------------
    @property
    def alive(self) -> bool:
        return True

    @property
    def departed_at(self) -> Optional[float]:
        return None

    def uptime(self, now: float) -> float:
        return max(0.0, now - self._store.joined_at[self._row])

    # -- state views -----------------------------------------------------
    @property
    def capacity(self) -> ResourceVector:
        rv = ResourceVector.__new__(ResourceVector)
        rv.names = self._store.resource_names
        rv.values = self._store.capacity[self._row]
        return rv

    @property
    def available(self) -> ResourceVector:
        rv = ResourceVector.__new__(ResourceVector)
        rv.names = self._store.resource_names
        rv.values = self._store.available[self._row]
        return rv

    @property
    def access_bw(self) -> float:
        return float(self._store.access_bw[self._row])

    @property
    def avail_up(self) -> float:
        return float(self._store.avail_up[self._row])

    @avail_up.setter
    def avail_up(self, value: float) -> None:
        self._store.avail_up[self._row] = value

    @property
    def avail_down(self) -> float:
        return float(self._store.avail_down[self._row])

    @avail_down.setter
    def avail_down(self, value: float) -> None:
        self._store.avail_down[self._row] = value

    @property
    def joined_at(self) -> float:
        return float(self._store.joined_at[self._row])

    # -- end-system resource accounting ---------------------------------
    def can_fit(self, requirement: ResourceVector) -> bool:
        return bool(
            (self._store.available[self._row] >= requirement.values).all()
        )

    def reserve(self, requirement: ResourceVector) -> bool:
        avail = self._store.available[self._row]
        if not (avail >= requirement.values).all():
            return False
        avail -= requirement.values
        return True

    def release(self, requirement: ResourceVector) -> None:
        store, row = self._store, self._row
        store.available[row] += requirement.values
        if np.any(store.available[row] > store.capacity[row] + 1e-9):
            raise ValueError(
                f"peer {self.peer_id}: release exceeds capacity "
                f"(avail={store.available[row]}, cap={store.capacity[row]})"
            )

    # -- access-link accounting ------------------------------------------
    def reserve_up(self, bw: float) -> bool:
        store, row = self._store, self._row
        if bw > store.avail_up[row] + 1e-9:
            return False
        store.avail_up[row] -= bw
        return True

    def reserve_down(self, bw: float) -> bool:
        store, row = self._store, self._row
        if bw > store.avail_down[row] + 1e-9:
            return False
        store.avail_down[row] -= bw
        return True

    def release_up(self, bw: float) -> None:
        store, row = self._store, self._row
        store.avail_up[row] = min(
            store.avail_up[row] + bw, store.access_bw[row]
        )

    def release_down(self, bw: float) -> None:
        store, row = self._store, self._row
        store.avail_down[row] = min(
            store.avail_down[row] + bw, store.access_bw[row]
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<PeerRowView {self.peer_id} row={self._row} "
            f"avail={self._store.available[self._row]}>"
        )


class SoAPeerDirectory:
    """Drop-in :class:`~repro.network.peer.PeerDirectory` on a PeerStore.

    Same public API (create/depart/get/alive views); additionally
    exposes :attr:`store` plus vectorized row resolution so the hot
    planes (selection, probing, admission) can bypass the facade.
    """

    def __init__(
        self,
        resource_names: Sequence[str] = ("cpu", "memory"),
        initial_rows: int = 256,
    ) -> None:
        self.resource_names = tuple(resource_names)
        self.store = PeerStore(resource_names, initial_rows)
        #: pid -> row for alive peers; -1 once departed (grown with ids).
        self._row_of = np.full(max(initial_rows, 16), -1, dtype=np.int64)
        #: Lazily materialized facades: PeerRowView while alive, a
        #: detached object-backend ``Peer`` tombstone after departure.
        self._views: Dict[int, object] = {}
        self._departed: Dict[int, Peer] = {}
        self._alive_ids: List[int] = []
        self._alive_dirty = False
        self._alive_rows_cache: Optional[np.ndarray] = None
        self._next_id = 0
        self._n_total = 0
        #: Optional :class:`repro.sim.sanitizer.Sanitizer` write barrier.
        self.sanitizer = None

    @property
    def generation(self) -> int:
        """Membership generation (the store's alloc/free counter)."""
        return self.store.generation

    # -- population ------------------------------------------------------
    def create_peer(
        self, capacity: ResourceVector, access_bw: float, joined_at: float
    ):
        if access_bw <= 0:
            raise ValueError(
                f"peer {self._next_id}: access bandwidth must be positive"
            )
        pid = self._next_id
        self._next_id += 1
        self._n_total += 1
        row = self.store.alloc_row()
        self.store.init_row(row, capacity.values, float(access_bw), float(joined_at))
        if pid >= len(self._row_of):
            grown = np.full(2 * len(self._row_of), -1, dtype=np.int64)
            grown[: len(self._row_of)] = self._row_of
            self._row_of = grown
        self._row_of[pid] = row
        self._alive_ids.append(pid)
        self._alive_rows_cache = None
        view = PeerRowView(pid, self.store, row)
        self._views[pid] = view
        if self.sanitizer is not None:
            self.sanitizer.note_write(
                "network", "peer-create", self.store.generation
            )
        return view

    def depart(self, peer_id: int, now: float):
        row = int(self._row_of[peer_id]) if peer_id < self._next_id else -1
        if row < 0:
            if peer_id in self._departed:
                raise ValueError(f"peer {peer_id} already departed")
            raise KeyError(peer_id)
        store = self.store
        # Freeze the final mutable state into a detached tombstone so
        # post-departure mutations (rollback credits, ghost snapshots)
        # can never touch a recycled row.
        corpse = Peer(
            peer_id,
            ResourceVector(self.resource_names, store.capacity[row].copy()),
            float(store.access_bw[row]),
            float(store.joined_at[row]),
        )
        corpse.available.values[:] = store.available[row]
        corpse.avail_up = float(store.avail_up[row])
        corpse.avail_down = float(store.avail_down[row])
        corpse.departed_at = now
        store.departed_at[row] = now
        store.free_row(row)
        self._row_of[peer_id] = -1
        self._departed[peer_id] = corpse
        self._views[peer_id] = corpse
        # In-place removal preserves the alive-id ordering the workload
        # RNG indexes into, at C scan speed (vs. a Python refilter).
        try:
            self._alive_ids.remove(peer_id)
        except ValueError:
            self._alive_dirty = True
        self._alive_rows_cache = None
        if self.sanitizer is not None:
            self.sanitizer.note_write(
                "network", "peer-depart", self.store.generation
            )
        return corpse

    # -- lookup ----------------------------------------------------------
    def __getitem__(self, peer_id: int):
        view = self._views.get(peer_id)
        if view is None:
            raise KeyError(peer_id)
        return view

    def get(self, peer_id: int):
        return self._views.get(peer_id)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._views

    def __len__(self) -> int:
        return self._n_total

    def is_alive(self, peer_id: int) -> bool:
        return 0 <= peer_id < self._next_id and self._row_of[peer_id] >= 0

    # -- row resolution (the SoA fast-plane entry point) -----------------
    def row_of(self, peer_id: int) -> int:
        """The store row of ``peer_id``; -1 when departed or unknown."""
        if 0 <= peer_id < self._next_id:
            return int(self._row_of[peer_id])
        return -1

    def rows_for(self, peer_ids: np.ndarray) -> np.ndarray:
        """Vectorized ``row_of`` (-1 marks departed/unknown ids)."""
        return self._row_of[peer_ids]

    # -- alive views ------------------------------------------------------
    @property
    def alive_ids(self) -> List[int]:
        """Ids of currently alive peers (cached; O(1) when no churn)."""
        if self._alive_dirty:
            row_of = self._row_of
            self._alive_ids = [
                pid for pid in self._alive_ids if row_of[pid] >= 0
            ]
            self._alive_dirty = False
        return self._alive_ids

    def alive_rows(self) -> np.ndarray:
        """Store rows of the alive peers, aligned with :attr:`alive_ids`."""
        if self._alive_rows_cache is None:
            ids = self.alive_ids
            self._alive_rows_cache = self._row_of[
                np.asarray(ids, dtype=np.int64)
            ] if ids else np.empty(0, dtype=np.int64)
        return self._alive_rows_cache

    @property
    def n_alive(self) -> int:
        return len(self.alive_ids)

    def alive_peers(self) -> Iterator[object]:
        return (self._views[pid] for pid in self.alive_ids)

    # -- vectorized views -------------------------------------------------
    def uptimes(self, now: float) -> Tuple[np.ndarray, List[int]]:
        """``(uptimes, ids)`` arrays over alive peers, aligned."""
        ids = self.alive_ids
        up = now - self.store.joined_at[self.alive_rows()]
        return up, ids

    def availability_matrix(self, peer_ids: Iterable[int]) -> np.ndarray:
        """Rows of ``available`` vectors for the given peers."""
        ids = list(peer_ids)
        if not ids:
            return np.empty((0, len(self.resource_names)))
        rows = self._row_of[np.asarray(ids, dtype=np.int64)]
        if (rows >= 0).all():
            return self.store.available[rows].copy()
        out = np.empty((len(ids), len(self.resource_names)))
        for i, (pid, row) in enumerate(zip(ids, rows)):
            if row >= 0:
                out[i] = self.store.available[row]
            else:
                out[i] = self._departed[pid].available.values
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SoAPeerDirectory {self.n_alive} alive / {self._n_total} total, "
            f"{self.store.memory_bytes()} B>"
        )
