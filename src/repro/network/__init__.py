"""The P2P network substrate (paper §2.2 network model, §4.1 setup).

* :mod:`~repro.network.peer` -- heterogeneous peers with end-system
  resource capacity/availability, access-link bandwidth and uptime.
* :mod:`~repro.network.topology` -- O(1)-memory pairwise bottleneck
  bandwidth / latency classes and end-to-end available-bandwidth
  computation with reservation accounting.
* :mod:`~repro.network.churn` -- arbitrary peer arrivals/departures
  ("topological variation"), with heavy-tail-flavoured departure
  selection so that uptime is an honest predictor of longevity
  (matching the measurement study the paper builds on [17]).
"""

from repro.network.peer import Peer, PeerDirectory
from repro.network.topology import (
    BANDWIDTH_CLASSES,
    LATENCY_CLASSES_MS,
    NetworkModel,
    PairwiseClasses,
)
from repro.network.churn import ChurnConfig, ChurnProcess

__all__ = [
    "BANDWIDTH_CLASSES",
    "ChurnConfig",
    "ChurnProcess",
    "LATENCY_CLASSES_MS",
    "NetworkModel",
    "PairwiseClasses",
    "Peer",
    "PeerDirectory",
]
