"""Peers: heterogeneous end-systems with capacity, uptime and access links.

Paper §4.1: "Each peer is randomly assigned an initial resource
availability RA = [cpu, memory], ranging from [100,100] to [1000,1000]
units.  Different units reflect the heterogeneity in P2P systems" --
a laptop is ~[100,100], a desktop ~[500,500], a cluster server
~[1000,1000].

A :class:`Peer` tracks

* ``capacity``  -- the fixed end-system resource vector,
* ``available`` -- capacity minus active reservations,
* ``access_bw`` -- the access-link rate (one of the evaluation's
  bandwidth classes), with separate up/down residual counters, and
* ``joined_at`` -- for uptime (= ``now - joined_at``), the peer-selection
  longevity signal.

:class:`PeerDirectory` owns the id space and the alive set, and provides
vectorized views (capacity / availability matrices) so that scoring and
churn sampling stay O(alive peers) numpy operations rather than Python
loops.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.resources import ResourceVector

__all__ = ["Peer", "PeerDirectory"]


class Peer:
    """One peer host."""

    __slots__ = (
        "peer_id",
        "capacity",
        "available",
        "access_bw",
        "avail_up",
        "avail_down",
        "joined_at",
        "departed_at",
    )

    def __init__(
        self,
        peer_id: int,
        capacity: ResourceVector,
        access_bw: float,
        joined_at: float = 0.0,
    ) -> None:
        self.peer_id = peer_id
        self.capacity = capacity
        self.available = capacity.copy()
        if access_bw <= 0:
            raise ValueError(f"peer {peer_id}: access bandwidth must be positive")
        self.access_bw = float(access_bw)
        self.avail_up = float(access_bw)
        self.avail_down = float(access_bw)
        self.joined_at = float(joined_at)
        self.departed_at: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.departed_at is None

    def uptime(self, now: float) -> float:
        """Time connected to the grid so far (paper's peer-selection metric)."""
        end = self.departed_at if self.departed_at is not None else now
        return max(0.0, end - self.joined_at)

    # -- end-system resource accounting -----------------------------------
    def can_fit(self, requirement: ResourceVector) -> bool:
        return self.available.covers(requirement)

    def reserve(self, requirement: ResourceVector) -> bool:
        """Atomically reserve ``requirement``; False if it does not fit."""
        if not self.available.covers(requirement):
            return False
        self.available.values -= requirement.values
        return True

    def release(self, requirement: ResourceVector) -> None:
        self.available.values += requirement.values
        # Guard against release/reserve mismatches inflating capacity.
        if np.any(self.available.values > self.capacity.values + 1e-9):
            raise ValueError(
                f"peer {self.peer_id}: release exceeds capacity "
                f"(avail={self.available.values}, cap={self.capacity.values})"
            )

    # -- access-link accounting ---------------------------------------------
    def reserve_up(self, bw: float) -> bool:
        if bw > self.avail_up + 1e-9:
            return False
        self.avail_up -= bw
        return True

    def reserve_down(self, bw: float) -> bool:
        if bw > self.avail_down + 1e-9:
            return False
        self.avail_down -= bw
        return True

    def release_up(self, bw: float) -> None:
        self.avail_up = min(self.avail_up + bw, self.access_bw)

    def release_down(self, bw: float) -> None:
        self.avail_down = min(self.avail_down + bw, self.access_bw)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "departed"
        return f"<Peer {self.peer_id} {state} avail={self.available.values}>"


class PeerDirectory:
    """The id space and alive-set of the grid, with vectorized views."""

    def __init__(self, resource_names: Sequence[str] = ("cpu", "memory")) -> None:
        self.resource_names = tuple(resource_names)
        self._peers: Dict[int, Peer] = {}
        self._alive_ids: List[int] = []
        self._alive_dirty = False
        self._next_id = 0
        #: Membership generation: bumped on every create/depart, mirrors
        #: :attr:`repro.network.soa.PeerStore.generation` so the two
        #: backends stamp identical provenance into a sanitizer ledger.
        self.generation = 0
        #: Optional :class:`repro.sim.sanitizer.Sanitizer` write barrier.
        self.sanitizer = None

    # -- population ----------------------------------------------------------
    def create_peer(
        self, capacity: ResourceVector, access_bw: float, joined_at: float
    ) -> Peer:
        pid = self._next_id
        self._next_id += 1
        peer = Peer(pid, capacity, access_bw, joined_at)
        self._peers[pid] = peer
        self._alive_ids.append(pid)
        self.generation += 1
        if self.sanitizer is not None:
            self.sanitizer.note_write("network", "peer-create", self.generation)
        return peer

    def depart(self, peer_id: int, now: float) -> Peer:
        peer = self._peers[peer_id]
        if not peer.alive:
            raise ValueError(f"peer {peer_id} already departed")
        peer.departed_at = now
        self._alive_dirty = True
        self.generation += 1
        if self.sanitizer is not None:
            self.sanitizer.note_write("network", "peer-depart", self.generation)
        return peer

    # -- lookup ----------------------------------------------------------
    def __getitem__(self, peer_id: int) -> Peer:
        return self._peers[peer_id]

    def get(self, peer_id: int) -> Optional[Peer]:
        return self._peers.get(peer_id)

    def __contains__(self, peer_id: int) -> bool:
        return peer_id in self._peers

    def __len__(self) -> int:
        return len(self._peers)

    def is_alive(self, peer_id: int) -> bool:
        peer = self._peers.get(peer_id)
        return peer is not None and peer.alive

    @property
    def alive_ids(self) -> List[int]:
        """Ids of currently alive peers (cached; O(1) when no churn)."""
        if self._alive_dirty:
            self._alive_ids = [
                pid for pid in self._alive_ids if self._peers[pid].alive
            ]
            self._alive_dirty = False
        return self._alive_ids

    @property
    def n_alive(self) -> int:
        return len(self.alive_ids)

    def alive_peers(self) -> Iterator[Peer]:
        return (self._peers[pid] for pid in self.alive_ids)

    # -- vectorized views ---------------------------------------------------
    def uptimes(self, now: float) -> Tuple[np.ndarray, List[int]]:
        """``(uptimes, ids)`` arrays over alive peers, aligned."""
        ids = self.alive_ids
        up = np.fromiter(
            (now - self._peers[pid].joined_at for pid in ids),
            dtype=np.float64,
            count=len(ids),
        )
        return up, ids

    def availability_matrix(self, peer_ids: Iterable[int]) -> np.ndarray:
        """Rows of ``available`` vectors for the given peers."""
        rows = [self._peers[pid].available.values for pid in peer_ids]
        if not rows:
            return np.empty((0, len(self.resource_names)))
        return np.stack(rows)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PeerDirectory {self.n_alive} alive / {len(self._peers)} total>"
