"""Pairwise network properties and bandwidth reservation accounting.

Paper §4.1: "The end-to-end available network bandwidth between any two
peers is defined as the bottleneck bandwidth along the network path
between two peers, which is initialized randomly as 10M, 500k, 100k, or
56k bps.  The network latency between two peers are also randomly set as
200, 150, 80, 20, or 1 ms [12]."

A literal N x N matrix is 10^8 entries at the paper's 10^4-peer scale, so
pairwise classes are *derived*, not stored: a deterministic BLAKE2b hash
of ``(seed, min(a,b), max(a,b))`` indexes into the class table.  This has
the same marginal distribution as random initialization, is symmetric,
uses O(1) memory, and is reproducible.

End-to-end *available* bandwidth additionally accounts for consumption:

``beta(a, b) = min(pair_class(a,b) - reserved(a,b), a.avail_up, b.avail_down)``

where per-pair reservations live in a sparse dict (only pairs with active
flows appear) and the access-link residuals live on the peers.  The
access-link terms are our substitution for shared-path contention -- see
DESIGN.md §4.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Optional, Tuple

import numpy as np

from repro.network.peer import PeerDirectory

__all__ = [
    "BANDWIDTH_CLASSES",
    "LATENCY_CLASSES_MS",
    "PairwiseClasses",
    "NetworkModel",
]

#: §4.1 bottleneck-bandwidth classes (bps).
BANDWIDTH_CLASSES: Tuple[float, ...] = (10e6, 500e3, 100e3, 56e3)

#: §4.1 latency classes (ms), from [12] (Nettimer measurements).
LATENCY_CLASSES_MS: Tuple[float, ...] = (200.0, 150.0, 80.0, 20.0, 1.0)

#: Default pair-class mix: broadband-leaning, following the Gnutella/
#: Napster population measurements the paper cites ([17]: most peers on
#: cable/DSL or better, a modem tail).  Aligned with BANDWIDTH_CLASSES.
DEFAULT_BANDWIDTH_WEIGHTS: Tuple[float, ...] = (0.35, 0.35, 0.2, 0.1)


class PairwiseClasses:
    """Deterministic, symmetric pairwise class assignment via hashing.

    ``weights`` optionally skews the class distribution (e.g. towards the
    broadband classes measured for real P2P populations [17]); ``None``
    gives the uniform distribution.

    ``class_index`` is a pure function of the unordered pair, so results
    are memoized unconditionally; the memo stops growing at
    ``MEMO_CAP`` (selection re-reads the same hot pairs, so a soft cap
    keeps memory bounded without eviction bookkeeping).
    """

    MEMO_CAP = 1 << 18

    def __init__(
        self,
        seed: int,
        n_classes: int,
        weights: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.seed = int(seed)
        self.n_classes = int(n_classes)
        if weights is None:
            self._cumulative: Optional[list] = None
        else:
            w = np.asarray(weights, dtype=np.float64)
            if w.shape != (n_classes,) or np.any(w < 0) or w.sum() <= 0:
                raise ValueError(f"bad class weights {weights!r}")
            # A plain list + bisect matches np.searchsorted(side="right")
            # bit-for-bit while skipping numpy's scalar-call overhead.
            self._cumulative = np.cumsum(w / w.sum()).tolist()
        self._memo: Dict[Tuple[int, int], int] = {}

    def class_index(self, a: int, b: int) -> int:
        """The class index for the unordered pair ``{a, b}``."""
        pair = (a, b) if a <= b else (b, a)
        memo = self._memo
        idx = memo.get(pair)
        if idx is not None:
            return idx
        digest = hashlib.blake2b(
            f"{self.seed}:{pair[0]}:{pair[1]}".encode(), digest_size=4
        ).digest()
        raw = int.from_bytes(digest, "little")
        if self._cumulative is None:
            idx = raw % self.n_classes
        else:
            idx = min(
                bisect_right(self._cumulative, raw / 2**32),
                self.n_classes - 1,
            )
        if len(memo) < self.MEMO_CAP:
            memo[pair] = idx
        return idx


class NetworkModel:
    """End-to-end bandwidth/latency plus reservation accounting."""

    def __init__(
        self,
        peers: PeerDirectory,
        seed: int = 0,
        bandwidth_classes: Tuple[float, ...] = BANDWIDTH_CLASSES,
        latency_classes: Tuple[float, ...] = LATENCY_CLASSES_MS,
        bandwidth_weights: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.peers = peers
        self.bandwidth_classes = tuple(bandwidth_classes)
        self.latency_classes = tuple(latency_classes)
        if bandwidth_weights is None:
            bandwidth_weights = DEFAULT_BANDWIDTH_WEIGHTS
        self._bw_hash = PairwiseClasses(
            seed * 2 + 1, len(self.bandwidth_classes), bandwidth_weights
        )
        self._lat_hash = PairwiseClasses(seed * 2 + 2, len(self.latency_classes))
        #: Active per-pair reservations (sparse; unordered pair -> bps).
        self._reserved: Dict[Tuple[int, int], float] = {}
        #: Combined (capacity, latency) memo for the probing hot path.
        self._static_memo: Dict[Tuple[int, int], Tuple[float, float]] = {}

    # -- static pairwise properties -----------------------------------------
    @staticmethod
    def _key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    def pair_capacity(self, a: int, b: int) -> float:
        """The bottleneck-class capacity of the path between ``a``, ``b``."""
        return self.pair_static(a, b)[0]

    def latency_ms(self, a: int, b: int) -> float:
        return self.pair_static(a, b)[1]

    def pair_static(self, a: int, b: int) -> Tuple[float, float]:
        """``(pair_capacity, latency_ms)`` memoized per unordered pair.

        Both values are pure functions of the pair; one combined memo
        spares the hot paths (probing, admission) two hash walks per
        touch.
        """
        if a == b:
            return (float("inf"), 0.0)  # local connection
        key = (a, b) if a <= b else (b, a)
        memo = self._static_memo
        entry = memo.get(key)
        if entry is None:
            entry = (
                self.bandwidth_classes[self._bw_hash.class_index(a, b)],
                self.latency_classes[self._lat_hash.class_index(a, b)],
            )
            if len(memo) < PairwiseClasses.MEMO_CAP:
                memo[key] = entry
        return entry

    # -- availability ---------------------------------------------------------
    def pair_reserved(self, a: int, b: int) -> float:
        return self._reserved.get(self._key(a, b), 0.0)

    def available_bandwidth(self, src: int, dst: int) -> float:
        """β: end-to-end available bandwidth for a ``src -> dst`` flow."""
        if src == dst:
            return float("inf")
        path_avail = self.pair_capacity(src, dst) - self.pair_reserved(src, dst)
        up = self.peers[src].avail_up
        down = self.peers[dst].avail_down
        return max(0.0, min(path_avail, up, down))

    # -- reservations ---------------------------------------------------------
    def reserve(self, src: int, dst: int, bw: float) -> bool:
        """Reserve ``bw`` bps on ``src -> dst``; atomic, False on shortage."""
        if bw < 0:
            raise ValueError(f"negative bandwidth reservation: {bw}")
        if src == dst or bw == 0.0:
            return True
        if self.available_bandwidth(src, dst) + 1e-9 < bw:
            return False
        src_peer, dst_peer = self.peers[src], self.peers[dst]
        if not src_peer.reserve_up(bw):
            return False
        if not dst_peer.reserve_down(bw):
            src_peer.release_up(bw)
            return False
        key = self._key(src, dst)
        self._reserved[key] = self._reserved.get(key, 0.0) + bw
        return True

    def release(self, src: int, dst: int, bw: float) -> None:
        """Release a prior reservation (tolerates departed peers)."""
        if src == dst or bw == 0.0:
            return
        key = self._key(src, dst)
        remaining = self._reserved.get(key, 0.0) - bw
        if remaining <= 1e-9:
            self._reserved.pop(key, None)
        else:
            self._reserved[key] = remaining
        src_peer = self.peers.get(src)
        if src_peer is not None:
            src_peer.release_up(bw)
        dst_peer = self.peers.get(dst)
        if dst_peer is not None:
            dst_peer.release_down(bw)

    @property
    def n_reserved_pairs(self) -> int:
        return len(self._reserved)

    # -- vectorized helpers ----------------------------------------------------
    def available_bandwidth_batch(
        self, sources: np.ndarray, dst: int
    ) -> np.ndarray:
        """β for many candidate sources towards one destination peer."""
        out = np.empty(len(sources), dtype=np.float64)
        for i, src in enumerate(sources):
            out[i] = self.available_bandwidth(int(src), dst)
        return out
