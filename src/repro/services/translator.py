"""QoS -> resource requirement translation (paper assumption 2, §3.1).

The paper assumes "there exists a translator that can map the
application-level QoS specifications into the resource requirements",
citing analytical translation and offline/online profiling services
[3, 13, 21].  We implement the analytical flavour: a deterministic-in-
distribution mapping from an instance's output *quality* to its
end-system resource demand ``R`` and outgoing bandwidth ``b``.

Higher quality output costs more of everything:

* each end-system resource dimension draws a base demand and scales it by
  ``1 + quality_factor * (quality - 1)``;
* bandwidth draws from a per-quality range (low-quality streams fit
  modem-class links; high-quality streams need broadband).

The randomness models instance-to-instance implementation diversity
("each service instance is also randomly assigned values for its Qin,
Qout and R parameters", §4.1); it is driven by the caller's RNG stream so
catalogs are reproducible.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.resources import ResourceVector

__all__ = ["AnalyticTranslator", "DEFAULT_BANDWIDTH_RANGES"]

#: Outgoing-bandwidth ranges (bps) per output quality level -- 2002-era
#: stream rates.  Low/average flows fit every bottleneck class (including
#: 56 kbps modem pairs, mostly); high-quality flows need at least the
#: 100 kbps class.  Keeping requirements small relative to the class
#: capacities puts the simulation in the paper's regime, where success is
#: limited by end-system load (and churn), not by raw link feasibility.
DEFAULT_BANDWIDTH_RANGES: Dict[int, Tuple[float, float]] = {
    1: (5.0e3, 2.0e4),
    2: (2.0e4, 4.0e4),
    3: (4.0e4, 8.0e4),
}


class AnalyticTranslator:
    """Maps output quality -> ``(R, b)`` requirement draws.

    Parameters
    ----------
    resource_names:
        End-system resource dimensions (the paper uses ``[cpu, memory]``).
    base_demand:
        ``(lo, hi)`` uniform range for the per-dimension base demand, in
        the paper's abstract resource units.
    quality_factor:
        Multiplicative slope of demand in the quality level.
    bandwidth_ranges:
        Per-quality ``(lo, hi)`` bandwidth ranges in bps.
    """

    def __init__(
        self,
        resource_names: Sequence[str] = ("cpu", "memory"),
        base_demand: Tuple[float, float] = (10.0, 50.0),
        quality_factor: float = 0.5,
        bandwidth_ranges: Dict[int, Tuple[float, float]] | None = None,
    ) -> None:
        self.resource_names = tuple(resource_names)
        lo, hi = base_demand
        if not 0 < lo <= hi:
            raise ValueError(f"invalid base demand range ({lo}, {hi})")
        self.base_demand = (float(lo), float(hi))
        if quality_factor < 0:
            raise ValueError("quality_factor must be non-negative")
        self.quality_factor = float(quality_factor)
        self.bandwidth_ranges = dict(bandwidth_ranges or DEFAULT_BANDWIDTH_RANGES)
        for q, (blo, bhi) in self.bandwidth_ranges.items():
            if not 0 < blo <= bhi:
                raise ValueError(f"invalid bandwidth range for quality {q}")

    def quality_scale(self, quality: int) -> float:
        """Demand multiplier for an output quality level."""
        return 1.0 + self.quality_factor * (quality - 1)

    def resources_for(
        self, quality: int, rng: np.random.Generator
    ) -> ResourceVector:
        """Draw an end-system requirement ``R = f(Qin, Qout)``."""
        base = rng.uniform(*self.base_demand, size=len(self.resource_names))
        return ResourceVector(self.resource_names, base * self.quality_scale(quality))

    def bandwidth_for(self, quality: int, rng: np.random.Generator) -> float:
        """Draw the outgoing bandwidth requirement ``b`` (bps)."""
        try:
            lo, hi = self.bandwidth_ranges[quality]
        except KeyError:
            raise ValueError(
                f"no bandwidth range configured for quality level {quality}"
            ) from None
        return float(rng.uniform(lo, hi))

    def max_resource_demand(self) -> float:
        """Upper bound of any single dimension's demand (for normalizers)."""
        max_quality = max(self.bandwidth_ranges)
        return self.base_demand[1] * self.quality_scale(max_quality)

    def max_bandwidth_demand(self) -> float:
        """Upper bound of the bandwidth requirement (for normalizers)."""
        return max(hi for _, hi in self.bandwidth_ranges.values())
