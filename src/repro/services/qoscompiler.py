"""The request front end: user request -> abstract path + QoS vector.

Paper §3.2, step "Acquire and translate the user request": the user names
a distributed application (or spells out the abstract service path) and a
QoS level; the *QoS compiler* [14] maps that onto an abstract service
path plus an end-to-end QoS requirement vector.

Our compiler is rule-based: the application template fixes the abstract
path; the end-to-end requirement asks for a specific output *format* from
the final interface vocabulary plus a minimum *quality* level (the
paper's single three-level QoS parameter)::

    user_qos = { format: <requested format>, quality: [level, 3] }
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.core.qos import Interval, QoSVector
from repro.services.applications import QUALITY_LEVELS, ApplicationTemplate
from repro.services.model import AbstractServicePath

__all__ = ["UserRequest", "QoSCompiler"]


@dataclass(frozen=True)
class UserRequest:
    """One service aggregation request (workload unit of §4.1).

    Attributes
    ----------
    request_id:
        Unique id, assigned by the workload generator.
    peer_id:
        The requesting peer (where the aggregation starts).
    application:
        Name of the requested distributed application.
    qos_level:
        ``"low"`` / ``"average"`` / ``"high"``.
    out_format:
        Requested output format; ``None`` lets the compiler pick one.
    session_duration:
        Minutes the delivery must run (paper: uniform in [1, 60]).
    arrival_time:
        Simulated arrival minute.
    """

    request_id: int
    peer_id: int
    application: str
    qos_level: str
    session_duration: float
    arrival_time: float
    out_format: Optional[str] = None

    def __post_init__(self) -> None:
        if self.qos_level not in QUALITY_LEVELS:
            raise ValueError(
                f"unknown QoS level {self.qos_level!r}; "
                f"expected one of {sorted(QUALITY_LEVELS)}"
            )
        if self.session_duration <= 0:
            raise ValueError("session duration must be positive")


class QoSCompiler:
    """Maps :class:`UserRequest` onto ``(AbstractServicePath, QoSVector)``."""

    def __init__(self, applications: Mapping[str, ApplicationTemplate]) -> None:
        self.applications = dict(applications)

    @classmethod
    def from_templates(cls, templates) -> "QoSCompiler":
        return cls({t.name: t for t in templates})

    def compile(
        self, request: UserRequest, rng: Optional[np.random.Generator] = None
    ) -> tuple[AbstractServicePath, QoSVector]:
        """Translate a request; unknown applications raise ``KeyError``.

        If the request leaves ``out_format`` unset, one is drawn uniformly
        from the application's user-facing vocabulary (requires ``rng``).
        """
        try:
            app = self.applications[request.application]
        except KeyError:
            raise KeyError(
                f"unknown application {request.application!r}; "
                f"known: {sorted(self.applications)}"
            ) from None
        fmt = request.out_format
        if fmt is None:
            if rng is None:
                raise ValueError(
                    "out_format unset and no rng provided to choose one"
                )
            fmt = str(rng.choice(app.user_formats()))
        elif fmt not in app.user_formats():
            raise ValueError(
                f"format {fmt!r} is not offered by {app.name!r} "
                f"(offers {app.user_formats()})"
            )
        level = QUALITY_LEVELS[request.qos_level]
        max_level = max(QUALITY_LEVELS.values())
        user_qos = QoSVector(format=fmt, quality=Interval(level, max_level))
        return app.path, user_qos
