"""Application service model, catalogs and front-end translators.

This package provides the *inputs* to the QSA model:

* :mod:`~repro.services.model` -- abstract services, service instances
  ``(Qin, Qout, R, b)`` and abstract service paths (paper §2.1).
* :mod:`~repro.services.applications` -- the distributed application
  templates (video-on-demand, content retrieval, ...) used by the paper's
  workload (§4.1: 10 applications, path lengths 2-5).
* :mod:`~repro.services.catalog` -- random catalog generation with
  controlled QoS compatibility (10-20 instances per service, 40-80
  replica peers per instance).
* :mod:`~repro.services.qoscompiler` -- maps a named user request +
  QoS level onto an abstract service path and end-to-end QoS vector
  (the paper's "QoS compiler [14] or other translators").
* :mod:`~repro.services.translator` -- analytic QoS -> resource
  requirement translation (the paper's assumption 2, refs [3,13,21]).
"""

from repro.services.model import (
    AbstractServicePath,
    ServiceInstance,
    instance_group,
)
from repro.services.applications import ApplicationTemplate, default_applications
from repro.services.catalog import CatalogConfig, ServiceCatalog, generate_catalog
from repro.services.qoscompiler import QoSCompiler, UserRequest
from repro.services.translator import AnalyticTranslator

__all__ = [
    "AbstractServicePath",
    "AnalyticTranslator",
    "ApplicationTemplate",
    "CatalogConfig",
    "QoSCompiler",
    "ServiceCatalog",
    "ServiceInstance",
    "UserRequest",
    "default_applications",
    "generate_catalog",
    "instance_group",
]
