"""Abstract services, service instances and abstract service paths.

Terminology (paper §2.1 and §2.3):

* An **abstract service** is a functional step, named by a string
  (``"video-server"``, ``"cn2en-translator"``, ``"image-enhancer"``).
* A **service instance** is a concrete implementation of an abstract
  service with fixed QoS characteristics: input requirement ``Qin``,
  output level ``Qout``, end-system resource requirement ``R`` and
  required bandwidth ``b`` on its *outgoing* (downstream) connection.
  The same instance may be replicated on many peers.
* An **abstract service path** is the ordered list of abstract services a
  distributed application needs, written in *flow order*: data flows from
  the first element (the source, e.g. a video server) to the last element
  (closest to the user).  The user's host itself is the data *sink* and is
  not part of the path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.qos import QoSVector
from repro.core.resources import ResourceVector

__all__ = ["ServiceInstance", "AbstractServicePath", "instance_group"]


@dataclass(frozen=True)
class ServiceInstance:
    """A concrete implementation of an abstract service.

    Attributes
    ----------
    instance_id:
        Globally unique identifier (e.g. ``"transcode/7"``).
    service:
        The abstract service this instance implements.
    qin:
        QoS requirement on the instance's input (must be satisfied by the
        upstream instance's ``qout``; Eq. 1).
    qout:
        QoS level of the instance's output.
    resources:
        End-system resources ``R`` consumed while the instance runs
        (paper: ``R = f(Qin, Qout)``).
    bandwidth:
        Network bandwidth ``b`` required on the instance's outgoing
        connection (towards the data sink / user).
    """

    instance_id: str
    service: str
    qin: QoSVector
    qout: QoSVector
    resources: ResourceVector
    bandwidth: float

    def __post_init__(self) -> None:
        if self.bandwidth < 0:
            raise ValueError(
                f"instance {self.instance_id!r}: negative bandwidth {self.bandwidth}"
            )

    def __repr__(self) -> str:
        return f"<ServiceInstance {self.instance_id}>"


@dataclass(frozen=True)
class AbstractServicePath:
    """An ordered list of abstract services in flow (source -> user) order.

    ``hops`` equals the number of services: an *n*-hop service aggregation
    involves *n* peers besides the requesting peer (paper §2.1).
    """

    application: str
    services: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.services:
            raise ValueError("abstract service path must contain >= 1 service")
        if len(set(self.services)) != len(self.services):
            raise ValueError(
                f"abstract path for {self.application!r} repeats a service: "
                f"{self.services}"
            )

    @property
    def hops(self) -> int:
        return len(self.services)

    @property
    def source(self) -> str:
        """The data source service (e.g. the video server)."""
        return self.services[0]

    @property
    def last(self) -> str:
        """The service adjacent to the user (the final processing step)."""
        return self.services[-1]

    def reversed(self) -> Tuple[str, ...]:
        """Services in aggregation/selection order (user side first)."""
        return tuple(reversed(self.services))

    def __len__(self) -> int:
        return len(self.services)

    def __iter__(self):
        return iter(self.services)


def instance_group(
    instances: Iterable[ServiceInstance],
) -> Dict[str, List[ServiceInstance]]:
    """Group instances by abstract service name (the paper's
    "service instance group for the same service", Fig. 3)."""
    groups: Dict[str, List[ServiceInstance]] = {}
    for inst in instances:
        groups.setdefault(inst.service, []).append(inst)
    return groups
