"""Service catalog generation and the replica map (paper §2.3, §4.1).

The catalog captures the P2P grid's **redundancy property**:

1. every abstract service has many *service instances* with different
   ``(Qin, Qout, R, b)`` (the paper's evaluation: 10-20 instances per
   service), and
2. every instance is replicated on many *peers* (40-80 peers per
   instance).

The instance-level QoS parameters are drawn from the owning
application's interface vocabularies (:mod:`repro.services.applications`)
so that only some instance pairs are QoS-consistent, and from the
analytic translator (:mod:`repro.services.translator`) for resources.

An instance with output quality ``q`` requires input quality at least
``q`` (``Qin.quality = [q, 3]``): a component cannot manufacture quality
its input lacks, which is what makes end-to-end high-quality paths
genuinely harder to compose than low-quality ones.

The replica map is *mutable*: churn removes departed peers' replicas and
assigns fresh replicas to arriving peers (:meth:`ServiceCatalog.remove_peer`
and :meth:`ServiceCatalog.assign_new_peer`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.core.qos import Interval, QoSVector
from repro.services.applications import ApplicationTemplate
from repro.services.model import ServiceInstance
from repro.services.translator import AnalyticTranslator

__all__ = ["CatalogConfig", "ServiceCatalog", "generate_catalog"]


@dataclass(frozen=True)
class CatalogConfig:
    """Knobs for catalog generation; defaults mirror §4.1."""

    #: Inclusive range for the number of instances per abstract service.
    instances_per_service: Tuple[int, int] = (10, 20)
    #: Inclusive range for the number of hosting peers per instance.
    replicas_per_instance: Tuple[int, int] = (40, 80)
    #: Quality levels instances may produce.
    quality_levels: Tuple[int, ...] = (1, 2, 3)
    #: Probability of an instance producing each quality level.  Biased
    #: towards high quality so that QoS-consistent chains exist for every
    #: user level with overwhelming probability (a high-quality output
    #: satisfies every requirement level; see qoscompiler).
    quality_weights: Tuple[float, ...] = (0.2, 0.3, 0.5)

    def __post_init__(self) -> None:
        lo, hi = self.instances_per_service
        if not 1 <= lo <= hi:
            raise ValueError(f"bad instances_per_service range ({lo}, {hi})")
        rlo, rhi = self.replicas_per_instance
        if not 1 <= rlo <= rhi:
            raise ValueError(f"bad replicas_per_instance range ({rlo}, {rhi})")
        if len(self.quality_weights) != len(self.quality_levels):
            raise ValueError("one weight per quality level is required")
        if abs(sum(self.quality_weights) - 1.0) > 1e-9:
            raise ValueError("quality weights must sum to 1")


class ServiceCatalog:
    """All instances plus the (mutable) instance -> hosting peers map."""

    def __init__(
        self,
        applications: Sequence[ApplicationTemplate],
        instances: Dict[str, ServiceInstance],
        replicas: Dict[str, Set[int]],
    ) -> None:
        self.applications = list(applications)
        self.app_by_name = {a.name: a for a in applications}
        self.instances = instances
        self.by_service: Dict[str, List[ServiceInstance]] = {}
        for inst in instances.values():
            self.by_service.setdefault(inst.service, []).append(inst)
        self.replicas = replicas
        self.hosted_by: Dict[int, Set[str]] = {}
        for iid, peers in replicas.items():
            for pid in peers:
                self.hosted_by.setdefault(pid, set()).add(iid)
        #: Average number of replicas a peer carries at generation time;
        #: used to provision arriving peers under churn.
        n_hosting = max(len(self.hosted_by), 1)
        self._replicas_per_peer = (
            sum(len(s) for s in self.hosted_by.values()) / n_hosting
        )

    # -- queries ---------------------------------------------------------
    def candidates(self, service: str) -> List[ServiceInstance]:
        """All instances implementing ``service`` (discovery result)."""
        return self.by_service.get(service, [])

    def hosts(self, instance_id: str) -> Tuple[int, ...]:
        """Peers hosting a replica of ``instance_id``, ascending.

        Sorted tuple (not the live set): callers iterate this across the
        module boundary, and handing out the internal set leaked both
        hash ordering and mutable aliasing (TEL002).
        """
        return tuple(sorted(self.replicas.get(instance_id, ())))

    def hosted_instances(self, peer_id: int) -> Tuple[str, ...]:
        """Instance ids replicated on ``peer_id``, sorted."""
        return tuple(sorted(self.hosted_by.get(peer_id, ())))

    @property
    def n_instances(self) -> int:
        return len(self.instances)

    @property
    def replicas_per_peer(self) -> float:
        return self._replicas_per_peer

    # -- churn support ------------------------------------------------------
    def remove_peer(self, peer_id: int) -> None:
        """Drop every replica hosted by a departing peer."""
        for iid in self.hosted_by.pop(peer_id, set()):
            peers = self.replicas.get(iid)
            if peers is not None:
                peers.discard(peer_id)

    def assign_new_peer(self, peer_id: int, rng: np.random.Generator) -> None:
        """Give an arriving peer a typical share of instance replicas.

        The count is Poisson around the generation-time mean so the
        grid's aggregate redundancy is stationary under churn.
        """
        if peer_id in self.hosted_by:
            raise ValueError(f"peer {peer_id} already hosts replicas")
        k = min(int(rng.poisson(self._replicas_per_peer)), self.n_instances)
        self.hosted_by[peer_id] = set()
        if k == 0:
            return
        all_iids = list(self.instances)
        chosen = rng.choice(len(all_iids), size=k, replace=False)
        for idx in chosen:
            iid = all_iids[int(idx)]
            self.replicas.setdefault(iid, set()).add(peer_id)
            self.hosted_by[peer_id].add(iid)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ServiceCatalog {len(self.applications)} apps, "
            f"{self.n_instances} instances, "
            f"{len(self.hosted_by)} hosting peers>"
        )


def generate_catalog(
    applications: Sequence[ApplicationTemplate],
    peer_ids: Sequence[int],
    rng: np.random.Generator,
    config: CatalogConfig | None = None,
    translator: AnalyticTranslator | None = None,
) -> ServiceCatalog:
    """Generate instances and replica placement per the paper's §4.1.

    For service ``k`` of an application, an instance draws

    * ``Qin.format``  uniformly from interface ``k-1``'s vocabulary,
    * ``Qout.format`` uniformly from interface ``k``'s vocabulary,
    * an output quality level ``q``, with ``Qout.quality = q`` and
      ``Qin.quality = [q, 3]``,
    * ``R`` and ``b`` from the analytic translator at quality ``q``.

    Placement: each instance lands on ``U[replicas_per_instance]``
    distinct peers chosen uniformly.
    """
    config = config or CatalogConfig()
    translator = translator or AnalyticTranslator()
    peer_ids = list(peer_ids)
    if not peer_ids:
        raise ValueError("need at least one peer to host replicas")

    instances: Dict[str, ServiceInstance] = {}
    replicas: Dict[str, Set[int]] = {}
    ilo, ihi = config.instances_per_service
    rlo, rhi = config.replicas_per_instance
    # Scalar-draw spellings of rng.choice that consume the identical
    # bit-generator state (choice(p=) is cumsum+searchsorted over one
    # random(); choice without p is one integers()) but skip choice's
    # per-call validation -- catalog generation makes thousands of draws.
    quality_cdf = np.cumsum(config.quality_weights)
    quality_cdf /= quality_cdf[-1]
    max_quality = max(config.quality_levels)

    for app in applications:
        for k, service in enumerate(app.services):
            in_formats = app.interface_formats(k - 1)
            out_formats = app.interface_formats(k)
            n_inst = int(rng.integers(ilo, ihi + 1))
            for j in range(n_inst):
                quality = int(config.quality_levels[
                    quality_cdf.searchsorted(rng.random(), side="right")
                ])
                qin = QoSVector(
                    format=str(in_formats[int(rng.integers(len(in_formats)))]),
                    quality=Interval(quality, max_quality),
                )
                qout = QoSVector(
                    format=str(out_formats[int(rng.integers(len(out_formats)))]),
                    quality=quality,
                )
                iid = f"{service}/{j}"
                instances[iid] = ServiceInstance(
                    instance_id=iid,
                    service=service,
                    qin=qin,
                    qout=qout,
                    resources=translator.resources_for(quality, rng),
                    bandwidth=translator.bandwidth_for(quality, rng),
                )
                n_rep = min(int(rng.integers(rlo, rhi + 1)), len(peer_ids))
                chosen = rng.choice(len(peer_ids), size=n_rep, replace=False)
                replicas[iid] = {peer_ids[c] for c in chosen.tolist()}

    return ServiceCatalog(applications, instances, replicas)
