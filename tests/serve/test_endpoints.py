"""Endpoint contract tests against an in-process server over real TCP.

One server (module fixture) serves every test; each test talks plain
HTTP through :class:`repro.serve.client.ServeClient`.  The contract
under test is the one docs/serving.md documents: the compose -> inspect
-> release round trip, clean 4xx on malformed input, and the status /
metrics surfaces.
"""

import pytest

from repro.capabilities import SERVE_API_VERSION, build_descriptor
from repro.serve.client import ServeApiError

APP = "video-on-demand"


def admit_one(client, duration=5.0):
    """Compose until admitted (the small grid admits essentially always)."""
    for _ in range(10):
        payload = client.compose(APP, qos_level="average", duration=duration)
        if payload["admitted"]:
            return payload
    pytest.fail("no admission in 10 compose attempts")


class TestRoundTrip:
    def test_compose_admits_and_returns_path(self, client):
        payload = admit_one(client)
        assert payload["status"] == "admitted"
        assert isinstance(payload["session_id"], int)
        assert payload["application"] == APP
        path = payload["path"]
        assert path["services"], "composed path must name its services"
        assert len(path["instances"]) == len(path["services"])
        assert path["hops"] == len(path["services"])
        assert payload["peers"], "admitted sessions pin provisioning peers"

    def test_admitted_session_is_inspectable(self, client):
        sid = admit_one(client)["session_id"]
        listing = client.sessions()
        assert any(s["session_id"] == sid for s in listing["sessions"])
        view = client.session(sid)
        assert view["state"] == "active"
        assert view["application"] == APP
        assert view["remaining"] > 0

    def test_delete_releases_and_is_idempotent(self, client):
        sid = admit_one(client)["session_id"]
        gone = client.release(sid)
        assert gone["state"] == "completed"
        assert gone["reason"] == "client-release"
        assert all(
            s["session_id"] != sid for s in client.sessions()["sessions"]
        )
        # Second DELETE: 404, and nothing is released twice.
        with pytest.raises(ServeApiError) as err:
            client.release(sid)
        assert err.value.status == 404

    def test_released_session_keeps_a_resolved_view(self, client):
        sid = admit_one(client)["session_id"]
        client.release(sid)
        view = client.session(sid)
        assert view["state"] == "completed"
        assert view["reason"] == "client-release"

    def test_unknown_session_is_404(self, client):
        with pytest.raises(ServeApiError) as err:
            client.session(10_000_000)
        assert err.value.status == 404
        with pytest.raises(ServeApiError) as err:
            client.release(10_000_000)
        assert err.value.status == 404


class TestMalformedRequests:
    @pytest.mark.parametrize("body,fragment", [
        (None, "body required"),
        ([1, 2], "JSON object"),
        ({}, "'application'"),
        ({"application": 7}, "'application'"),
        ({"application": "no-such-app"}, "unknown application"),
        ({"application": APP, "qos_level": "ultra"}, "qos_level"),
        ({"application": APP, "duration": -3}, "duration"),
        ({"application": APP, "duration": "long"}, "duration"),
        ({"application": APP, "duration": 1e9}, "duration"),
        ({"application": APP, "peer_id": "zero"}, "peer_id"),
        ({"application": APP, "shiny": 1}, "unknown compose fields"),
    ])
    def test_bad_compose_bodies_are_400(self, client, body, fragment):
        status, payload = client.request("POST", "/compose", body)
        assert status == 400
        assert fragment in payload["error"]

    def test_dead_peer_is_400(self, client):
        status, payload = client.request(
            "POST", "/compose", {"application": APP, "peer_id": 10_000_000}
        )
        assert status == 400
        assert "not alive" in payload["error"]

    def test_invalid_json_is_400(self, client):
        import http.client

        conn = http.client.HTTPConnection(client.host, client.port, timeout=10)
        conn.request("POST", "/compose", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 400
        assert b"invalid JSON" in response.read()
        conn.close()

    def test_non_integer_session_id_is_400(self, client):
        status, payload = client.request("GET", "/sessions/latest")
        assert status == 400
        assert "integer" in payload["error"]

    def test_unknown_route_is_404(self, client):
        status, payload = client.request("GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, client):
        status, payload = client.request("PUT", "/compose")
        assert status == 405
        assert "POST" in payload["error"]


class TestStatusAndMetrics:
    def test_index_lists_endpoints(self, client):
        index = client.index()
        assert "POST /compose" in index["endpoints"]
        assert index["service"]["serve_api"] == SERVE_API_VERSION

    def test_status_reports_grid_and_counters(self, client):
        st = client.status()
        assert st["api"] == SERVE_API_VERSION
        assert st["mode"] == "sim"
        assert st["grid"]["n_peers"] == 120
        assert st["grid"]["n_instances"] > 0
        assert st["grid"]["generation"] >= 120
        assert st["sessions"]["admitted"] >= 1
        assert st["requests"]["http"] >= 1
        assert st["requests"]["compose"] == (
            st["requests"]["admitted"] + st["requests"]["rejected"]
        )
        assert "discovery_routed" in st["caches"]

    def test_status_embeds_the_capability_descriptor(self, client):
        # Satellite contract: `repro info` and GET /status share one
        # build/capability descriptor.
        assert client.status()["service"] == build_descriptor()

    def test_sim_time_advances_per_request(self, client):
        t0 = client.status()["sim_time"]
        t1 = client.status()["sim_time"]
        assert t1 > t0

    def test_metrics_reflect_telemetry_bus(self, client):
        m = client.metrics()
        assert m["enabled"] is True
        assert m["events_emitted"] >= m["events_retained"] >= 0
        assert m["event_counts"].get("serve.request", 0) >= 1
        counters = m["metrics"]["counters"]
        assert counters.get("serve.requests", 0) >= 1
