"""The observability plane over a live server: content negotiation,
trace correlation, SLO views, error surfaces, exposition stability, and
the ``repro top`` renderer.
"""

import json
from http.client import HTTPConnection

import pytest

from repro.grid import GridConfig
from repro.serve import ServeConfig, start_server_thread
from repro.serve.client import ServeApiError, ServeClient, wait_ready
from repro.serve.top import render_top


def _raw_get(server, path, headers=None):
    conn = HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request("GET", path, headers=headers or {})
        response = conn.getresponse()
        body = response.read()
        return response, body
    finally:
        conn.close()


class TestContentNegotiation:
    def test_default_is_json(self, server, client):
        response, body = _raw_get(server, "/metrics")
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("application/json")
        assert "metrics" in json.loads(body)

    def test_query_format_prometheus(self, server, client):
        client.compose("video-on-demand")
        response, body = _raw_get(server, "/metrics?format=prometheus")
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        assert "version=0.0.4" in response.getheader("Content-Type")
        text = body.decode()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_window_rate{" in text
        assert "repro_slo_state{" in text

    def test_query_format_json_explicit(self, server):
        response, body = _raw_get(server, "/metrics?format=json")
        assert response.status == 200
        assert "metrics" in json.loads(body)

    def test_unknown_format_is_400(self, server):
        response, body = _raw_get(server, "/metrics?format=xml")
        assert response.status == 400
        assert "unknown metrics format" in json.loads(body)["error"]

    def test_accept_text_plain_selects_prometheus(self, server):
        response, body = _raw_get(server, "/metrics",
                                  headers={"Accept": "text/plain"})
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        assert body.decode().startswith("# TYPE ") or "repro_" in body.decode()

    def test_accept_anything_stays_json(self, server):
        response, body = _raw_get(server, "/metrics",
                                  headers={"Accept": "*/*"})
        assert response.status == 200
        assert "metrics" in json.loads(body)

    def test_query_format_beats_accept_header(self, server):
        response, body = _raw_get(server, "/metrics?format=json",
                                  headers={"Accept": "text/plain"})
        assert response.status == 200
        assert "metrics" in json.loads(body)


class TestTraceCorrelation:
    def test_compose_returns_trace_id_and_header(self, server, client):
        view = client.compose("video-on-demand")
        assert view["trace_id"].startswith("req-")
        response, _ = _raw_get(server, "/status")
        assert response.getheader("x-repro-trace", "").startswith("req-")

    def test_trace_tree_is_one_correlated_tree(self, client):
        view = client.compose("video-on-demand")
        trace = client.trace(view["trace_id"])
        assert trace["trace_id"] == view["trace_id"]
        assert trace["n_spans"] > 5
        # Exactly one root: the serve.request span, carrying the id.
        roots = [s for s in trace["spans"] if s["name"] == "serve.request"]
        assert len(roots) == 1
        assert roots[0]["trace_id"] == view["trace_id"]
        assert roots[0]["op"] == "compose"
        # The aggregation pipeline nests beneath it.
        names = {s["name"] for s in trace["spans"]}
        assert {"request", "qcs.compose", "selection"} <= names
        assert "serve.request" in trace["tree"]

    def test_client_supplied_trace_header_is_honored(self, server):
        conn = HTTPConnection(server.host, server.port, timeout=30)
        try:
            body = json.dumps({"application": "video-on-demand",
                               "duration": 5.0}).encode()
            conn.request("POST", "/compose", body=body,
                         headers={"Content-Type": "application/json",
                                  "x-repro-trace": "my-custom-trace"})
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.getheader("x-repro-trace") == "my-custom-trace"
        assert payload["trace_id"] == "my-custom-trace"

    def test_unknown_trace_is_404(self, client):
        with pytest.raises(ServeApiError) as err:
            client.trace("req-99999999")
        assert err.value.status == 404
        assert "unknown" in err.value.message

    def test_traces_view_lists_recent_and_worst(self, client):
        client.compose("video-on-demand")
        view = client.traces()
        assert view["recent"]
        assert view["worst"]
        entry = view["recent"][0]
        assert set(entry) >= {"trace_id", "op", "sim_start", "wall_us"}


class TestSloEndpoint:
    def test_slo_before_any_traffic_is_ok(self):
        # A fresh server: no window has closed, no denominator counts.
        handle = start_server_thread(ServeConfig(
            port=0, seed=9, grid=GridConfig(n_peers=120, telemetry=True),
        ))
        try:
            wait_ready(handle.host, handle.port)
            with ServeClient(handle.host, handle.port) as c:
                doc = c.slo()
            assert doc["state"] == "ok"
            assert {o["slo"] for o in doc["objectives"]} == {
                "slo.psi", "slo.setup_latency_p95",
                "slo.denial_rate", "slo.fault_rate",
            }
            for o in doc["objectives"]:
                assert o["state"] == "ok"
        finally:
            handle.stop()

    def test_slo_view_carries_windowed_series(self, client):
        client.compose("video-on-demand")
        doc = client.slo()
        assert "serve.window.requests" in doc["series"]
        latency = doc["series"]["serve.window.setup_latency_us"]
        assert latency["wall"] is True

    def test_status_carries_slo_state_and_rss(self, client):
        status = client.status()
        assert status["slo_state"] in ("ok", "warn", "breach")
        assert status["process"]["rss_kb"] is None or \
            status["process"]["rss_kb"] > 0

    def test_metrics_json_carries_windows(self, client):
        view = client.metrics()
        assert "windows" in view
        assert "serve.window.requests" in view["windows"]


def _scripted_server(seed=4):
    handle = start_server_thread(ServeConfig(
        port=0, seed=seed, grid=GridConfig(n_peers=120, telemetry=True),
    ))
    wait_ready(handle.host, handle.port)
    with ServeClient(handle.host, handle.port) as c:
        released = 0
        for i in range(12):
            view = c.compose("video-on-demand", duration=5.0)
            if view.get("admitted") and released < 3:
                c.release(view["session_id"])
                released += 1
        text = c.metrics_prometheus()
    handle.stop()
    return text


def _deterministic_lines(text):
    return [line for line in text.splitlines() if 'clock="wall"' not in line]


class TestExpositionStability:
    def test_same_seed_same_script_same_exposition(self):
        # Everything except the explicitly wall-labelled lines is a pure
        # function of (seed, request script) on a sim-time server.
        a = _scripted_server()
        b = _scripted_server()
        assert _deterministic_lines(a) == _deterministic_lines(b)
        # and wall lines exist (the serving plane measures real time)
        assert any('clock="wall"' in line for line in a.splitlines())


class TestObservabilityDisabled:
    def test_disabled_plane_404s_with_clear_error(self):
        handle = start_server_thread(ServeConfig(
            port=0, seed=2, observability=False,
            grid=GridConfig(n_peers=120),
        ))
        try:
            wait_ready(handle.host, handle.port)
            with ServeClient(handle.host, handle.port) as c:
                assert c.status()["slo_state"] is None
                for call in (c.slo, c.traces, lambda: c.trace("req-0")):
                    with pytest.raises(ServeApiError) as err:
                        call()
                    assert err.value.status == 404
                    assert "disabled" in err.value.message
        finally:
            handle.stop()

    def test_plane_requires_enabled_telemetry(self):
        from repro.serve.observability import ObservabilityPlane
        from repro.telemetry import Telemetry

        with pytest.raises(ValueError):
            ObservabilityPlane(Telemetry.disabled(), clock=lambda: 0.0)


class TestRenderTop:
    def _status(self):
        return {
            "scenario": "baseline", "algorithm": "qsa", "seed": 0,
            "mode": "sim", "sim_time": 3.5,
            "grid": {"n_peers": 1000},
            "sessions": {"active": 4}, "requests": {"http": 70},
            "process": {"rss_kb": 51200},
        }

    def test_disabled_plane_renders_notice(self):
        text = render_top(self._status(), None, None)
        assert "disabled" in text
        assert "scenario=baseline" in text

    def test_full_panel(self):
        slo = {
            "state": "warn", "transitions": 2, "evaluations": 9,
            "objectives": [
                {"slo": "slo.psi", "state": "warn", "value_long": 0.879,
                 "target": 0.85, "burn_long": 0.8, "burn_short": 0.67},
            ],
            "series": {
                "serve.window.requests": {
                    "count": 60, "rate": 16.9, "mean": 1.0,
                    "p50": 1.0, "p95": 1.0, "p99": 1.0, "wall": False},
                "serve.window.setup_latency_us": {
                    "count": 70, "rate": 19.7, "mean": 1500.0,
                    "p50": 1323.4, "p95": 2507.5, "p99": 4308.4,
                    "wall": True},
            },
        }
        traces = {"worst": [
            {"trace_id": "req-00000023", "op": "compose",
             "wall_us": 4900.0, "sim_start": 1.2},
        ]}
        text = render_top(self._status(), slo, traces)
        assert "! slo.psi" in text
        assert "(wall)" in text
        assert "req-00000023" in text
        assert "4.9ms" in text
        assert "rss=51200kB" in text
