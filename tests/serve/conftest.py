"""Shared serving-plane fixtures: one in-process server per module."""

import pytest

from repro.grid import GridConfig
from repro.serve import ServeConfig, start_server_thread
from repro.serve.client import ServeClient, wait_ready


@pytest.fixture(scope="module")
def server():
    """A live server on an ephemeral port over a small telemetry-on grid."""
    handle = start_server_thread(ServeConfig(
        port=0,
        seed=0,
        grid=GridConfig(n_peers=120, telemetry=True),
    ))
    wait_ready(handle.host, handle.port)
    yield handle
    handle.stop()


@pytest.fixture()
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c
