"""Sim-time serving is deterministic: trace in, identical telemetry out.

The serving plane's core promise (ROADMAP: the grid stays a simulation
you can replay) is that in ``sim`` mode the telemetry stream is a pure
function of (seed, request trace).  This test boots two independent
servers with the same seed, drives both with the same scripted HTTP
trace, and requires the exported JSONL streams to be *byte-identical*.
"""

from repro.grid import GridConfig
from repro.serve import ServeConfig, start_server_thread
from repro.serve.client import ServeClient, wait_ready

APPS = ("video-on-demand", "audio-streaming", "content-retrieval")
LEVELS = ("low", "average", "high")


def run_scripted_trace(telemetry_path):
    """One server lifetime: scripted compose/inspect/release sequence."""
    handle = start_server_thread(ServeConfig(
        port=0,
        seed=7,
        grid=GridConfig(n_peers=150, telemetry=True),
        telemetry_path=str(telemetry_path),
    ))
    try:
        wait_ready(handle.host, handle.port)
        with ServeClient(handle.host, handle.port) as client:
            admitted = []
            for i in range(12):
                payload = client.compose(
                    APPS[i % len(APPS)],
                    qos_level=LEVELS[i % len(LEVELS)],
                    duration=2.0 + i,
                )
                if payload["admitted"] and i % 2 == 0:
                    admitted.append(payload["session_id"])
            client.sessions()
            client.status()
            for sid in admitted:
                client.release(sid)
                client.session(sid)
            client.metrics()
        summary = {
            "http": handle.runtime.n_http_requests,
            "admitted": handle.runtime.n_admitted,
            "released": handle.runtime.n_released,
            "sim_time": handle.runtime.grid.sim.now,
        }
    finally:
        n_events = handle.stop()
    return n_events, summary


class TestSimTimeDeterminism:
    def test_same_trace_same_seed_byte_identical_telemetry(self, tmp_path):
        a_path = tmp_path / "run_a.jsonl"
        b_path = tmp_path / "run_b.jsonl"
        n_a, summary_a = run_scripted_trace(a_path)
        n_b, summary_b = run_scripted_trace(b_path)

        assert n_a == n_b > 0
        assert summary_a == summary_b
        assert summary_a["admitted"] > 0, "trace must exercise admissions"
        assert summary_a["released"] > 0, "trace must exercise releases"

        a = a_path.read_bytes()
        b = b_path.read_bytes()
        assert len(a) > 0
        assert a == b, "seeded sim-time serving must replay byte-identically"

    def test_stream_contains_serving_plane_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_scripted_trace(path)
        text = path.read_text()
        assert '"event": "serve.request"' in text
        assert '"event": "session.released"' in text
