"""Loadgen integration: real concurrent HTTP traffic against the server."""

import pytest

from repro.serve.loadgen import (
    LoadgenConfig,
    LoadgenReport,
    SoakConfig,
    SoakReport,
    _thirds,
    run_loadgen,
    run_soak,
)


class TestClosedLoop:
    def test_closed_loop_accounts_every_request(self, server):
        report = run_loadgen(LoadgenConfig(
            host=server.host,
            port=server.port,
            n_requests=40,
            concurrency=3,
            mode="closed",
            seed=1,
            release_ratio=0.5,
        ))
        assert report.sent == 40
        assert report.admitted + report.rejected + report.errors == 40
        assert report.errors == 0
        assert len(report.latencies_us) == 40
        assert 0.0 <= report.psi <= 1.0
        assert report.wall_seconds > 0
        assert report.requests_per_sec > 0
        lat = report.latency_summary_us()
        assert lat["count"] == 40
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]

    def test_released_sessions_are_torn_down_on_the_server(self, server):
        before = server.runtime.n_released
        report = run_loadgen(LoadgenConfig(
            host=server.host,
            port=server.port,
            n_requests=20,
            concurrency=2,
            seed=2,
            release_ratio=1.0,
        ))
        assert report.released == report.admitted > 0
        assert server.runtime.n_released == before + report.released


class TestOpenLoop:
    def test_open_loop_completes_at_high_offered_rate(self, server):
        report = run_loadgen(LoadgenConfig(
            host=server.host,
            port=server.port,
            n_requests=15,
            concurrency=3,
            mode="open",
            rate_per_sec=500.0,
            seed=3,
            release_ratio=0.0,
        ))
        assert report.sent == 15
        assert report.errors == 0
        assert report.released == 0


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"mode": "burst"},
        {"n_requests": 0},
        {"concurrency": 0},
        {"rate_per_sec": 0.0},
        {"release_ratio": 1.5},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LoadgenConfig(**kwargs)

    def test_empty_report_percentiles_are_zero(self):
        lat = LoadgenReport().latency_summary_us()
        assert lat == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                       "p99": 0.0, "max": 0.0}

    def test_request_draws_are_seed_deterministic(self):
        from repro.serve.loadgen import _draw_requests

        a = _draw_requests(LoadgenConfig(n_requests=30, seed=9))
        b = _draw_requests(LoadgenConfig(n_requests=30, seed=9))
        c = _draw_requests(LoadgenConfig(n_requests=30, seed=10))
        assert a == b
        assert a != c


class TestSoak:
    def test_short_soak_smoke(self, server):
        report = run_soak(SoakConfig(
            host=server.host,
            port=server.port,
            duration_seconds=2.0,
            rate_per_sec=30.0,
            concurrency=2,
            seed=5,
            sample_interval=0.25,
        ))
        assert report.loadgen.sent > 0
        assert report.loadgen.errors == 0
        assert report.samples, "the sampler thread collected nothing"
        sample = report.samples[0]
        assert set(sample) >= {"wall_s", "rss_kb", "slo_state",
                               "active_sessions", "events_retained"}
        assert report.slo_states  # worst-states observed, deduplicated
        assert set(report.slo_states) <= {"ok", "warn", "breach"}
        doc = report.as_dict()
        assert set(doc) == {"loadgen", "samples", "slo_states",
                            "rss_drift", "latency_drift", "drift_ok"}

    def test_config_validation(self):
        for kwargs in ({"duration_seconds": 0.0}, {"rate_per_sec": -1.0},
                       {"concurrency": 0}, {"sample_interval": 0.0},
                       {"release_ratio": 2.0}):
            with pytest.raises(ValueError):
                SoakConfig(**kwargs)

    def test_thirds_splits_and_guards(self):
        assert _thirds([1.0] * 5) is None
        first, last = _thirds([1.0, 1.0, 2.0, 2.0, 3.0, 3.0])
        assert first == pytest.approx(1.0)
        assert last == pytest.approx(3.0)

    def test_drift_verdicts(self):
        flat = SoakReport()
        flat.samples = [{"rss_kb": 1000} for _ in range(9)]
        flat.loadgen.latencies_us = [100.0] * 9
        assert flat.rss_drift() == pytest.approx(1.0)
        assert flat.latency_drift() == pytest.approx(1.0)
        assert flat.drift_ok()

        drifting = SoakReport()
        drifting.samples = [{"rss_kb": 1000 * (i + 1)} for i in range(9)]
        drifting.loadgen.latencies_us = [100.0 * (i + 1) for i in range(9)]
        assert drifting.rss_drift() > SoakReport.RSS_DRIFT_LIMIT
        assert drifting.latency_drift() > SoakReport.LATENCY_DRIFT_LIMIT
        assert not drifting.drift_ok()

    def test_no_samples_means_no_verdict(self):
        empty = SoakReport()
        assert empty.rss_drift() is None
        assert empty.latency_drift() is None
        assert empty.drift_ok()  # absence of data is not a failure
