"""Loadgen integration: real concurrent HTTP traffic against the server."""

import pytest

from repro.serve.loadgen import LoadgenConfig, LoadgenReport, run_loadgen


class TestClosedLoop:
    def test_closed_loop_accounts_every_request(self, server):
        report = run_loadgen(LoadgenConfig(
            host=server.host,
            port=server.port,
            n_requests=40,
            concurrency=3,
            mode="closed",
            seed=1,
            release_ratio=0.5,
        ))
        assert report.sent == 40
        assert report.admitted + report.rejected + report.errors == 40
        assert report.errors == 0
        assert len(report.latencies_us) == 40
        assert 0.0 <= report.psi <= 1.0
        assert report.wall_seconds > 0
        assert report.requests_per_sec > 0
        lat = report.latency_summary_us()
        assert lat["count"] == 40
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]

    def test_released_sessions_are_torn_down_on_the_server(self, server):
        before = server.runtime.n_released
        report = run_loadgen(LoadgenConfig(
            host=server.host,
            port=server.port,
            n_requests=20,
            concurrency=2,
            seed=2,
            release_ratio=1.0,
        ))
        assert report.released == report.admitted > 0
        assert server.runtime.n_released == before + report.released


class TestOpenLoop:
    def test_open_loop_completes_at_high_offered_rate(self, server):
        report = run_loadgen(LoadgenConfig(
            host=server.host,
            port=server.port,
            n_requests=15,
            concurrency=3,
            mode="open",
            rate_per_sec=500.0,
            seed=3,
            release_ratio=0.0,
        ))
        assert report.sent == 15
        assert report.errors == 0
        assert report.released == 0


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"mode": "burst"},
        {"n_requests": 0},
        {"concurrency": 0},
        {"rate_per_sec": 0.0},
        {"release_ratio": 1.5},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LoadgenConfig(**kwargs)

    def test_empty_report_percentiles_are_zero(self):
        lat = LoadgenReport().latency_summary_us()
        assert lat == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                       "p99": 0.0, "max": 0.0}

    def test_request_draws_are_seed_deterministic(self):
        from repro.serve.loadgen import _draw_requests

        a = _draw_requests(LoadgenConfig(n_requests=30, seed=9))
        b = _draw_requests(LoadgenConfig(n_requests=30, seed=9))
        c = _draw_requests(LoadgenConfig(n_requests=30, seed=10))
        assert a == b
        assert a != c
